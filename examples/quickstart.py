#!/usr/bin/env python
"""Quickstart: compare FCFS, Rein-SBF, and DAS on one simulated cluster.

Builds a 16-server cluster at 0.8 offered load with the paper's baseline
workload (geometric fan-out, lognormal values, Zipf keys) and prints the
request-completion-time summary per scheduler.

Run:  python examples/quickstart.py
"""

from repro import ClusterConfig, ServiceConfig, SimulationConfig, run_cluster
from repro.workload import PoissonArrivals
from repro.workload.patterns import traffic_pattern
from repro.workload.requests import arrival_rate_for_load

N_SERVERS = 16
LOAD = 0.8
REQUESTS = 10_000


def main() -> None:
    pattern = traffic_pattern("baseline")
    service = ServiceConfig()
    rate = arrival_rate_for_load(
        LOAD,
        pattern.fanout.mean(),
        service.mean_demand(pattern.sizes.mean()),
        N_SERVERS,
    )
    print(f"{N_SERVERS} servers, load {LOAD}, {REQUESTS} requests, "
          f"arrival rate {rate:.0f} req/s\n")
    print(f"{'scheduler':>10} {'mean':>9} {'p50':>9} {'p99':>9} {'p99.9':>9}")
    baseline_mean = None
    for scheduler in ("fcfs", "sbf", "das"):
        config = ClusterConfig(
            n_servers=N_SERVERS,
            seed=1,
            scheduler=scheduler,
            arrivals=PoissonArrivals(rate=rate),
            fanout=pattern.fanout,
            sizes=pattern.sizes,
            popularity=pattern.popularity,
            service=service,
        )
        result = run_cluster(config, SimulationConfig(max_requests=REQUESTS))
        s = result.summary()
        note = ""
        if scheduler == "fcfs":
            baseline_mean = s.mean
        elif baseline_mean:
            note = f"  ({(1 - s.mean / baseline_mean) * 100:+.1f}% mean vs FCFS)"
        print(
            f"{scheduler:>10} {s.mean * 1e3:8.3f}ms {s.p50 * 1e3:8.3f}ms "
            f"{s.p99 * 1e3:8.3f}ms {s.p999 * 1e3:8.3f}ms{note}"
        )


if __name__ == "__main__":
    main()
