#!/usr/bin/env python
"""Server degradation: DAS routes around slow servers, SBF cannot.

Two of sixteen servers drop to 50% speed mid-run.  DAS's piggybacked
rate feedback inflates the remaining-processing-time of every request
touching the slow servers, so their operations are served later and the
healthy-only requests sail through; static policies (FCFS, Rein-SBF)
cannot tell a slow server from a fast one.

Run:  python examples/degraded_servers.py
"""

from repro import ClusterConfig, ServiceConfig, SimulationConfig
from repro.kvstore.cluster import Cluster
from repro.kvstore.service import DegradationEvent
from repro.workload import PoissonArrivals
from repro.workload.patterns import traffic_pattern
from repro.workload.requests import arrival_rate_for_load

N_SERVERS = 16
LOAD = 0.55
DURATION = 3.0
DEGRADED = (0, 1)
ONSET = 0.75  # seconds


def main() -> None:
    pattern = traffic_pattern("baseline")
    service = ServiceConfig()
    rate = arrival_rate_for_load(
        LOAD, pattern.fanout.mean(), service.mean_demand(pattern.sizes.mean()),
        N_SERVERS,
    )
    degradations = {sid: (DegradationEvent(ONSET, 0.5),) for sid in DEGRADED}
    print(
        f"{N_SERVERS} servers at load {LOAD}; servers {DEGRADED} drop to 50% "
        f"speed at t={ONSET}s\n"
    )
    for scheduler in ("fcfs", "sbf", "das"):
        config = ClusterConfig(
            n_servers=N_SERVERS,
            seed=11,
            scheduler=scheduler,
            arrivals=PoissonArrivals(rate=rate),
            fanout=pattern.fanout,
            sizes=pattern.sizes,
            popularity=pattern.popularity,
            service=service,
            degradations=degradations,
        )
        cluster = Cluster(config)
        result = cluster.run(
            SimulationConfig(duration=DURATION, warmup_fraction=0.1)
        )
        s = result.summary()
        degraded_util = [result.server_utilizations[sid] for sid in DEGRADED]
        print(
            f"  {scheduler:>5} mean {s.mean * 1e3:7.3f}ms  p99 "
            f"{s.p99 * 1e3:8.3f}ms  degraded-server util "
            f"{', '.join(f'{u:.2f}' for u in degraded_util)}"
        )
        if scheduler == "das":
            # Peek at what the first client learned about server speeds.
            estimates = cluster.clients[0].estimates
            rates = {sid: estimates.rate(sid) for sid in (0, 1, 2, 3)}
            print(
                "        DAS client rate estimates: "
                + ", ".join(f"s{sid}={r:.2f}" for sid, r in rates.items())
                + "   (degraded servers correctly seen near 0.5)"
            )


if __name__ == "__main__":
    main()
