#!/usr/bin/env python
"""Trace record & replay: paired scheduler comparison on identical input.

Synthesizes a multiget workload trace, writes it to JSONL, then replays
the *exact same request stream* (same arrival times, same keys) under
each scheduler — eliminating workload randomness from the A/B comparison.
This is the workflow for evaluating a scheduler change against recorded
production traces.

Run:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import ClusterConfig, ServiceConfig, SimulationConfig
from repro.kvstore.cluster import Cluster
from repro.workload import PoissonArrivals, write_trace
from repro.workload.patterns import traffic_pattern
from repro.workload.requests import (
    Keyspace,
    RequestFactory,
    RequestSpec,
    arrival_rate_for_load,
)
from repro.workload.traces import TraceRecord, load_trace

N_SERVERS = 8
KEYSPACE_SIZE = 5_000
LOAD = 0.75
REQUESTS = 5_000
SEED = 99


def synthesize_trace(path: Path, keyspace: Keyspace) -> None:
    """Generate a trace from the baseline pattern and save it."""
    pattern = traffic_pattern("baseline")
    service = ServiceConfig()
    rate = arrival_rate_for_load(
        LOAD, pattern.fanout.mean(), service.mean_demand(pattern.sizes.mean()),
        N_SERVERS,
    )
    spec = RequestSpec(
        arrivals=PoissonArrivals(rate=rate),
        fanout=pattern.fanout,
        popularity=pattern.popularity,
    )
    factory = RequestFactory(
        spec,
        keyspace,
        rng_arrivals=np.random.default_rng(SEED),
        rng_fanout=np.random.default_rng(SEED + 1),
        rng_keys=np.random.default_rng(SEED + 2),
    )
    records = []
    t = 0.0
    for _ in range(REQUESTS):
        t += factory.next_interarrival(t)
        descriptor = factory.make_request()
        records.append(
            TraceRecord(t=t, keys=descriptor.keys, sizes=descriptor.sizes)
        )
    count = write_trace(path, records)
    print(f"recorded {count} requests ({t:.2f}s span) to {path.name}")


def replay(path: Path) -> None:
    records = load_trace(path)
    pattern = traffic_pattern("baseline")
    print(f"replaying {len(records)} identical requests under each scheduler:")
    for scheduler in ("fcfs", "sbf", "das"):
        config = ClusterConfig(
            n_servers=N_SERVERS,
            n_clients=1,  # a single client preserves the trace's order
            seed=SEED,
            scheduler=scheduler,
            keyspace_size=KEYSPACE_SIZE,
            sizes=pattern.sizes,  # keyspace must match the recording
            trace=tuple(records),
        )
        cluster = Cluster(config)
        result = cluster.run(SimulationConfig(max_requests=len(records)))
        s = result.summary()
        print(
            f"  {scheduler:>5} mean {s.mean * 1e3:7.3f}ms  "
            f"p99 {s.p99 * 1e3:8.3f}ms  (n={s.count})"
        )


def main() -> None:
    pattern = traffic_pattern("baseline")
    # The replay clusters rebuild this exact keyspace from (seed, sizes),
    # so the recorded keys exist with the recorded sizes.
    from repro.sim.rand import RandomStreams

    keyspace = Keyspace(
        KEYSPACE_SIZE, pattern.sizes, RandomStreams(SEED).stream("keyspace")
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "workload.jsonl"
        synthesize_trace(path, keyspace)
        replay(path)


if __name__ == "__main__":
    main()
