#!/usr/bin/env python
"""Real-trace replay: run a cache-trace CSV through every scheduler.

Ingests the bundled Twitter/Meta-style cache trace
(``timestamp,key,op,size`` CSV), summarizes it, and replays the *exact
same request stream* (same arrival times, same keys, same op mix) under
each scheduler — eliminating workload randomness from the A/B
comparison.  This is the workflow for evaluating a scheduler change
against recorded production traces; docs/workloads.md walks through
pointing it at your own trace file.

Run:  python examples/trace_replay.py
"""

from repro import ClusterConfig, SimulationConfig
from repro.kvstore.cluster import Cluster
from repro.workload import SAMPLE_TRACE, read_csv_trace, trace_info, workload

N_SERVERS = 8
SEED = 99


def inspect_trace() -> None:
    """Ingest the raw CSV and print the `trace-info` style summary."""
    records = read_csv_trace(SAMPLE_TRACE)
    print(f"ingested {SAMPLE_TRACE.name}:")
    for line in trace_info(records).describe().splitlines():
        print(f"  {line}")


def replay() -> None:
    """Replay the bundled `trace-sample` spec under each scheduler.

    The registry spec handles the full pipeline declaratively: CSV
    ingest, rescaling onto its replay window, and remapping trace keys
    onto the simulator's canonical keyspace.
    """
    spec = workload("trace-sample")
    print(f"\nreplaying spec {spec.name!r} ({spec.description}):")
    for scheduler in ("fcfs", "sbf", "das"):
        config = ClusterConfig(
            n_servers=N_SERVERS,
            n_clients=1,  # a single client preserves the trace's order
            seed=SEED,
            scheduler=scheduler,
            workload="trace-sample",
        )
        result = Cluster(config).run(
            SimulationConfig(max_requests=len(config.trace))
        )
        s = result.summary()
        print(
            f"  {scheduler:>5} mean {s.mean * 1e3:7.3f}ms  "
            f"p99 {s.p99 * 1e3:8.3f}ms  (n={s.count})"
        )


def main() -> None:
    """Summarize the bundled trace, then A/B the schedulers on it."""
    inspect_trace()
    replay()


if __name__ == "__main__":
    main()
