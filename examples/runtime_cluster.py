#!/usr/bin/env python
"""The asyncio runtime: DAS scheduling real TCP multigets.

Starts an in-process cluster of real asyncio KV servers (throttled to an
emulated backend rate so scheduling matters), loads a small keyspace with
a few large "blob" values, then fires concurrent multigets: many small
2-key requests racing one 40-key giant.  Compare FCFS and DAS: under
FCFS the small requests queue behind the giant's operations; DAS serves
them first.

Run:  python examples/runtime_cluster.py
"""

import asyncio
import gc
import statistics
import time

from repro.runtime import LocalCluster

N_SERVERS = 4
SMALL_REQUESTS = 60
GIANT_KEYS = 40
VALUE = b"x" * 2048
BYTE_RATE = 2e6  # deliberately slow backend so queueing dominates


async def load_keys(cluster: LocalCluster) -> None:
    items = {f"small:{i:04d}": VALUE for i in range(200)}
    items.update({f"giant:{i:04d}": VALUE * 8 for i in range(GIANT_KEYS)})
    await cluster.preload(items)


async def run_mix(scheduler: str) -> dict:
    async with LocalCluster(
        n_servers=N_SERVERS, scheduler=scheduler, byte_rate=BYTE_RATE
    ) as cluster:
        await load_keys(cluster)
        client = cluster.client

        async def small(i: int) -> float:
            keys = [f"small:{(i * 2 + d) % 200:04d}" for d in range(2)]
            t0 = time.monotonic()
            await client.multiget(keys)
            return time.monotonic() - t0

        async def giant() -> float:
            keys = [f"giant:{i:04d}" for i in range(GIANT_KEYS)]
            t0 = time.monotonic()
            await client.multiget(keys)
            return time.monotonic() - t0

        giant_task = asyncio.create_task(giant())
        await asyncio.sleep(0)  # let the giant enqueue first
        small_latencies = await asyncio.gather(
            *(small(i) for i in range(SMALL_REQUESTS))
        )
        giant_latency = await giant_task
        return {
            "small_mean": statistics.mean(small_latencies),
            "small_p95": sorted(small_latencies)[int(0.95 * len(small_latencies))],
            "giant": giant_latency,
        }


async def main() -> None:
    print(
        f"{N_SERVERS} real asyncio servers, {SMALL_REQUESTS} small multigets "
        f"racing one {GIANT_KEYS}-key giant\n"
    )
    for scheduler in ("fcfs", "das"):
        # Measure each scheduler from a clean GC state: otherwise the first
        # run's surviving allocations can push a full collection into the
        # second run's window and skew the comparison by tens of ms.
        gc.collect()
        stats = await run_mix(scheduler)
        print(
            f"  {scheduler:>5}: small mean {stats['small_mean'] * 1e3:7.1f}ms  "
            f"small p95 {stats['small_p95'] * 1e3:7.1f}ms  "
            f"giant {stats['giant'] * 1e3:7.1f}ms"
        )
    print("\nDAS cuts the small requests' latency; the giant (which is the")
    print("bottleneck of its own completion anyway) pays little extra.")


if __name__ == "__main__":
    asyncio.run(main())
