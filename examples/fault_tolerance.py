#!/usr/bin/env python
"""Fault injection: surviving a server outage with timeouts + retries.

Kills server 0 for the middle half of the run and compares three cluster
configurations under DAS scheduling:

* unprotected (replication 1, no timeouts) — every request touching the
  dead server stalls until it recovers;
* replicated but blind (replication 2, no timeouts) — no better: reads
  still go to the primary;
* protected (replication 2 + 20 ms op timeout + retry) — timed-out
  operations retry on the second replica and the outage almost vanishes
  from the tail.

Run:  python examples/fault_tolerance.py
"""

from repro import ClusterConfig, ServiceConfig, SimulationConfig
from repro.kvstore.cluster import Cluster
from repro.workload import PoissonArrivals
from repro.workload.patterns import traffic_pattern
from repro.workload.popularity import UniformPopularity
from repro.workload.requests import arrival_rate_for_load

N_SERVERS = 8
LOAD = 0.5
DURATION = 2.0
OUTAGE = (0.5, 1.5)  # server 0 is down for this window


def run_variant(name: str, **overrides) -> None:
    pattern = traffic_pattern("baseline")
    service = ServiceConfig()
    rate = arrival_rate_for_load(
        LOAD, pattern.fanout.mean(), service.mean_demand(pattern.sizes.mean()),
        N_SERVERS,
    )
    config = ClusterConfig(
        n_servers=N_SERVERS,
        seed=17,
        scheduler="das",
        arrivals=PoissonArrivals(rate=rate),
        fanout=pattern.fanout,
        sizes=pattern.sizes,
        popularity=UniformPopularity(),
        service=service,
        outages={0: (OUTAGE,)},
        **overrides,
    )
    cluster = Cluster(config)
    result = cluster.run(SimulationConfig(duration=DURATION, warmup_fraction=0.0))
    s = result.summary()
    retries = sum(c.retries_sent for c in cluster.clients)
    print(
        f"  {name:<28} mean {s.mean * 1e3:8.3f}ms  p99 {s.p99 * 1e3:9.3f}ms  "
        f"p99.9 {s.p999 * 1e3:9.3f}ms  retries {retries}"
    )


def main() -> None:
    print(
        f"server 0 down from t={OUTAGE[0]}s to t={OUTAGE[1]}s "
        f"({N_SERVERS} servers, load {LOAD}, DAS)\n"
    )
    run_variant("unprotected (r=1)")
    run_variant("replicated, no timeout (r=2)", replication_factor=2)
    run_variant(
        "protected (r=2 + retry)",
        replication_factor=2,
        op_timeout=0.02,
        max_retries=2,
    )
    print("\nTimeout-driven retries reroute reads to the surviving replica;")
    print("the outage disappears from the tail at the cost of a few")
    print("duplicate operations.")


if __name__ == "__main__":
    main()
