#!/usr/bin/env python
"""Time-varying load: watch schedulers ride a load spike.

Drives the cluster with a Markov-modulated arrival process alternating
between 0.4 and 0.95 offered load (the paper's adaptivity scenario) and
prints a per-100ms-window timeline of mean RCT for each scheduler, plus
the aggregate comparison.

Run:  python examples/time_varying_load.py
"""

from repro import ClusterConfig, ServiceConfig, SimulationConfig
from repro.kvstore.cluster import Cluster
from repro.metrics.timeseries import WindowedSeries
from repro.workload import BimodalFanout, MMPPArrivals
from repro.workload.patterns import traffic_pattern
from repro.workload.requests import arrival_rate_for_load

N_SERVERS = 16
DURATION = 3.0
WINDOW = 0.1


def sparkline(values, lo, hi) -> str:
    blocks = " _.-=+*#%@"
    span = max(hi - lo, 1e-12)
    return "".join(
        blocks[min(len(blocks) - 1, int((v - lo) / span * (len(blocks) - 1)))]
        for v in values
    )


def main() -> None:
    base = traffic_pattern("baseline")
    fanout = BimodalFanout(small=2, large=32, p_large=0.1)
    service = ServiceConfig()
    mean_demand = service.mean_demand(base.sizes.mean())
    r_low = arrival_rate_for_load(0.4, fanout.mean(), mean_demand, N_SERVERS)
    r_high = arrival_rate_for_load(0.95, fanout.mean(), mean_demand, N_SERVERS)
    arrivals = MMPPArrivals(rates=(r_low, r_high), dwell_means=(0.3, 0.3))
    print(f"MMPP load 0.4 <-> 0.95 (dwell 0.3s), {DURATION}s, {N_SERVERS} servers\n")

    timelines = {}
    for scheduler in ("fcfs", "sbf", "das"):
        config = ClusterConfig(
            n_servers=N_SERVERS,
            seed=3,
            scheduler=scheduler,
            arrivals=arrivals,
            fanout=fanout,
            sizes=base.sizes,
            popularity=base.popularity,
            service=service,
        )
        cluster = Cluster(config)
        result = cluster.run(SimulationConfig(duration=DURATION, warmup_fraction=0.0))
        series = WindowedSeries(WINDOW)
        for record in result.collector.records:
            series.add(record.completion_time, record.rct)
        timelines[scheduler] = (series.means(), result.summary())

    all_means = [m for means, _ in timelines.values() for m in means]
    lo, hi = min(all_means), max(all_means)
    print(f"mean RCT per {WINDOW * 1e3:.0f}ms window "
          f"(scale {lo * 1e3:.2f}..{hi * 1e3:.2f} ms):")
    for scheduler, (means, _) in timelines.items():
        print(f"  {scheduler:>5} |{sparkline(means, lo, hi)}|")
    print("\naggregate:")
    for scheduler, (_, summary) in timelines.items():
        print(
            f"  {scheduler:>5} mean {summary.mean * 1e3:7.3f}ms   "
            f"p99 {summary.p99 * 1e3:8.3f}ms   worst-window "
            f"{max(timelines[scheduler][0]) * 1e3:7.2f}ms"
        )


if __name__ == "__main__":
    main()
