#!/usr/bin/env python
"""Fault tolerance in the asyncio runtime: chaos, retries, recovery.

Starts a real 4-server cluster, preloads a keyspace, then crashes server
0 mid-run (an injected outage: TCP stays up, nothing answers — the worst
failure mode).  Side by side:

* an *unprotected* client, which hangs on the first multiget that touches
  the dead server;
* a *protected* client (``RetryPolicy`` + partial multigets + circuit
  breaker), which keeps answering with every key the live servers own and
  a report naming the dead one — then reconverges on its own when the
  server comes back.

Run:  python examples/runtime_faults.py
"""

import asyncio
import time

from repro.runtime import LocalCluster, Outage, RetryPolicy

N_SERVERS = 4
N_KEYS = 60
OUTAGE = 1.0  # seconds of darkness for server 0


async def main() -> None:
    async with LocalCluster(n_servers=N_SERVERS, byte_rate=None) as cluster:
        items = {f"key:{i:03d}": f"value-{i}".encode() for i in range(N_KEYS)}
        await cluster.preload(items)
        dead_keys = [k for k in items if cluster.client.owner(k) == 0]
        print(
            f"{N_SERVERS} servers, {N_KEYS} keys "
            f"({len(dead_keys)} owned by server 0)\n"
        )

        protected = await cluster.new_client(
            retry_policy=RetryPolicy(op_timeout=0.05, max_attempts=3),
            breaker_reset_timeout=0.2,
        )

        print(f"-- crashing server 0 for {OUTAGE:.1f}s (injected outage)")
        cluster.inject(0, Outage(0.0, OUTAGE))

        # The unprotected client hangs until we give up on it.
        t0 = time.monotonic()
        try:
            await asyncio.wait_for(cluster.client.multiget(list(items)), 0.25)
            print("unprotected client: completed (unexpected!)")
        except asyncio.TimeoutError:
            print(
                "unprotected client: still hanging after "
                f"{time.monotonic() - t0:.2f}s -> abandoned"
            )

        # The protected client degrades gracefully the whole outage long.
        rounds = 0
        while time.monotonic() - t0 < OUTAGE:
            values, report = await protected.multiget(list(items), partial=True)
            rounds += 1
            if rounds == 1:
                print(
                    f"protected client:   {len(values)}/{len(items)} keys, "
                    f"failed servers {sorted(report.failed_servers)}, "
                    f"{report.retries} retries this call"
                )
        print(f"protected client:   {rounds} partial multigets during the outage")

        # Recovery needs nothing from us: the outage window ends, the
        # breaker half-opens, the next probe succeeds.
        await asyncio.sleep(0.25)
        values, report = await protected.multiget(list(items), partial=True)
        assert report.complete and values == items
        print("after recovery:     full multiget succeeded, no manual steps")

        stats = protected.stats()
        print(
            "\nclient counters: "
            f"retries={stats['retries']} timeouts={stats['timeouts']} "
            f"breaker_opens={stats['breaker_opens']} "
            f"fast_rejections={stats['breaker_rejections']}"
        )
        faults = cluster.servers[0].stats()["faults"]
        print(
            "server 0 faults injected: "
            f"dropped={faults['dropped']} "
            f"refused_connections={faults['refused_connections']}"
        )


if __name__ == "__main__":
    asyncio.run(main())
