"""FaultPlan schema: entry validation, scheduling, serialization."""

import pytest

from repro.errors import ConfigError
from repro.faults import (
    Crash,
    DelaySpike,
    FaultPlan,
    PacketLoss,
    Partition,
    Recover,
    SlowNode,
)


class TestEntryValidation:
    def test_crash_negative_time_rejected(self):
        with pytest.raises(ConfigError):
            Crash(0, at=-1.0)

    def test_windowed_entries_need_positive_windows(self):
        with pytest.raises(ConfigError):
            Partition(at=1.0, until=1.0, servers=(0,))
        with pytest.raises(ConfigError):
            PacketLoss(at=2.0, until=1.0, probability=0.5)
        with pytest.raises(ConfigError):
            DelaySpike(at=1.0, until=0.5, extra=0.01)

    def test_packet_loss_probability_bounds(self):
        with pytest.raises(ConfigError):
            PacketLoss(at=0.0, until=1.0, probability=0.0)
        with pytest.raises(ConfigError):
            PacketLoss(at=0.0, until=1.0, probability=1.5)
        PacketLoss(at=0.0, until=1.0, probability=1.0)  # inclusive top

    def test_slow_node_factor_bounds(self):
        with pytest.raises(ConfigError):
            SlowNode(0, at=0.0, until=1.0, factor=0.0)
        with pytest.raises(ConfigError):
            SlowNode(0, at=0.0, until=1.0, factor=1.0)

    def test_partition_needs_servers(self):
        with pytest.raises(ConfigError):
            Partition(at=0.0, until=1.0, servers=())


class TestLifecycle:
    def test_double_crash_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan((Crash(0, at=0.1), Crash(0, at=0.2)))

    def test_orphan_recover_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan((Recover(0, at=0.5),))

    def test_crash_recover_crash_again_ok(self):
        FaultPlan(
            (
                Crash(0, at=0.1),
                Recover(0, at=0.2),
                Crash(0, at=0.3),
            )
        )

    def test_validate_for_unknown_server(self):
        plan = FaultPlan((Crash(7, at=0.1),))
        with pytest.raises(ConfigError):
            plan.validate_for(n_servers=4, n_clients=2)

    def test_validate_for_unknown_client(self):
        plan = FaultPlan(
            (Partition(at=0.0, until=1.0, servers=(0,), clients=(5,)),)
        )
        with pytest.raises(ConfigError):
            plan.validate_for(n_servers=4, n_clients=2)


class TestScheduling:
    def test_events_are_time_ordered(self):
        plan = FaultPlan(
            (
                Crash(0, at=1.0),
                Recover(0, at=2.0),
                PacketLoss(at=0.5, until=1.5, probability=0.3),
                SlowNode(1, at=0.25, until=0.75, factor=0.5),
            )
        )
        events = plan.scheduled_events()
        times = [e[0] for e in events]
        assert times == sorted(times)
        kinds = [e[2] for e in events]
        assert kinds == [
            "slow_node_start",
            "packet_loss_start",
            "slow_node_end",
            "crash",
            "packet_loss_end",
            "recover",
        ]

    def test_fault_window_spans_all_entries(self):
        plan = FaultPlan(
            (Crash(0, at=1.0), Recover(0, at=2.5), DelaySpike(at=0.5, until=2.0, extra=0.01))
        )
        assert plan.fault_window() == (0.5, 2.5)
        assert FaultPlan().fault_window() is None

    def test_slow_windows_are_degradation_steps(self):
        plan = FaultPlan((SlowNode(3, at=1.0, until=2.0, factor=0.4),))
        assert plan.slow_windows(3) == ((1.0, 0.4), (2.0, 1.0))
        assert plan.slow_windows(0) == ()

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan((Crash(0, at=0.0),))


class TestSerialization:
    def test_round_trip(self):
        plan = FaultPlan(
            (
                Crash(0, at=1.0),
                Recover(0, at=2.0),
                Partition(at=0.5, until=1.5, servers=(1, 2), clients=(0,)),
                PacketLoss(at=0.5, until=1.5, probability=0.3, servers=(1,), seed=9),
                DelaySpike(at=0.1, until=0.2, extra=0.005),
                SlowNode(3, at=0.3, until=0.6, factor=0.5),
            )
        )
        assert FaultPlan.from_dicts(plan.to_dicts()) == plan

    def test_timeline_matches_schedule(self):
        plan = FaultPlan((Crash(1, at=0.5), Recover(1, at=1.0)))
        timeline = plan.timeline()
        assert [t["at"] for t in timeline] == [0.5, 1.0]
        assert [t["event"] for t in timeline] == ["crash", "recover"]
        assert all(t["server"] == 1 for t in timeline)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan.from_dicts([{"kind": "meteor", "at": 0.0}])
