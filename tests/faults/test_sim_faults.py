"""Sim adapter: crashes drop work, link faults drop/delay messages."""

import pytest

from repro.errors import ConfigError
from repro.faults import (
    Crash,
    DelaySpike,
    FaultPlan,
    PacketLoss,
    Partition,
    Recover,
    SlowNode,
)
from repro.kvstore.cluster import Cluster
from repro.kvstore.config import SimulationConfig
from repro.kvstore.service import DegradationEvent

from tests.conftest import small_config


def run_with_plan(plan, duration=1.0, **overrides):
    config = small_config(load=0.3, seed=9, fault_plan=plan, **overrides)
    cluster = Cluster(config)
    result = cluster.run(SimulationConfig(duration=duration, warmup_fraction=0.0))
    return cluster, result


class TestCrashLifecycle:
    def test_crash_drops_queued_ops_unlike_outage(self):
        plan = FaultPlan((Crash(0, at=0.1), Recover(0, at=0.6)))
        cluster, result = run_with_plan(plan)
        server = cluster.servers[0]
        assert server.ops_dropped > 0
        assert server.crashes == 1
        assert not server.crashed  # recovered
        # Without retries those ops are gone: some requests never finish.
        assert result.requests_completed < result.requests_sent

    def test_crashed_server_refuses_new_ops(self):
        plan = FaultPlan((Crash(0, at=0.0),))
        cluster, _ = run_with_plan(plan, duration=0.5)
        server = cluster.servers[0]
        assert server.ops_served == 0
        assert server.ops_dropped > 0
        assert len(server.queue) == 0  # nothing parks, unlike an outage

    def test_server_serves_again_after_recover(self):
        plan = FaultPlan((Crash(0, at=0.1), Recover(0, at=0.3)))
        cluster, _ = run_with_plan(plan)
        served_before = cluster.servers[0].ops_served
        assert served_before > 0

    def test_retries_recover_crash_losses(self):
        plan = FaultPlan((Crash(0, at=0.2), Recover(0, at=0.6)))
        cluster, result = run_with_plan(
            plan, replication_factor=2, op_timeout=0.02, max_retries=2
        )
        assert result.requests_completed == result.requests_sent
        assert sum(c.retries_sent for c in cluster.clients) > 0

    def test_run_result_propagates_drop_counters(self):
        plan = FaultPlan((Crash(0, at=0.1), Recover(0, at=0.6)))
        cluster, result = run_with_plan(plan)
        assert result.server_ops_dropped[0] == cluster.servers[0].ops_dropped
        assert result.server_ops_dropped[0] > 0
        assert len(result.server_ops_failed) == len(cluster.servers)


class TestLinkFaults:
    def test_partition_blocks_reads_to_cut_servers(self):
        plan = FaultPlan((Partition(at=0.0, until=10.0, servers=(0,)),))
        cluster, result = run_with_plan(plan, duration=0.5)
        assert cluster.servers[0].ops_served == 0
        assert cluster.network.messages_dropped > 0
        assert result.faults["network"]["dropped_partition"] > 0

    def test_client_scoped_partition_spares_other_clients(self):
        plan = FaultPlan(
            (Partition(at=0.0, until=10.0, servers=(0,), clients=(0,)),)
        )
        cluster, _ = run_with_plan(plan, duration=0.5)
        # Client 1 still reaches server 0.
        assert cluster.servers[0].ops_served > 0
        assert cluster.network.messages_dropped > 0

    def test_packet_loss_drops_some_messages(self):
        plan = FaultPlan(
            (PacketLoss(at=0.0, until=10.0, probability=0.3, seed=3),)
        )
        cluster, result = run_with_plan(plan, duration=0.5)
        dropped = result.faults["network"]["dropped_loss"]
        assert 0 < dropped < cluster.network.messages_sent

    def test_packet_loss_is_seed_deterministic(self):
        plan = FaultPlan(
            (PacketLoss(at=0.0, until=10.0, probability=0.3, seed=3),)
        )
        _, r1 = run_with_plan(plan, duration=0.4)
        _, r2 = run_with_plan(plan, duration=0.4)
        assert (
            r1.faults["network"]["dropped_loss"]
            == r2.faults["network"]["dropped_loss"]
        )

    def test_delay_spike_inflates_latency_not_loss(self):
        base_plan = FaultPlan()
        spike = FaultPlan((DelaySpike(at=0.0, until=10.0, extra=0.005),))
        _, healthy = run_with_plan(base_plan, duration=0.5)
        cluster, spiked = run_with_plan(spike, duration=0.5)
        # Only the tail still in flight at the duration cut is unfinished.
        assert spiked.requests_sent - spiked.requests_completed < 50
        assert cluster.network.messages_dropped == 0
        assert spiked.mean_rct > healthy.mean_rct + 0.005

    def test_faults_cleared_after_window(self):
        plan = FaultPlan((Partition(at=0.0, until=0.2, servers=(0,)),))
        cluster, _ = run_with_plan(plan)
        assert not cluster.network.faults.active
        assert cluster.servers[0].ops_served > 0


class TestSlowNode:
    def test_slow_node_becomes_service_degradation(self):
        plan = FaultPlan((SlowNode(0, at=0.2, until=0.6, factor=0.5),))
        cluster, _ = run_with_plan(plan, duration=0.1)
        service = cluster.servers[0].service
        assert service.speed_factor(0.3) == pytest.approx(0.5)
        assert service.speed_factor(0.7) == pytest.approx(1.0)

    def test_slow_node_conflicts_with_explicit_degradations(self):
        plan = FaultPlan((SlowNode(0, at=0.2, until=0.6, factor=0.5),))
        with pytest.raises(ConfigError):
            small_config(
                fault_plan=plan,
                degradations={0: (DegradationEvent(0.1, 0.4),)},
            )


class TestObservability:
    def test_timeline_matches_plan(self):
        plan = FaultPlan((Crash(0, at=0.1), Recover(0, at=0.3)))
        cluster, result = run_with_plan(plan)
        assert result.faults["applied"] == plan.timeline()
        assert result.faults["active"] == []

    def test_fault_metrics_registered(self):
        plan = FaultPlan((Crash(0, at=0.1), Recover(0, at=0.3)))
        _, result = run_with_plan(plan)
        snap = result.metrics_snapshot()
        counters = snap["metrics"]["counters"]
        gauges = snap["metrics"]["gauges"]
        assert counters['fault_events_total{kind="crash"}'] == 1
        assert counters['fault_events_total{kind="recover"}'] == 1
        assert "fault_active_windows" in gauges
        assert "fault_servers_crashed" in gauges
        assert any(k.startswith("server_ops_dropped") for k in gauges)
        assert snap["faults"] == result.faults

    def test_healthy_run_has_empty_faults_block(self):
        _, result = run_with_plan(FaultPlan(), duration=0.3)
        assert result.faults == {}

    def test_crash_gauge_counts_currently_down_servers(self):
        plan = FaultPlan((Crash(0, at=0.1),))  # never recovers
        cluster, result = run_with_plan(plan, duration=0.5)
        assert cluster.servers[0].crashed
        assert result.faults["active"] == ["crash"]
        assert result.faults["servers"][0]["crashed"] is True
