"""X6 chaos cells must be deterministic under the parallel engine.

Fault drivers, hedging, and breakers all run inside the simulated clock
with seeded randomness, so a chaos cell executed in a worker process must
be byte-identical to the same cell run sequentially — summaries, request
counts, metrics, traces, and the fault timeline itself.
"""

import dataclasses

import pytest

from repro.experiments.parallel import (
    cell_fingerprint,
    cell_tasks,
    run_scenario_parallel,
)
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import get_scenario

SCALE = 0.02


def chaos_subset(scale=SCALE):
    """X6 narrowed to the two crash cells (the interesting comparison)."""
    scenario = get_scenario("X6", scale=scale)
    keep = {"crash/timeout-only", "crash/hedge+cb"}
    return dataclasses.replace(
        scenario,
        points=tuple(p for p in scenario.points if p.x in keep),
    )


@pytest.fixture(scope="module")
def sequential_result():
    return run_scenario(chaos_subset())


class TestX6Determinism:
    def test_parallel_matches_sequential(self, sequential_result):
        parallel = run_scenario_parallel(chaos_subset(), workers=2)
        assert set(parallel.cells) == set(sequential_result.cells)
        for key, seq_cell in sequential_result.cells.items():
            par_cell = parallel.cells[key]
            assert par_cell.summary == seq_cell.summary
            assert par_cell.requests == seq_cell.requests
            assert par_cell.metrics == seq_cell.metrics
            assert par_cell.traces == seq_cell.traces

    def test_repeated_sequential_runs_identical(self, sequential_result):
        again = run_scenario(chaos_subset())
        for key, cell in sequential_result.cells.items():
            assert again.cells[key].summary == cell.summary
            assert again.cells[key].metrics == cell.metrics

    def test_fingerprints_cover_fault_config(self):
        """Fault plans, hedge and detector configs must all perturb the
        cell fingerprint, or checkpoint resume could serve stale cells."""
        base = chaos_subset()
        tasks = cell_tasks(base)
        prints = {cell_fingerprint(task) for task in tasks}
        assert len(prints) == len(tasks)
        assert len(tasks) == len(base.points) * len(base.schedulers)
        # A scale above the duration floor shifts the fault windows, which
        # must flow into the fingerprint via the plan inside the config.
        rescaled_prints = {
            cell_fingerprint(task) for task in cell_tasks(chaos_subset(scale=0.2))
        }
        assert prints.isdisjoint(rescaled_prints)

    def test_hedging_beats_timeout_only_at_smoke_scale(self, sequential_result):
        p99 = {
            x: sequential_result.cell(x, "DAS").metric("p99")
            for x in ("crash/timeout-only", "crash/hedge+cb")
        }
        assert p99["crash/hedge+cb"] < p99["crash/timeout-only"]
