"""Sim-client resilience: hedging, failure detection, timer poisoning."""

import pytest

from repro.errors import ConfigError
from repro.faults import (
    Crash,
    FailureDetectorConfig,
    FaultPlan,
    HedgePolicy,
    Recover,
)
from repro.kvstore.cluster import Cluster
from repro.kvstore.config import SimulationConfig

from tests.conftest import small_config


def guarded_config(**overrides):
    return small_config(
        load=0.3,
        seed=9,
        replication_factor=overrides.pop("replication_factor", 3),
        op_timeout=overrides.pop("op_timeout", 0.02),
        max_retries=overrides.pop("max_retries", 2),
        **overrides,
    )


class TestConfigValidation:
    def test_failure_detector_requires_timeout(self):
        with pytest.raises(ConfigError):
            small_config(failure_detector=FailureDetectorConfig())

    def test_detector_config_bounds(self):
        with pytest.raises(ConfigError):
            FailureDetectorConfig(failure_threshold=0)
        with pytest.raises(ConfigError):
            FailureDetectorConfig(reset_timeout=0.0)


class TestHedging:
    def test_hedges_fire_and_win_under_crash(self):
        plan = FaultPlan((Crash(0, at=0.2), Recover(0, at=0.6)))
        config = guarded_config(
            hedge=HedgePolicy(percentile=95.0, min_samples=20),
            fault_plan=plan,
        )
        cluster = Cluster(config)
        result = cluster.run(SimulationConfig(duration=1.0, warmup_fraction=0.0))
        hedges = sum(c.hedges_sent for c in cluster.clients)
        won = sum(c.hedges_won for c in cluster.clients)
        assert hedges > 0
        assert 0 < won <= hedges
        assert result.requests_completed == result.requests_sent

    def test_hedging_beats_timeout_only_on_p99(self):
        plan = FaultPlan((Crash(0, at=0.2), Recover(0, at=0.6)))
        sim = SimulationConfig(duration=1.0, warmup_fraction=0.0)
        timeout_only = Cluster(guarded_config(fault_plan=plan)).run(sim)
        hedged = Cluster(
            guarded_config(
                hedge=HedgePolicy(percentile=95.0, min_samples=20),
                failure_detector=FailureDetectorConfig(failure_threshold=3),
                fault_plan=plan,
            )
        ).run(sim)
        assert hedged.percentile(99) < timeout_only.percentile(99)

    def test_no_hedges_on_single_replica(self):
        config = small_config(
            load=0.3,
            seed=9,
            replication_factor=1,
            op_timeout=0.02,
            hedge=HedgePolicy(hedge_after=0.0005),
        )
        cluster = Cluster(config)
        cluster.run(SimulationConfig(max_requests=200))
        assert sum(c.hedges_sent for c in cluster.clients) == 0

    def test_fixed_threshold_hedges_on_healthy_cluster(self):
        # An aggressive fixed hedge delay fires on ordinary service times.
        config = guarded_config(hedge=HedgePolicy(hedge_after=0.0005))
        cluster = Cluster(config)
        result = cluster.run(SimulationConfig(max_requests=300))
        assert sum(c.hedges_sent for c in cluster.clients) > 0
        assert result.requests_completed == 300


class TestFailureDetector:
    def test_breaker_opens_under_sustained_crash(self):
        plan = FaultPlan((Crash(0, at=0.1),))  # never recovers
        config = guarded_config(
            failure_detector=FailureDetectorConfig(failure_threshold=3),
            fault_plan=plan,
        )
        cluster = Cluster(config)
        cluster.run(SimulationConfig(duration=0.8, warmup_fraction=0.0))
        opens = sum(c.breaker_opens for c in cluster.clients)
        assert opens > 0
        open_breakers = [
            b
            for c in cluster.clients
            for sid, b in c._breakers.items()
            if sid == 0 and b.state == b.OPEN
        ]
        assert open_breakers, "no client holds an open breaker for server 0"

    def test_open_breaker_marks_server_unhealthy_in_estimates(self):
        plan = FaultPlan((Crash(0, at=0.1),))
        fd = FailureDetectorConfig(failure_threshold=3)
        config = guarded_config(
            failure_detector=fd, fault_plan=plan, replica_selection="tars"
        )
        cluster = Cluster(config)
        cluster.run(SimulationConfig(duration=0.8, warmup_fraction=0.0))
        tripped = [c for c in cluster.clients if c.breaker_opens > 0]
        assert tripped
        now = cluster.env.now
        for client in tripped:
            # The synthetic worst-case feedback dominates the EWMA: the
            # dead server looks orders of magnitude more loaded than any
            # healthy one (whose backlog is sub-millisecond here).
            assert client.estimates.queued_work(0, now) > 1.0

    def test_retries_skip_open_breaker_replicas(self):
        plan = FaultPlan((Crash(0, at=0.05),))
        config = guarded_config(
            failure_detector=FailureDetectorConfig(failure_threshold=2),
            fault_plan=plan,
        )
        cluster = Cluster(config)
        result = cluster.run(SimulationConfig(duration=1.0, warmup_fraction=0.0))
        # Once breakers open, retries route to healthy replicas and the
        # cluster keeps completing requests at full rate.
        tail = result.requests_sent - result.requests_completed
        assert tail < result.requests_sent * 0.1

    def test_breaker_closes_after_recovery(self):
        plan = FaultPlan((Crash(0, at=0.1), Recover(0, at=0.3)))
        config = guarded_config(
            failure_detector=FailureDetectorConfig(
                failure_threshold=3, reset_timeout=0.1
            ),
            fault_plan=plan,
        )
        cluster = Cluster(config)
        cluster.run(SimulationConfig(duration=1.5, warmup_fraction=0.0))
        for client in cluster.clients:
            breaker = client._breakers.get(0)
            if breaker is not None:
                assert breaker.state == breaker.CLOSED


class TestTimerPoisoning:
    def test_answered_ops_cancel_their_timers(self):
        config = guarded_config()
        cluster = Cluster(config)
        cluster.run(SimulationConfig(max_requests=300))
        cancelled = sum(c.timers_cancelled for c in cluster.clients)
        timeouts = sum(c.timeouts_observed for c in cluster.clients)
        assert cancelled > 0
        assert timeouts == 0  # healthy cluster: every timer was poisoned

    def test_no_timer_state_leaks_after_drain(self):
        config = guarded_config(hedge=HedgePolicy(hedge_after=0.0005))
        cluster = Cluster(config)
        cluster.run(SimulationConfig(max_requests=300))
        for client in cluster.clients:
            assert not client._op_timers
            assert not client._hedge_timers
            assert not client._hedged
            assert not client._attempts

    def test_poisoning_keeps_results_identical(self):
        """Cancelling stale timers is an optimization: request accounting
        must match a run where timers fire as stale no-ops."""
        config = guarded_config()
        cluster = Cluster(config)
        result = cluster.run(SimulationConfig(max_requests=400))
        assert result.requests_completed == 400
        assert sum(c.retries_sent for c in cluster.clients) == 0
