"""Sim/runtime parity: one FaultPlan drives both halves identically.

The acceptance test for the shared fault subsystem: the same plan object
applied to the simulated :class:`Cluster` (via ``ClusterConfig``) and to
the asyncio :class:`LocalCluster` (via ``apply_fault_plan``) must produce
the *same* fault timeline in their stats snapshots — same events, same
order, same (planned) times — and both must expose it through their
reporting surfaces.
"""

import asyncio

import pytest

from repro.faults import (
    Crash,
    DelaySpike,
    FaultPlan,
    PacketLoss,
    Partition,
    Recover,
    SlowNode,
)
from repro.faults.runtime import RuntimeFaultDriver
from repro.kvstore.cluster import Cluster
from repro.kvstore.config import SimulationConfig
from repro.runtime import DelayReplies, DropReplies, LocalCluster, Outage

from tests.conftest import small_config

#: One entry of every kind, interleaved, on a 4-server cluster.
PLAN = FaultPlan(
    (
        Crash(0, at=0.05),
        Recover(0, at=0.20),
        Partition(at=0.08, until=0.16, servers=(1,)),
        PacketLoss(at=0.10, until=0.18, probability=0.5, servers=(2,), seed=5),
        DelaySpike(at=0.12, until=0.22, extra=0.002, servers=(3,)),
        SlowNode(2, at=0.02, until=0.24, factor=0.5),
    )
)


def sim_timeline(plan):
    config = small_config(load=0.2, seed=9, fault_plan=plan)
    cluster = Cluster(config)
    result = cluster.run(SimulationConfig(duration=0.3, warmup_fraction=0.0))
    return result.faults["applied"]


def runtime_timeline(plan, time_scale=0.2):
    async def scenario():
        async with LocalCluster(n_servers=4) as cluster:
            driver = cluster.apply_fault_plan(plan, time_scale=time_scale)
            await driver.wait()
            return cluster.stats()["fault_plan"]["applied"]

    return asyncio.run(scenario())


class TestTimelineParity:
    def test_same_plan_same_timeline(self):
        sim = sim_timeline(PLAN)
        runtime = runtime_timeline(PLAN)
        assert sim == runtime
        assert sim == PLAN.timeline()

    def test_timelines_carry_planned_times(self):
        # Both adapters record the plan's own times, immune to wall-clock
        # jitter; scaling the replay speed must not change the record.
        fast = runtime_timeline(PLAN, time_scale=0.1)
        assert [e["at"] for e in fast] == [
            e[0] for e in PLAN.scheduled_events()
        ]


class TestRuntimeTranslation:
    def test_policies_installed_and_removed(self):
        plan = FaultPlan(
            (
                Partition(at=0.0, until=0.05, servers=(1,)),
                PacketLoss(at=0.0, until=0.05, probability=0.5, servers=(2,)),
                DelaySpike(at=0.0, until=0.05, extra=0.001, servers=(3,)),
            )
        )

        async def scenario():
            async with LocalCluster(n_servers=4) as cluster:
                driver = RuntimeFaultDriver(cluster, plan, time_scale=1.0)
                task = asyncio.get_running_loop().create_task(driver.run())
                await asyncio.sleep(0.02)
                mid = {
                    sid: [type(p) for p in cluster.servers[sid].faults.policies]
                    for sid in (1, 2, 3)
                }
                await task
                end = {
                    sid: list(cluster.servers[sid].faults.policies)
                    for sid in (1, 2, 3)
                }
                return mid, end

        mid, end = asyncio.run(scenario())
        assert Outage in mid[1]
        assert DropReplies in mid[2]
        assert DelayReplies in mid[3]
        assert all(not policies for policies in end.values())

    def test_crash_recover_round_trip(self):
        plan = FaultPlan((Crash(1, at=0.0), Recover(1, at=0.05)))

        async def scenario():
            async with LocalCluster(n_servers=2) as cluster:
                driver = cluster.apply_fault_plan(plan, time_scale=1.0)
                await driver.wait()
                # Server is back: a write to it must succeed.
                await cluster.client.put("probe", b"x")
                return await cluster.client.get("probe")

        assert asyncio.run(scenario()) == b"x"

    def test_slow_node_reply_delay_scales_with_value_size(self):
        # The sim slows the whole service (demand / factor); the runtime
        # approximation must therefore charge the full missing term
        # (1/f - 1) * (per_op_overhead + bytes / byte_rate) at the reply
        # boundary — not a fixed per-op constant that would let large
        # values through a "slow" node at full speed.
        factor = 0.5
        large = 4 << 20  # 4 MiB: per-byte term ~42 ms at 100 MB/s
        plan = FaultPlan((SlowNode(0, at=0.0, until=5.0, factor=factor),))
        slow = 1.0 / factor - 1.0

        async def scenario():
            async with LocalCluster(n_servers=1) as cluster:
                server = cluster.servers[0]
                await cluster.client.put("small", b"x" * 64)
                await cluster.client.put("large", b"x" * large)
                driver = RuntimeFaultDriver(cluster, plan, time_scale=1.0)
                task = asyncio.get_running_loop().create_task(driver.run())
                while not server.faults.policies:
                    await asyncio.sleep(0.001)
                policy = server.faults.policies[0]
                assert isinstance(policy, DelayReplies)
                assert policy.delay == pytest.approx(
                    slow * server.per_op_overhead
                )
                assert policy.delay_per_byte == pytest.approx(
                    slow / server.byte_rate
                )
                loop = asyncio.get_running_loop()
                t0 = loop.time()
                assert await cluster.client.get("small") == b"x" * 64
                small_elapsed = loop.time() - t0
                t0 = loop.time()
                assert len(await cluster.client.get("large")) == large
                large_elapsed = loop.time() - t0
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
                return server.byte_rate, small_elapsed, large_elapsed

        byte_rate, small_elapsed, large_elapsed = asyncio.run(scenario())
        # Hard lower bound: the reply is held back at least the per-byte
        # term, so the large get cannot complete faster than that.
        assert large_elapsed >= slow * large / byte_rate
        assert large_elapsed > small_elapsed * 4

    def test_invalid_time_scale_rejected(self):
        async def scenario():
            async with LocalCluster(n_servers=2) as cluster:
                with pytest.raises(ValueError):
                    RuntimeFaultDriver(cluster, PLAN, time_scale=0.0)

        asyncio.run(scenario())
