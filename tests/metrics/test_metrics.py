"""Tests for collectors, summaries, percentiles, and time series."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.metrics.collector import MetricsCollector
from repro.metrics.percentiles import P2Quantile, exact_percentile, percentile_profile
from repro.metrics.summary import compare_means, mean_confidence_interval, summarize
from repro.metrics.timeseries import WindowedSeries

from tests.schedulers.helpers import make_multiget


def finished_request(request_id=0, arrival=0.0, completion=1.0, slices=((0, 0.5),)):
    request = make_multiget(list(slices), request_id=request_id, arrival=arrival)
    request.completion_time = completion
    return request


class TestCollector:
    def test_record_and_count(self):
        collector = MetricsCollector()
        collector.record_request(finished_request())
        assert len(collector) == 1

    def test_unfinished_request_rejected(self):
        collector = MetricsCollector()
        request = make_multiget([(0, 1.0)])
        with pytest.raises(ConfigError):
            collector.record_request(request)

    def test_rct_computed(self):
        collector = MetricsCollector()
        collector.record_request(finished_request(arrival=2.0, completion=5.0))
        assert collector.rcts()[0] == pytest.approx(3.0)

    def test_warmup_filters_by_arrival(self):
        collector = MetricsCollector()
        for i in range(10):
            collector.record_request(
                finished_request(request_id=i, arrival=float(i), completion=i + 1.0)
            )
        assert len(collector.rcts(warmup_time=5.0)) == 5

    def test_cooldown_filter(self):
        collector = MetricsCollector()
        for i in range(10):
            collector.record_request(
                finished_request(request_id=i, arrival=float(i), completion=i + 1.0)
            )
        window = collector.filtered(warmup_time=2.0, cooldown_time=7.0)
        assert len(window) == 6

    def test_warmup_time_for_fraction(self):
        collector = MetricsCollector()
        for i in range(10):
            collector.record_request(
                finished_request(request_id=i, arrival=float(i), completion=i + 1.0)
            )
        assert collector.warmup_time_for_fraction(0.2) == pytest.approx(2.0)
        assert collector.warmup_time_for_fraction(0.0) == 0.0

    def test_mean_rct_empty_raises(self):
        with pytest.raises(ConfigError):
            MetricsCollector().mean_rct()

    def test_slowdown_normalizes_by_bottleneck(self):
        collector = MetricsCollector()
        collector.record_request(
            finished_request(completion=1.0, slices=((0, 0.5),))
        )
        assert collector.slowdowns()[0] == pytest.approx(2.0)

    def test_op_counters(self):
        collector = MetricsCollector()
        collector.record_op_completion(True)
        collector.record_op_completion(False)
        assert collector.ops_completed == 1
        assert collector.ops_failed == 1


class TestSummary:
    def test_summarize_fields(self):
        stats = summarize(np.arange(1, 101, dtype=float))
        assert stats.count == 100
        assert stats.mean == pytest.approx(50.5)
        assert stats.p50 == pytest.approx(50.5)
        assert stats.minimum == 1.0
        assert stats.maximum == 100.0
        assert stats.p50 <= stats.p90 <= stats.p99 <= stats.p999

    def test_summarize_single_sample(self):
        stats = summarize([5.0])
        assert stats.std == 0.0

    def test_summarize_empty_raises(self):
        with pytest.raises(ConfigError):
            summarize([])

    def test_as_dict_and_str(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats.as_dict()["count"] == 3
        assert "mean=" in str(stats)

    def test_confidence_interval_contains_mean(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(10.0, 2.0, size=500)
        mean, lower, upper = mean_confidence_interval(samples)
        assert lower < mean < upper
        assert lower < 10.0 < upper  # CI covers the true mean here

    def test_confidence_interval_needs_two_samples(self):
        with pytest.raises(ConfigError):
            mean_confidence_interval([1.0])

    def test_compare_means_reduction(self):
        baseline = [10.0 + 0.01 * i for i in range(50)]
        treatment = [5.0 + 0.005 * i for i in range(50)]
        result = compare_means(baseline=baseline, treatment=treatment)
        expected = 1.0 - np.mean(treatment) / np.mean(baseline)
        assert result["reduction"] == pytest.approx(expected)

    def test_compare_means_detects_significance(self):
        rng = np.random.default_rng(0)
        base = rng.normal(10, 1, 200)
        treat = rng.normal(8, 1, 200)
        result = compare_means(base, treat)
        assert result["p_value"] < 0.001

    def test_compare_means_empty_raises(self):
        with pytest.raises(ConfigError):
            compare_means([], [1.0])


class TestPercentiles:
    def test_exact_matches_numpy(self):
        samples = np.random.default_rng(0).random(1000)
        assert exact_percentile(samples, 99) == pytest.approx(
            np.percentile(samples, 99)
        )

    def test_exact_validation(self):
        with pytest.raises(ConfigError):
            exact_percentile([1.0], 0)
        with pytest.raises(ConfigError):
            exact_percentile([], 50)

    def test_profile(self):
        samples = np.arange(1000, dtype=float)
        profile = percentile_profile(samples, qs=(50, 99))
        assert profile[50] == pytest.approx(499.5)

    def test_both_apis_accept_q_100(self):
        samples = [1.0, 2.0, 3.0]
        assert exact_percentile(samples, 100) == 3.0
        assert percentile_profile(samples, qs=(100,))[100] == 3.0

    def test_both_apis_reject_out_of_range(self):
        samples = [1.0, 2.0, 3.0]
        for bad_q in (0, -5, 150):
            with pytest.raises(ConfigError):
                exact_percentile(samples, bad_q)
            with pytest.raises(ConfigError):
                percentile_profile(samples, qs=(bad_q,))

    def test_profile_validates_before_touching_samples(self):
        # A bad q must raise ConfigError even with empty samples — the
        # two functions agree on validation order and error type.
        with pytest.raises(ConfigError):
            percentile_profile([], qs=(0,))
        with pytest.raises(ConfigError):
            exact_percentile([], 0)

    def test_p2_accuracy_on_uniform(self):
        rng = np.random.default_rng(1)
        estimator = P2Quantile(0.5)
        samples = rng.random(20000)
        for x in samples:
            estimator.update(float(x))
        assert estimator.value == pytest.approx(0.5, abs=0.02)

    def test_p2_accuracy_on_exponential_p99(self):
        rng = np.random.default_rng(2)
        estimator = P2Quantile(0.99)
        samples = rng.exponential(1.0, 50000)
        for x in samples:
            estimator.update(float(x))
        assert estimator.value == pytest.approx(np.percentile(samples, 99), rel=0.1)

    def test_p2_few_samples(self):
        estimator = P2Quantile(0.5)
        for x in (3.0, 1.0, 2.0):
            estimator.update(x)
        assert estimator.value == 2.0

    def test_p2_no_samples_raises(self):
        with pytest.raises(ConfigError):
            P2Quantile(0.5).value

    def test_p2_validation(self):
        with pytest.raises(ConfigError):
            P2Quantile(0.0)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=100, max_size=500))
    @settings(max_examples=20, deadline=None)
    def test_p2_stays_within_sample_range(self, samples):
        estimator = P2Quantile(0.9)
        for x in samples:
            estimator.update(x)
        assert min(samples) <= estimator.value <= max(samples)


class TestWindowedSeries:
    def test_window_means(self):
        series = WindowedSeries(window=1.0)
        series.add(0.5, 10.0)
        series.add(0.6, 20.0)
        series.add(1.5, 30.0)
        data = series.series()
        assert data[0] == (0.5, 15.0, 2)
        assert data[1] == (1.5, 30.0, 1)

    def test_max_mean(self):
        series = WindowedSeries(window=1.0)
        series.add(0.1, 1.0)
        series.add(5.1, 9.0)
        assert series.max_mean() == 9.0

    def test_empty_max_mean_raises(self):
        with pytest.raises(ConfigError):
            WindowedSeries(1.0).max_mean()

    def test_validation(self):
        with pytest.raises(ConfigError):
            WindowedSeries(0)
        series = WindowedSeries(1.0)
        with pytest.raises(ConfigError):
            series.add(-1.0, 5.0)

    def test_arrays(self):
        series = WindowedSeries(window=2.0)
        series.add(1.0, 4.0)
        assert list(series.times()) == [1.0]
        assert list(series.means()) == [4.0]
        assert len(series) == 1
