"""Tests for the ASCII plotting helpers."""

import pytest

from repro.errors import ConfigError
from repro.metrics.plots import bar_chart, line_chart, sparkline


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_values_monotone_blocks(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line == "▁▂▃▄▅▆▇█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            sparkline([])


class TestLineChart:
    def test_contains_legend_and_axis(self):
        chart = line_chart(
            {"FCFS": [1, 2, 3], "DAS": [1, 1.5, 2]},
            x_labels=[0.3, 0.6, 0.9],
        )
        assert "a=FCFS" in chart
        assert "b=DAS" in chart
        assert "0.3" in chart
        assert "y: " in chart

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigError):
            line_chart({"a": [1, 2]}, x_labels=[1, 2, 3])

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            line_chart({}, x_labels=[])

    def test_min_height_enforced(self):
        with pytest.raises(ConfigError):
            line_chart({"a": [1]}, x_labels=[1], height=1)

    def test_extremes_rendered_top_and_bottom(self):
        chart = line_chart({"s": [0.0, 10.0]}, x_labels=["lo", "hi"], height=5)
        lines = chart.splitlines()
        # The single series gets marker letter "a".
        assert "a" in lines[0]  # the max lands on the top row
        assert "a" in lines[4]  # the min lands on the bottom row


class TestBarChart:
    def test_rows_and_values(self):
        chart = bar_chart({"FCFS": 10.0, "DAS": 5.0})
        lines = chart.splitlines()
        assert len(lines) == 2
        assert "FCFS" in lines[0] and "10" in lines[0]
        bars = [line.count("█") for line in lines]
        assert bars[0] > bars[1]  # larger value, longer bar

    def test_zero_value_row(self):
        chart = bar_chart({"x": 0.0, "y": 1.0})
        assert "x" in chart

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            bar_chart({})
