"""Unit tests for Store, PriorityStore, and Resource."""

import pytest

from repro.sim.queues import PriorityItem, PriorityStore, Resource, Store


class TestStore:
    def test_put_then_get_fifo(self, env):
        store = Store(env)
        for item in ("a", "b", "c"):
            store.put(item)
        got = []

        def consumer():
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        env.process(consumer())
        env.run()
        assert got == ["a", "b", "c"]

    def test_get_blocks_until_put(self, env):
        store = Store(env)
        log = []

        def consumer():
            item = yield store.get()
            log.append((env.now, item))

        def producer():
            yield env.timeout(5)
            yield store.put("late")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert log == [(5.0, "late")]

    def test_capacity_blocks_put(self, env):
        store = Store(env, capacity=1)
        log = []

        def producer():
            yield store.put("first")
            log.append(("put-first", env.now))
            yield store.put("second")
            log.append(("put-second", env.now))

        def consumer():
            yield env.timeout(3)
            item = yield store.get()
            log.append((f"got-{item}", env.now))

        env.process(producer())
        env.process(consumer())
        env.run()
        assert ("put-first", 0.0) in log
        assert ("put-second", 3.0) in log  # unblocked when "first" left

    def test_len_and_items(self, env):
        store = Store(env)
        store.put(1)
        store.put(2)
        env.run()
        assert len(store) == 2
        assert store.items == [1, 2]

    def test_invalid_capacity(self, env):
        with pytest.raises(ValueError):
            Store(env, capacity=0)

    def test_multiple_getters_fifo_service(self, env):
        store = Store(env)
        got = []

        def consumer(name):
            item = yield store.get()
            got.append((name, item))

        env.process(consumer("first"))
        env.process(consumer("second"))

        def producer():
            yield env.timeout(1)
            store.put("x")
            store.put("y")

        env.process(producer())
        env.run()
        assert got == [("first", "x"), ("second", "y")]


class TestPriorityStore:
    def test_smallest_first(self, env):
        store = PriorityStore(env)
        for value in (5, 1, 3):
            store.put(value)
        got = []

        def consumer():
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        env.process(consumer())
        env.run()
        assert got == [1, 3, 5]

    def test_priority_items_sort_by_key(self, env):
        store = PriorityStore(env)
        store.put(PriorityItem(2, "low"))
        store.put(PriorityItem(1, "high"))
        got = []

        def consumer():
            for _ in range(2):
                item = yield store.get()
                got.append(item.payload)

        env.process(consumer())
        env.run()
        assert got == ["high", "low"]

    def test_items_property_sorted(self, env):
        store = PriorityStore(env)
        store.put(9)
        store.put(4)
        env.run()
        assert store.items == [4, 9]
        assert len(store) == 2


class TestPriorityItem:
    def test_ordering(self):
        assert PriorityItem(1, "a") < PriorityItem(2, "b")

    def test_equality_by_key(self):
        assert PriorityItem(1, "a") == PriorityItem(1, "b")
        assert PriorityItem(1, "a") != "not an item"

    def test_repr(self):
        assert "key=3" in repr(PriorityItem(3, None))


class TestResource:
    def test_grants_up_to_capacity(self, env):
        res = Resource(env, capacity=2)
        r1, r2, r3 = res.request(), res.request(), res.request()
        assert r1.triggered and r2.triggered
        assert not r3.triggered
        assert res.count == 2
        assert res.queue_length == 1

    def test_release_wakes_waiter(self, env):
        res = Resource(env, capacity=1)
        r1 = res.request()
        r2 = res.request()
        res.release(r1)
        assert r2.triggered
        env.run()

    def test_release_waiting_request_cancels_it(self, env):
        res = Resource(env, capacity=1)
        r1 = res.request()
        r2 = res.request()
        res.release(r2)  # cancel the queued request
        assert res.queue_length == 0
        res.release(r1)
        env.run()

    def test_double_release_raises(self, env):
        res = Resource(env)
        r = res.request()
        res.release(r)
        with pytest.raises(RuntimeError):
            res.release(r)

    def test_invalid_capacity(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_request_release_convenience(self, env):
        res = Resource(env)
        r = res.request()
        r.release()
        assert res.count == 0

    def test_out_of_order_release_is_correct(self, env):
        """Slots are identity-keyed: releasing any holder (not just the
        oldest) frees a slot and wakes the next waiter."""
        res = Resource(env, capacity=3)
        holders = [res.request() for _ in range(3)]
        waiter = res.request()
        res.release(holders[1])  # middle holder, not FIFO head
        assert waiter.triggered
        assert res.count == 3
        assert set(res.users) == {holders[0], holders[2], waiter}

    def test_release_of_foreign_request_raises(self, env):
        res_a = Resource(env, capacity=1)
        res_b = Resource(env, capacity=1)
        r = res_a.request()
        with pytest.raises(RuntimeError):
            res_b.release(r)

    def test_many_holders_release_scales(self, env):
        """Release is O(1) in the number of holders (regression for the
        old O(n) list scan): a wide resource with thousands of holders
        releases in arbitrary order without quadratic blowup."""
        n = 5000
        res = Resource(env, capacity=n)
        requests = [res.request() for _ in range(n)]
        for req in reversed(requests):  # worst case for a list scan
            res.release(req)
        assert res.count == 0

    def test_usage_inside_processes(self, env):
        res = Resource(env, capacity=1)
        log = []

        def worker(name, hold):
            req = res.request()
            yield req
            log.append((f"{name}-start", env.now))
            yield env.timeout(hold)
            res.release(req)
            log.append((f"{name}-end", env.now))

        env.process(worker("a", 2))
        env.process(worker("b", 1))
        env.run()
        assert log == [
            ("a-start", 0.0),
            ("a-end", 2.0),
            ("b-start", 2.0),
            ("b-end", 3.0),
        ]
