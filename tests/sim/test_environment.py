"""Unit tests for the environment's run/step/peek machinery."""

import pytest

from repro.sim.core import EmptySchedule, Environment


class TestRun:
    def test_run_without_bound_drains_everything(self, env):
        fired = []
        for delay in (3, 1, 2):
            t = env.timeout(delay)
            t.callbacks.append(lambda e, d=delay: fired.append(d))
        env.run()
        assert fired == [1, 2, 3]
        assert env.now == 3.0

    def test_run_until_time_stops_clock_there(self, env):
        env.timeout(10)
        env.run(until=4)
        assert env.now == 4.0

    def test_run_until_time_excludes_later_events(self, env):
        fired = []
        t = env.timeout(5)
        t.callbacks.append(lambda e: fired.append(env.now))
        env.run(until=5)  # stop event sorts before the timeout at t=5
        assert fired == []

    def test_run_until_past_raises(self, env):
        env.timeout(1)
        env.run(until=2)
        with pytest.raises(ValueError):
            env.run(until=1)

    def test_run_until_event_returns_its_value(self, env):
        def proc():
            yield env.timeout(2)
            return "answer"

        p = env.process(proc())
        assert env.run(until=p) == "answer"
        assert env.now == 2.0

    def test_run_until_already_processed_event(self, env):
        event = env.event()
        event.succeed("early")
        env.run()
        assert env.run(until=event) == "early"

    def test_run_until_event_that_never_fires(self, env):
        stuck = env.event()
        env.timeout(1)
        with pytest.raises(RuntimeError, match="ran out of events"):
            env.run(until=stuck)

    def test_run_until_failed_event_raises(self, env):
        def proc():
            yield env.timeout(1)
            raise KeyError("whoops")

        p = env.process(proc())
        with pytest.raises(KeyError):
            env.run(until=p)

    def test_run_on_empty_environment_is_noop(self, env):
        env.run()
        assert env.now == 0.0

    def test_initial_time(self):
        env = Environment(initial_time=100.0)
        assert env.now == 100.0
        env.timeout(5)
        env.run()
        assert env.now == 105.0


class TestStepAndPeek:
    def test_peek_empty_is_inf(self, env):
        assert env.peek() == float("inf")

    def test_peek_returns_next_event_time(self, env):
        env.timeout(7)
        env.timeout(3)
        assert env.peek() == 3.0

    def test_step_advances_one_event(self, env):
        env.timeout(1)
        env.timeout(2)
        env.step()
        assert env.now == 1.0
        env.step()
        assert env.now == 2.0

    def test_step_on_empty_raises(self, env):
        with pytest.raises(EmptySchedule):
            env.step()

    def test_urgent_events_precede_timeouts_at_same_instant(self, env):
        order = []

        def proc():
            yield env.timeout(1)
            order.append("timeout-done")

        env.process(proc())
        # An event succeeded at t=0 runs before the t=0 timeout below.
        t0 = env.timeout(0)
        t0.callbacks.append(lambda e: order.append("timeout-zero"))
        ev = env.event()
        ev.callbacks.append(lambda e: order.append("urgent"))
        ev.succeed()
        env.run()
        assert order == ["urgent", "timeout-zero", "timeout-done"]

    def test_run_until_idle_alias(self, env):
        fired = []
        env.timeout(1).callbacks.append(lambda e: fired.append(1))
        env.run_until_idle()
        assert fired == [1]

    def test_repr_contains_time(self, env):
        env.timeout(1)
        assert "now=0" in repr(env)
