"""Unit tests for seeded random streams."""

import pytest

from repro.sim.rand import RandomStreams


class TestRandomStreams:
    def test_same_name_returns_same_generator(self):
        streams = RandomStreams(1)
        assert streams.stream("a") is streams.stream("a")

    def test_streams_are_deterministic_across_instances(self):
        a = RandomStreams(42).stream("arrivals").random(5)
        b = RandomStreams(42).stream("arrivals").random(5)
        assert list(a) == list(b)

    def test_different_names_are_independent(self):
        streams = RandomStreams(42)
        a = streams.stream("a").random(5)
        b = streams.stream("b").random(5)
        assert list(a) != list(b)

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("x").random(5)
        b = RandomStreams(2).stream("x").random(5)
        assert list(a) != list(b)

    def test_creation_order_does_not_matter(self):
        first = RandomStreams(7)
        first.stream("one")
        value_a = first.stream("two").random()

        second = RandomStreams(7)
        value_b = second.stream("two").random()
        assert value_a == value_b

    def test_draw_count_on_one_stream_does_not_shift_another(self):
        streams = RandomStreams(3)
        streams.stream("noisy").random(1000)
        value_a = streams.stream("quiet").random()

        fresh = RandomStreams(3)
        value_b = fresh.stream("quiet").random()
        assert value_a == value_b

    def test_spawn_creates_derived_family(self):
        parent = RandomStreams(5)
        child_a = parent.spawn("client-0")
        child_b = parent.spawn("client-1")
        assert child_a.root_seed != child_b.root_seed
        # Spawns are deterministic too.
        again = RandomStreams(5).spawn("client-0")
        assert again.root_seed == child_a.root_seed

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RandomStreams(-1)

    def test_names_listing(self):
        streams = RandomStreams(0)
        streams.stream("b")
        streams.stream("a")
        assert streams.names() == ["a", "b"]

    def test_repr(self):
        streams = RandomStreams(9)
        streams.stream("x")
        assert "root_seed=9" in repr(streams)
