"""Unit tests for seeded random streams and the batched sampling layer."""

import numpy as np
import pytest

from repro.sim.rand import BatchedStream, RandomStreams, as_batched


class TestRandomStreams:
    def test_same_name_returns_same_generator(self):
        streams = RandomStreams(1)
        assert streams.stream("a") is streams.stream("a")

    def test_streams_are_deterministic_across_instances(self):
        a = RandomStreams(42).stream("arrivals").random(5)
        b = RandomStreams(42).stream("arrivals").random(5)
        assert list(a) == list(b)

    def test_different_names_are_independent(self):
        streams = RandomStreams(42)
        a = streams.stream("a").random(5)
        b = streams.stream("b").random(5)
        assert list(a) != list(b)

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("x").random(5)
        b = RandomStreams(2).stream("x").random(5)
        assert list(a) != list(b)

    def test_creation_order_does_not_matter(self):
        first = RandomStreams(7)
        first.stream("one")
        value_a = first.stream("two").random()

        second = RandomStreams(7)
        value_b = second.stream("two").random()
        assert value_a == value_b

    def test_draw_count_on_one_stream_does_not_shift_another(self):
        streams = RandomStreams(3)
        streams.stream("noisy").random(1000)
        value_a = streams.stream("quiet").random()

        fresh = RandomStreams(3)
        value_b = fresh.stream("quiet").random()
        assert value_a == value_b

    def test_spawn_creates_derived_family(self):
        parent = RandomStreams(5)
        child_a = parent.spawn("client-0")
        child_b = parent.spawn("client-1")
        assert child_a.root_seed != child_b.root_seed
        # Spawns are deterministic too.
        again = RandomStreams(5).spawn("client-0")
        assert again.root_seed == child_a.root_seed

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RandomStreams(-1)

    def test_names_listing(self):
        streams = RandomStreams(0)
        streams.stream("b")
        streams.stream("a")
        assert streams.names() == ["a", "b"]

    def test_repr(self):
        streams = RandomStreams(9)
        streams.stream("x")
        assert "root_seed=9" in repr(streams)


class TestSpawnSeedDerivation:
    """Regression: spawn used a single 31-bit draw for child seeds, making
    birthday collisions between sibling families likely at realistic client
    counts.  Child seeds now come from a full SeedSequence derivation."""

    def test_many_spawns_are_collision_free(self):
        parent = RandomStreams(123)
        seeds = {parent.spawn(f"client-{i}").root_seed for i in range(10_000)}
        assert len(seeds) == 10_000

    def test_spawn_seed_range_exceeds_31_bits(self):
        parent = RandomStreams(0)
        assert any(
            parent.spawn(f"c{i}").root_seed > 2**31 for i in range(64)
        )

    def test_spawn_is_stable_across_instances(self):
        a = RandomStreams(77).spawn("worker-3")
        b = RandomStreams(77).spawn("worker-3")
        assert a.root_seed == b.root_seed
        assert list(a.stream("x").random(3)) == list(b.stream("x").random(3))

    def test_spawn_family_differs_from_same_named_stream(self):
        parent = RandomStreams(5)
        child = parent.spawn("alpha")
        assert list(child.stream("x").random(3)) != list(
            parent.stream("alpha").random(3)
        )


class TestBatchedStream:
    def test_scalar_draws_match_raw_generator(self):
        stream = BatchedStream(np.random.default_rng(11))
        raw = np.random.default_rng(11)
        for _ in range(5000):
            assert stream.random() == raw.random()

    def test_block_and_scalar_interleave_on_one_lane(self):
        stream = BatchedStream(np.random.default_rng(4), block_size=64)
        raw = np.random.default_rng(4)
        got = [stream.random(), *stream.random_block(100).tolist(), stream.random()]
        expected = [raw.random() for _ in range(102)]
        assert got == expected

    def test_lanes_are_parameter_keyed(self):
        stream = BatchedStream(np.random.default_rng(2), block_size=8)
        stream.integers(0, 10)
        stream.integers(0, 99)
        stream.lognormal(0.0, 1.0)
        stream.lognormal(0.5, 1.0)
        assert stream.blocks_filled == 4

    def test_exponential_scales_share_one_lane(self):
        stream = BatchedStream(np.random.default_rng(3), block_size=4096)
        stream.exponential(1.0)
        stream.exponential(250.0)
        stream.exponential_block(0.5, 10)
        assert stream.blocks_filled == 1

    def test_block_size_validation(self):
        with pytest.raises(ValueError):
            BatchedStream(np.random.default_rng(0), block_size=0)

    def test_as_batched_is_idempotent(self):
        stream = as_batched(np.random.default_rng(0))
        assert as_batched(stream) is stream

    def test_as_batched_wraps_generator(self):
        gen = np.random.default_rng(0)
        stream = as_batched(gen)
        assert isinstance(stream, BatchedStream)
        assert stream.gen is gen
