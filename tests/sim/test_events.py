"""Unit tests for the event primitives."""

import pytest

from repro.sim.core import Environment
from repro.sim.events import AllOf, AnyOf


class TestEvent:
    def test_new_event_is_pending(self, env):
        event = env.event()
        assert not event.triggered
        assert not event.processed

    def test_value_before_trigger_raises(self, env):
        with pytest.raises(RuntimeError):
            env.event().value

    def test_ok_before_trigger_raises(self, env):
        with pytest.raises(RuntimeError):
            env.event().ok

    def test_succeed_sets_value(self, env):
        event = env.event()
        event.succeed(42)
        assert event.triggered
        assert event.ok
        assert event.value == 42

    def test_succeed_default_value_is_none(self, env):
        event = env.event()
        event.succeed()
        assert event.value is None

    def test_double_succeed_raises(self, env):
        event = env.event()
        event.succeed()
        with pytest.raises(RuntimeError):
            event.succeed()

    def test_fail_then_succeed_raises(self, env):
        event = env.event()
        event.fail(ValueError("boom"))
        event.defused = True
        with pytest.raises(RuntimeError):
            event.succeed()

    def test_fail_requires_exception(self, env):
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_fail_stores_exception(self, env):
        event = env.event()
        exc = ValueError("boom")
        event.fail(exc)
        event.defused = True
        assert event.triggered
        assert not event.ok
        assert event.value is exc

    def test_callbacks_run_on_processing(self, env):
        event = env.event()
        seen = []
        event.callbacks.append(lambda e: seen.append(e.value))
        event.succeed("x")
        env.run()
        assert seen == ["x"]
        assert event.processed

    def test_unhandled_failure_propagates_from_run(self, env):
        event = env.event()
        event.fail(ValueError("unhandled"))
        with pytest.raises(ValueError, match="unhandled"):
            env.run()

    def test_repr_states(self, env):
        event = env.event()
        assert "pending" in repr(event)
        event.succeed()
        assert "ok" in repr(event)


class TestTimeout:
    def test_fires_at_delay(self, env):
        times = []
        t = env.timeout(2.5)
        t.callbacks.append(lambda e: times.append(env.now))
        env.run()
        assert times == [2.5]

    def test_carries_value(self, env):
        t = env.timeout(1.0, value="payload")
        env.run()
        assert t.value == "payload"

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1)

    def test_zero_delay_allowed(self, env):
        t = env.timeout(0)
        env.run()
        assert t.processed
        assert env.now == 0.0

    def test_delay_property(self, env):
        assert env.timeout(3.25).delay == 3.25


class TestConditions:
    def test_all_of_waits_for_every_event(self, env):
        a, b = env.event(), env.event()
        cond = AllOf(env, [a, b])
        a.succeed(1)
        env.run()
        assert not cond.triggered
        b.succeed(2)
        env.run()
        assert cond.triggered
        assert cond.value == {a: 1, b: 2}

    def test_any_of_fires_on_first(self, env):
        a, b = env.event(), env.event()
        cond = AnyOf(env, [a, b])
        a.succeed("first")
        env.run()
        assert cond.triggered
        assert cond.value == {a: "first"}

    def test_empty_all_of_succeeds_immediately(self, env):
        cond = AllOf(env, [])
        assert cond.triggered
        assert cond.value == {}

    def test_empty_any_of_succeeds_immediately(self, env):
        assert AnyOf(env, []).triggered

    def test_all_of_failure_propagates(self, env):
        a, b = env.event(), env.event()
        cond = AllOf(env, [a, b])
        a.fail(RuntimeError("part failed"))
        # The condition fails too; with no waiter, run() surfaces it.
        with pytest.raises(RuntimeError, match="part failed"):
            env.run()
        assert cond.triggered
        assert not cond.ok

    def test_all_of_failure_caught_by_waiting_process(self, env):
        a, b = env.event(), env.event()
        cond = AllOf(env, [a, b])

        def waiter():
            try:
                yield cond
            except RuntimeError as exc:
                return str(exc)

        p = env.process(waiter())
        a.fail(RuntimeError("part failed"))
        env.run()
        assert p.value == "part failed"

    def test_all_of_with_preprocessed_events(self, env):
        a = env.event()
        a.succeed(7)
        env.run()  # a fully processed
        b = env.event()
        cond = AllOf(env, [a, b])
        b.succeed(8)
        env.run()
        assert cond.value == {a: 7, b: 8}

    def test_condition_rejects_mixed_environments(self, env):
        other = Environment()
        with pytest.raises(ValueError):
            AllOf(env, [env.event(), other.event()])

    def test_env_helpers(self, env):
        a, b = env.event(), env.event()
        assert isinstance(env.all_of([a, b]), AllOf)
        assert isinstance(env.any_of([a, b]), AnyOf)

    def test_events_property_snapshot(self, env):
        a, b = env.event(), env.event()
        cond = AllOf(env, [a, b])
        assert cond.events == [a, b]
