"""Free-list pooling of Timeout events and callback lists.

``Environment.pooled_timeout`` recycles fired timeouts through a free
list; these tests pin the semantics that make that safe: pooled timeouts
behave exactly like plain ones up to the firing, recycled objects are
reinitialized completely, condition membership pins an object out of the
pool, and the plain ``timeout`` factory never recycles.
"""

from __future__ import annotations

import pytest

from repro.sim.core import Environment
from repro.sim.events import Timeout


class TestPooledTimeout:
    def test_fires_at_the_right_time_with_value(self):
        env = Environment()
        seen = []

        def proc():
            value = yield env.pooled_timeout(2.5, value="payload")
            seen.append((env.now, value))

        env.process(proc())
        env.run()
        assert seen == [(2.5, "payload")]

    def test_negative_delay_rejected_on_both_paths(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.pooled_timeout(-1.0)  # miss path (empty pool)
        env.run()
        env.pooled_timeout(0.0)
        env.run()
        with pytest.raises(ValueError):
            env.pooled_timeout(-1.0)  # hit path (non-empty pool)

    def test_fired_timeout_is_reused(self):
        env = Environment()
        first = env.pooled_timeout(1.0)
        env.run()
        second = env.pooled_timeout(1.0)
        assert second is first
        # Fully reinitialized: scheduled-but-unprocessed, like a fresh one.
        assert not second.processed
        assert second.ok
        assert second.delay == 1.0
        env.run()
        assert env.timeout_pool_hits == 1
        assert env.timeout_pool_misses == 1

    def test_reused_timeout_drops_old_value(self):
        env = Environment()
        env.pooled_timeout(1.0, value="stale-payload")
        env.run()
        reused = env.pooled_timeout(1.0)
        assert reused.triggered  # Timeout pre-sets its value
        assert reused.value is None

    def test_plain_timeout_never_pooled(self):
        env = Environment()
        t = env.timeout(1.0)
        env.run()
        t2 = env.timeout(1.0)
        assert t2 is not t
        assert env.timeout_pool_hits == 0
        assert env.timeout_pool_misses == 0

    def test_pool_stats_shape(self):
        env = Environment()
        stats = env.pool_stats()
        assert stats == {
            "timeout_pool_hits": 0,
            "timeout_pool_misses": 0,
            "timeout_pool_hit_rate": 0.0,
        }
        for _ in range(4):
            env.pooled_timeout(1.0)
            env.run()
        stats = env.pool_stats()
        assert stats["timeout_pool_hits"] == 3
        assert stats["timeout_pool_misses"] == 1
        assert stats["timeout_pool_hit_rate"] == 0.75

    def test_hit_rate_is_high_in_steady_state(self):
        env = Environment()

        def proc():
            for _ in range(500):
                yield env.pooled_timeout(0.01)

        env.process(proc())
        env.run()
        assert env.pool_stats()["timeout_pool_hit_rate"] > 0.99

    def test_determinism_identical_to_unpooled(self):
        """A simulation using pooled timeouts produces the same trace."""

        def simulate(factory_name):
            env = Environment()
            trace = []

            def proc(delay):
                factory = getattr(env, factory_name)
                for i in range(50):
                    yield factory(delay)
                    trace.append((round(env.now, 9), delay))

            env.process(proc(0.3))
            env.process(proc(0.7))
            env.run()
            return trace

        assert simulate("pooled_timeout") == simulate("timeout")

    def test_condition_pins_members_out_of_the_pool(self):
        env = Environment()
        results = []

        def proc():
            a = env.pooled_timeout(1.0, value="a")
            b = env.pooled_timeout(2.0, value="b")
            condition = env.all_of([a, b])
            # Churn more pooled timeouts while the condition is pending so
            # a recycled member would visibly corrupt the result.
            for _ in range(10):
                yield env.pooled_timeout(0.1)
            got = yield condition
            results.append(sorted(got.values()))

        env.process(proc())
        env.run()
        assert results == [["a", "b"]]

    def test_step_path_recycles_too(self):
        env = Environment()
        t = env.pooled_timeout(1.0)
        while True:
            try:
                env.step()
            except Exception:
                break
        assert env.pooled_timeout(5.0) is t


class TestCallbackListPool:
    def test_callback_lists_are_recycled_empty(self):
        env = Environment()
        env.pooled_timeout(1.0).callbacks.append(lambda e: None)
        env.run()
        ev = env.event()
        assert ev.callbacks == []  # recycled list arrives cleared

    def test_distinct_live_events_never_share_lists(self):
        env = Environment()
        events = [env.event() for _ in range(20)]
        lists = {id(e.callbacks) for e in events}
        assert len(lists) == len(events)


class TestTimeoutDefaults:
    def test_direct_timeout_construction_not_recyclable(self):
        env = Environment()
        t = Timeout(env, 1.0)
        env.run()
        assert env.pool_stats()["timeout_pool_hits"] == 0
        assert not t._recyclable
