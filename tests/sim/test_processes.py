"""Unit tests for simulation processes (generators driven by the kernel)."""

import pytest

from repro.sim.events import Interrupt


class TestProcessBasics:
    def test_process_runs_to_completion(self, env):
        log = []

        def proc():
            yield env.timeout(1)
            log.append(env.now)
            yield env.timeout(2)
            log.append(env.now)

        env.process(proc())
        env.run()
        assert log == [1.0, 3.0]

    def test_process_return_value(self, env):
        def proc():
            yield env.timeout(1)
            return "result"

        p = env.process(proc())
        env.run()
        assert p.value == "result"

    def test_process_is_alive_until_done(self, env):
        def proc():
            yield env.timeout(5)

        p = env.process(proc())
        assert p.is_alive
        env.run(until=2)
        assert p.is_alive
        env.run()
        assert not p.is_alive

    def test_waiting_on_another_process(self, env):
        def inner():
            yield env.timeout(3)
            return 99

        def outer():
            value = yield env.process(inner())
            return value + 1

        p = env.process(outer())
        env.run()
        assert p.value == 100

    def test_non_generator_rejected(self, env):
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_yield_non_event_raises_inside_process(self, env):
        def proc():
            yield "not an event"

        env.process(proc())
        with pytest.raises(RuntimeError, match="non-event"):
            env.run()

    def test_exception_in_process_fails_the_process_event(self, env):
        def proc():
            yield env.timeout(1)
            raise ValueError("inside")

        env.process(proc())
        with pytest.raises(ValueError, match="inside"):
            env.run()

    def test_exception_caught_by_waiter(self, env):
        def failing():
            yield env.timeout(1)
            raise ValueError("inner failure")

        def waiter():
            try:
                yield env.process(failing())
            except ValueError as exc:
                return f"caught {exc}"

        p = env.process(waiter())
        env.run()
        assert p.value == "caught inner failure"

    def test_process_waiting_on_failed_event(self, env):
        event = env.event()

        def proc():
            try:
                yield event
            except RuntimeError:
                return "handled"

        p = env.process(proc())
        event.fail(RuntimeError("event failed"))
        env.run()
        assert p.value == "handled"

    def test_two_processes_interleave_deterministically(self, env):
        log = []

        def proc(name, delay):
            for _ in range(3):
                yield env.timeout(delay)
                log.append((env.now, name))

        env.process(proc("a", 1))
        env.process(proc("b", 1))
        env.run()
        # Same-time events keep creation order: a before b at each tick.
        assert log == [
            (1.0, "a"), (1.0, "b"),
            (2.0, "a"), (2.0, "b"),
            (3.0, "a"), (3.0, "b"),
        ]

    def test_active_process_visible_during_execution(self, env):
        seen = []

        def proc():
            seen.append(env.active_process)
            yield env.timeout(0)

        p = env.process(proc())
        env.run()
        assert seen == [p]
        assert env.active_process is None


class TestInterrupts:
    def test_interrupt_delivers_cause(self, env):
        def victim():
            try:
                yield env.timeout(100)
            except Interrupt as interrupt:
                return (interrupt.cause, env.now)

        def attacker(victim_proc):
            yield env.timeout(1)
            victim_proc.interrupt("stop now")

        v = env.process(victim())
        env.process(attacker(v))
        env.run(until=v)
        assert v.value == ("stop now", 1.0)
        # The abandoned timeout stays scheduled (as in SimPy); it fires
        # harmlessly at t=100 if the simulation keeps running.
        env.run()
        assert env.now == pytest.approx(100.0)

    def test_interrupted_process_can_continue(self, env):
        log = []

        def victim():
            try:
                yield env.timeout(100)
            except Interrupt:
                log.append(("interrupted", env.now))
            yield env.timeout(5)
            log.append(("done", env.now))

        def attacker(victim_proc):
            yield env.timeout(2)
            victim_proc.interrupt()

        v = env.process(victim())
        env.process(attacker(v))
        env.run()
        assert log == [("interrupted", 2.0), ("done", 7.0)]

    def test_interrupting_terminated_process_raises(self, env):
        def quick():
            yield env.timeout(1)

        p = env.process(quick())
        env.run()
        with pytest.raises(RuntimeError):
            p.interrupt()

    def test_self_interrupt_rejected(self, env):
        def proc():
            env.active_process.interrupt()
            yield env.timeout(1)

        env.process(proc())
        with pytest.raises(RuntimeError, match="interrupt itself"):
            env.run()

    def test_uncaught_interrupt_fails_process(self, env):
        def victim():
            yield env.timeout(100)

        def attacker(victim_proc):
            yield env.timeout(1)
            victim_proc.interrupt("bye")

        v = env.process(victim())
        env.process(attacker(v))
        with pytest.raises(Interrupt):
            env.run()
