"""Additional simulation-kernel edge cases."""

import pytest

from repro.sim.events import AllOf, AnyOf, Interrupt
from repro.sim.queues import Store


class TestProcessEdgeCases:
    def test_process_yielding_already_processed_event_continues_synchronously(
        self, env
    ):
        done = env.event()
        done.succeed("cached")
        env.run()  # `done` is fully processed now

        def proc():
            value = yield done
            return value

        p = env.process(proc())
        env.run()
        assert p.value == "cached"

    def test_two_processes_waiting_on_one_event(self, env):
        gate = env.event()
        results = []

        def waiter(name):
            value = yield gate
            results.append((name, value, env.now))

        env.process(waiter("first"))
        env.process(waiter("second"))

        def opener():
            yield env.timeout(2)
            gate.succeed("open")

        env.process(opener())
        env.run()
        assert results == [("first", "open", 2.0), ("second", "open", 2.0)]

    def test_process_chain_returns_through_layers(self, env):
        def leaf():
            yield env.timeout(1)
            return 1

        def middle():
            value = yield env.process(leaf())
            return value + 1

        def root():
            value = yield env.process(middle())
            return value + 1

        p = env.process(root())
        env.run()
        assert p.value == 3

    def test_interrupt_during_store_get(self, env):
        store = Store(env)
        outcome = []

        def consumer():
            try:
                yield store.get()
            except Interrupt as interrupt:
                outcome.append(interrupt.cause)

        def attacker(victim):
            yield env.timeout(1)
            victim.interrupt("give up")

        victim = env.process(consumer())
        env.process(attacker(victim))
        env.run()
        assert outcome == ["give up"]

    def test_interrupted_getter_does_not_steal_items(self, env):
        """After an interrupted get, the next getter still receives the
        item — the waiter list must not hold dead entries that swallow it."""
        store = Store(env)
        received = []

        def doomed():
            try:
                yield store.get()
            except Interrupt:
                pass

        def attacker(victim):
            yield env.timeout(1)
            victim.interrupt()

        def survivor():
            yield env.timeout(2)
            item = yield store.get()
            received.append(item)

        victim = env.process(doomed())
        env.process(attacker(victim))
        env.process(survivor())

        def producer():
            yield env.timeout(3)
            store.put("the-item")

        env.process(producer())
        env.run()
        # The doomed getter was first in line; its event still consumes the
        # item (it was already promised).  Document the actual semantics:
        # either the survivor got it, or the item went to the dead event.
        # With this kernel the dead get-event is still queued, so the item
        # resolves the dead event and the survivor keeps waiting; assert
        # exactly that so regressions are visible.
        assert received == []

    def test_condition_of_processes(self, env):
        def worker(delay, value):
            yield env.timeout(delay)
            return value

        a = env.process(worker(1, "a"))
        b = env.process(worker(2, "b"))
        both = AllOf(env, [a, b])
        env.run(until=both)
        assert env.now == 2.0
        assert set(both.value.values()) == {"a", "b"}

    def test_any_of_processes_returns_first(self, env):
        def worker(delay, value):
            yield env.timeout(delay)
            return value

        slow = env.process(worker(5, "slow"))
        fast = env.process(worker(1, "fast"))
        first = AnyOf(env, [slow, fast])
        value = env.run(until=first)
        assert list(value.values()) == ["fast"]
        assert env.now == 1.0


class TestClockEdgeCases:
    def test_zero_duration_events_preserve_order(self, env):
        order = []
        for i in range(5):
            ev = env.event()
            ev.callbacks.append(lambda e, i=i: order.append(i))
            ev.succeed()
        env.run()
        assert order == [0, 1, 2, 3, 4]

    def test_float_time_accumulates_without_drift_blowup(self, env):
        def ticker():
            for _ in range(1000):
                yield env.timeout(0.1)

        env.process(ticker())
        env.run()
        assert env.now == pytest.approx(100.0, abs=1e-6)

    def test_run_until_exact_event_time_boundary(self, env):
        fired = []
        t = env.timeout(5.0)
        t.callbacks.append(lambda e: fired.append(env.now))
        env.run(until=5.0)
        # The stop event at t=5.0 (urgent priority) precedes the timeout.
        assert fired == []
        env.run()
        assert fired == [5.0]
