"""Event-core backends: unit tests plus heap/array order-identity properties.

The calendar-queue :class:`ArrayEventCore` must fire events in exactly
the heap's ``(time, priority, seq)`` total order — determinism guarantee
#7 in ``docs/benchmarking.md``.  The properties here drive both cores
with identical random schedules (including interleaved cancellations at
the :class:`Environment` level) and require identical firing logs; the
unit tests pin the array core's mechanics (overflow, width adaptation,
slot reuse, bulk lanes).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, Interrupt
from repro.sim.core import EmptySchedule
from repro.sim.eventcore import (
    NORMAL,
    URGENT,
    ArrayEventCore,
    HeapEventCore,
    make_event_core,
    resolve_engine,
)


def drain(core):
    out = []
    while len(core):
        out.append(core.pop())
    return out


class TestResolveEngine:
    def test_default_is_array(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert resolve_engine() == "array"
        assert isinstance(make_event_core(), ArrayEventCore)

    def test_env_var_selects_heap(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "heap")
        assert resolve_engine() == "heap"
        assert isinstance(make_event_core(), HeapEventCore)
        assert Environment().engine == "heap"

    def test_argument_beats_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "heap")
        assert resolve_engine("array") == "array"
        assert Environment(engine="array").engine == "array"

    def test_unknown_engine_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown event-core engine"):
            resolve_engine("btree")
        monkeypatch.setenv("REPRO_ENGINE", "btree")
        with pytest.raises(ValueError, match="REPRO_ENGINE"):
            Environment()


class TestArrayCoreBasics:
    def test_fifo_within_same_time_and_priority(self):
        core = ArrayEventCore()
        for seq in range(10):
            core.schedule(1.0, NORMAL, seq, f"p{seq}")
        assert [e[2] for e in drain(core)] == list(range(10))

    def test_priority_beats_seq_at_same_time(self):
        core = ArrayEventCore()
        core.schedule(1.0, NORMAL, 0, "normal")
        core.schedule(1.0, URGENT, 1, "urgent")
        assert [e[3] for e in drain(core)] == ["urgent", "normal"]

    def test_total_order_matches_heap_on_random_input(self):
        rng = np.random.default_rng(7)
        heap, array = HeapEventCore(), ArrayEventCore(bucket_width=0.25)
        for seq in range(5000):
            t = float(rng.choice([0.0, rng.random() * 50, rng.integers(0, 8)]))
            prio = int(rng.integers(0, 2))
            heap.schedule(t, prio, seq, seq)
            array.schedule(t, prio, seq, seq)
        assert drain(array) == drain(heap)

    def test_pop_empty_raises_indexerror(self):
        with pytest.raises(IndexError):
            ArrayEventCore().pop()

    def test_peek_time(self):
        core = ArrayEventCore()
        assert core.peek_time() == math.inf
        core.schedule(3.0, NORMAL, 0, None)
        core.schedule(1.5, NORMAL, 1, None)
        assert core.peek_time() == 1.5
        core.pop()
        assert core.peek_time() == 3.0

    def test_nan_time_rejected(self):
        core = ArrayEventCore()
        with pytest.raises(ValueError, match="NaN"):
            core.schedule(float("nan"), NORMAL, 0, None)
        with pytest.raises(ValueError, match="NaN"):
            core.schedule_many(
                np.array([1.0, float("nan")]), NORMAL, np.array([0, 1])
            )

    def test_inf_time_served_last(self):
        core = ArrayEventCore()
        core.schedule(math.inf, NORMAL, 0, "end")
        core.schedule(2.0, NORMAL, 1, "mid")
        fired = drain(core)
        assert [e[3] for e in fired] == ["mid", "end"]

    def test_insert_during_drain_keeps_order(self):
        # Events landing at-or-before the loaded bucket go through the
        # overlay heap; they must interleave exactly as the heap would.
        heap = HeapEventCore()
        array = ArrayEventCore(bucket_width=10.0)
        for core in (heap, array):
            for seq in range(100):
                core.schedule(float(seq % 10), NORMAL, seq, None)
        fired_h = [heap.pop() for _ in range(5)]
        fired_a = [array.pop() for _ in range(5)]
        now = fired_a[-1][0]
        for core in (heap, array):
            core.schedule(now, URGENT, 1000, "urgent-now")
            core.schedule(now + 0.5, NORMAL, 1001, None)
        assert fired_a + drain(array) == fired_h + drain(heap)

    def test_empty_message_names_state(self):
        core = ArrayEventCore()
        msg = core.empty_message(12.5)
        assert "0 pending events" in msg and "backend=array" in msg

    def test_repr_and_stats_schema(self):
        core = ArrayEventCore()
        core.schedule(1.0, NORMAL, 0, None)
        assert "pending=1" in repr(core)
        stats = core.stats()
        for key in (
            "backend",
            "pending",
            "bucket_resizes",
            "slot_reuse_hits",
            "slot_reuse_misses",
            "slot_reuse_hit_rate",
        ):
            assert key in stats
        assert stats["backend"] == "array"
        assert HeapEventCore().stats()["backend"] == "heap"


class TestCalendarAdaptation:
    def test_overflow_beyond_horizon_rebucketed_in_order(self):
        core = ArrayEventCore(bucket_width=1.0, nbuckets=4)
        # Enough near events to leave the small-N heap mode, then events
        # far past the 4-bucket horizon.
        times = [i * 0.05 for i in range(80)] + [10.0, 100.0, 1000.0, 40.0]
        for seq, t in enumerate(times):
            core.schedule(t, NORMAL, seq, None)
        assert core.stats()["overflow"] > 0
        fired = [e[0] for e in drain(core)]
        assert fired == sorted(times)
        assert core.stats()["bucket_resizes"] >= 1

    def test_oversized_bucket_triggers_width_shrink(self):
        core = ArrayEventCore(bucket_width=1000.0, split_threshold=64)
        rng = np.random.default_rng(3)
        times = rng.random(500) * 900.0
        for seq, t in enumerate(times.tolist()):
            core.schedule(t, NORMAL, seq, None)
        fired = [e[0] for e in drain(core)]
        assert fired == sorted(times.tolist())
        assert core.stats()["bucket_resizes"] >= 1
        assert core.bucket_width < 1000.0

    def test_same_instant_mass_does_not_split(self):
        core = ArrayEventCore(bucket_width=1000.0, split_threshold=64)
        for seq in range(500):
            core.schedule(5.0, NORMAL, seq, seq)
        assert [e[3] for e in drain(core)] == list(range(500))
        assert core.stats()["bucket_resizes"] == 0

    def test_sparse_buckets_trigger_widen(self):
        core = ArrayEventCore(bucket_width=1e-6)
        n = 600
        for seq in range(n):
            core.schedule(float(seq), NORMAL, seq, None)
        fired = [e[0] for e in drain(core)]
        assert fired == [float(s) for s in range(n)]
        assert core.stats()["bucket_resizes"] >= 1
        assert core.bucket_width > 1e-6


class TestBulkLane:
    def test_schedule_many_pop_many_roundtrip(self):
        core = ArrayEventCore()
        rng = np.random.default_rng(11)
        times = rng.random(1000) * 20.0
        slots = core.schedule_many(times, NORMAL, np.arange(1000))
        assert slots.shape == (1000,)
        assert len(core) == 1000
        out_t, out_slots, payloads = core.pop_many(1000)
        assert np.array_equal(out_t, np.sort(times))
        assert out_slots.shape == (1000,)
        assert payloads is None
        assert len(core) == 0

    def test_pop_many_partial_batches(self):
        core = ArrayEventCore()
        times = np.arange(100, dtype=np.float64) * 0.01
        core.schedule_many(times, NORMAL, np.arange(100))
        got = []
        while len(core):
            t, _, _ = core.pop_many(17)
            got.extend(t.tolist())
        assert got == times.tolist()

    def test_pop_many_with_payloads(self):
        core = ArrayEventCore()
        times = np.array([2.0, 1.0, 3.0])
        core.schedule_many(
            times, NORMAL, np.arange(3), payloads=["b", "a", "c"]
        )
        t, _, payloads = core.pop_many(3, with_payloads=True)
        assert t.tolist() == [1.0, 2.0, 3.0]
        assert payloads == ["a", "b", "c"]

    def test_mixed_scalar_and_bulk_order(self):
        core = ArrayEventCore(bucket_width=0.5)
        rng = np.random.default_rng(23)
        bulk_times = rng.random(300) * 10.0
        core.schedule_many(bulk_times, NORMAL, np.arange(300))
        scalar_times = (rng.random(300) * 10.0).tolist()
        for i, t in enumerate(scalar_times):
            core.schedule(t, NORMAL, 300 + i, f"s{i}")
        keys = [e[:3] for e in drain(core)]
        assert keys == sorted(keys)

    def test_slot_reuse_and_growth(self):
        core = ArrayEventCore(capacity=64)
        times = np.linspace(0.0, 1.0, 256)
        core.schedule_many(times, NORMAL, np.arange(256))
        stats = core.stats()
        assert stats["capacity"] >= 256
        assert stats["slot_reuse_misses"] == 256
        core.pop_many(256)
        core.schedule_many(times + 2.0, NORMAL, np.arange(256, 512))
        stats = core.stats()
        assert stats["slot_reuse_hits"] == 256
        assert stats["slot_reuse_hit_rate"] == 0.5
        assert core.stats()["capacity"] == stats["capacity"]  # no regrow

    def test_bulk_near_inserts_fall_back_to_overlay(self):
        core = ArrayEventCore(bucket_width=10.0)
        for seq in range(20):
            core.schedule(float(seq) * 0.1, NORMAL, seq, None)
        core.pop()  # load the bucket
        core.schedule_many(
            np.array([0.05, 5.0]), URGENT, np.array([100, 101])
        )
        keys = [e[:3] for e in drain(core)]
        assert keys == sorted(keys)


# Property: both cores fire identical orders under random schedules.
schedule_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        st.integers(min_value=0, max_value=1),
    ),
    min_size=1,
    max_size=200,
)


class TestCoreOrderProperty:
    @given(plan=schedule_strategy, width=st.sampled_from([0.01, 1.0, 250.0]))
    @settings(max_examples=60, deadline=None)
    def test_random_schedules_fire_identically(self, plan, width):
        heap, array = HeapEventCore(), ArrayEventCore(
            bucket_width=width, nbuckets=16, split_threshold=16
        )
        for seq, (t, prio) in enumerate(plan):
            heap.schedule(t, prio, seq, seq)
            array.schedule(t, prio, seq, seq)
        assert drain(array) == drain(heap)

    @given(plan=schedule_strategy, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_interleaved_pops_fire_identically(self, plan, data):
        heap, array = HeapEventCore(), ArrayEventCore(
            bucket_width=5.0, nbuckets=8, split_threshold=16
        )
        fired_h, fired_a = [], []
        now = 0.0
        for seq, (dt, prio) in enumerate(plan):
            t = now + dt
            heap.schedule(t, prio, seq, seq)
            array.schedule(t, prio, seq, seq)
            if len(heap) and data.draw(st.booleans()):
                e_h, e_a = heap.pop(), array.pop()
                fired_h.append(e_h)
                fired_a.append(e_a)
                now = e_h[0]
        fired_h.extend(drain(heap))
        fired_a.extend(drain(array))
        assert fired_a == fired_h


def _run_cancellation_plan(engine, worker_delays, cancellations):
    """One deterministic env run: workers + interleaved interrupts."""
    env = Environment(engine=engine)
    log = []
    procs = []

    def worker(i, delays):
        try:
            for d in delays:
                yield env.timeout(d)
                log.append(("fired", round(env.now, 9), i))
        except Interrupt as interrupt:
            log.append(("interrupted", round(env.now, 9), i, interrupt.cause))

    def canceller(delay, victim):
        yield env.timeout(delay)
        if procs[victim].is_alive:
            procs[victim].interrupt(f"cancel-{victim}")
            log.append(("cancelled", round(env.now, 9), victim))

    for i, delays in enumerate(worker_delays):
        procs.append(env.process(worker(i, delays)))
    for delay, victim in cancellations:
        env.process(canceller(delay, victim))
    env.run()
    return log


class TestEnvironmentOrderProperty:
    @given(
        worker_delays=st.lists(
            st.lists(
                st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
                min_size=1,
                max_size=5,
            ),
            min_size=1,
            max_size=6,
        ),
        cancellations=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
                st.integers(min_value=0, max_value=5),
            ),
            max_size=4,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_schedules_with_cancellations_identical(
        self, worker_delays, cancellations
    ):
        cancellations = [
            (d, v % len(worker_delays)) for d, v in cancellations
        ]
        log_heap = _run_cancellation_plan("heap", worker_delays, cancellations)
        log_array = _run_cancellation_plan("array", worker_delays, cancellations)
        assert log_array == log_heap


class TestEnvironmentFacade:
    def test_step_on_empty_names_pending_state(self):
        env = Environment(engine="array")
        with pytest.raises(EmptySchedule, match="0 pending events"):
            env.step()
        env_h = Environment(engine="heap")
        with pytest.raises(EmptySchedule, match="backend=heap"):
            env_h.step()

    def test_run_until_negative_raises(self):
        with pytest.raises(ValueError, match="negative"):
            Environment().run(until=-1.0)

    def test_run_until_nan_raises(self):
        with pytest.raises(ValueError, match="NaN"):
            Environment().run(until=float("nan"))

    def test_core_stats_exposed(self):
        env = Environment(engine="array")
        env.timeout(1.0)
        stats = env.core_stats()
        assert stats["backend"] == "array" and stats["pending"] == 1

    def test_repr_names_engine(self):
        assert "engine=array" in repr(Environment(engine="array"))

    @pytest.mark.parametrize("engine", ["heap", "array"])
    def test_run_until_time_identical_semantics(self, engine):
        env = Environment(engine=engine)
        log = []

        def proc():
            while True:
                yield env.timeout(1.0)
                log.append(env.now)

        env.process(proc())
        env.run(until=5.0)
        assert env.now == 5.0
        assert log == [1.0, 2.0, 3.0, 4.0]
