"""Property-based tests for the simulation kernel (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.core import Environment
from repro.sim.queues import PriorityStore, Store


@given(delays=st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
@settings(max_examples=100, deadline=None)
def test_timeouts_fire_in_sorted_order(delays):
    """Whatever the scheduling order, events fire in time order."""
    env = Environment()
    fired = []
    for delay in delays:
        t = env.timeout(delay)
        t.callbacks.append(lambda e, d=delay: fired.append(d))
    env.run()
    assert fired == sorted(delays)
    assert env.now == max(delays)


@given(
    delays=st.lists(
        st.floats(min_value=0, max_value=100), min_size=2, max_size=20
    )
)
@settings(max_examples=50, deadline=None)
def test_equal_delays_preserve_creation_order(delays):
    """Ties break by creation order, making runs deterministic."""
    env = Environment()
    fired = []
    for index, delay in enumerate(delays):
        t = env.timeout(delay)
        t.callbacks.append(lambda e, i=index: fired.append(i))
    env.run()
    expected = [i for _, i in sorted(zip(delays, range(len(delays))))]
    assert fired == expected


@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("put"), st.integers(0, 1000)),
            st.tuples(st.just("get"), st.just(0)),
        ),
        max_size=60,
    )
)
@settings(max_examples=100, deadline=None)
def test_store_matches_fifo_model(ops):
    """Store.get returns exactly what a plain FIFO model would."""
    env = Environment()
    store = Store(env)
    model = []
    expected = []
    got = []
    pending_gets = 0
    for kind, value in ops:
        if kind == "put":
            store.put(value)
            model.append(value)
        else:
            event = store.get()
            event.callbacks.append(lambda e: got.append(e.value))
            pending_gets += 1
        # The model satisfies gets greedily in FIFO order.
    satisfied = min(pending_gets, len(model))
    expected = model[:satisfied]
    env.run()
    assert got == expected


@given(values=st.lists(st.integers(-1000, 1000), min_size=1, max_size=50))
@settings(max_examples=100, deadline=None)
def test_priority_store_yields_sorted(values):
    env = Environment()
    store = PriorityStore(env)
    for value in values:
        store.put(value)
    got = []

    def consumer():
        for _ in range(len(values)):
            item = yield store.get()
            got.append(item)

    env.process(consumer())
    env.run()
    assert got == sorted(values)


@given(
    n_processes=st.integers(1, 10),
    steps=st.integers(1, 10),
    delay=st.floats(min_value=0.001, max_value=10),
)
@settings(max_examples=50, deadline=None)
def test_time_never_goes_backwards(n_processes, steps, delay):
    env = Environment()
    observed = []

    def proc():
        for _ in range(steps):
            yield env.timeout(delay)
            observed.append(env.now)

    for _ in range(n_processes):
        env.process(proc())
    env.run()
    assert observed == sorted(observed)
    assert len(observed) == n_processes * steps
