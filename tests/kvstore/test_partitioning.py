"""Unit tests + properties for the consistent-hash ring."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PartitioningError
from repro.kvstore.partitioning import ConsistentHashRing, stable_hash


def sample_keys(n: int = 500):
    return [f"key:{i:06d}" for i in range(n)]


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("abc") == stable_hash("abc")

    def test_different_inputs_differ(self):
        assert stable_hash("abc") != stable_hash("abd")

    def test_64_bit_range(self):
        value = stable_hash("anything")
        assert 0 <= value < 2**64


class TestRing:
    def test_owner_is_a_member(self):
        ring = ConsistentHashRing(range(5))
        for key in sample_keys(100):
            assert ring.owner(key) in range(5)

    def test_owner_deterministic(self):
        a = ConsistentHashRing(range(8))
        b = ConsistentHashRing(range(8))
        for key in sample_keys(50):
            assert a.owner(key) == b.owner(key)

    def test_single_server_owns_everything(self):
        ring = ConsistentHashRing([3])
        assert all(ring.owner(k) == 3 for k in sample_keys(20))

    def test_empty_ring_rejected(self):
        with pytest.raises(PartitioningError):
            ConsistentHashRing([])

    def test_duplicate_servers_rejected(self):
        with pytest.raises(PartitioningError):
            ConsistentHashRing([1, 1])

    def test_invalid_vnodes_rejected(self):
        with pytest.raises(PartitioningError):
            ConsistentHashRing([0], vnodes=0)

    def test_balance_reasonable(self):
        ring = ConsistentHashRing(range(10), vnodes=128)
        assert ring.balance_ratio(sample_keys(5000)) < 1.5

    def test_ownership_fractions_sum_to_one(self):
        ring = ConsistentHashRing(range(4))
        fractions = ring.ownership_fractions(sample_keys(1000))
        assert sum(fractions.values()) == pytest.approx(1.0)


class TestMembershipChanges:
    def test_add_server_moves_only_some_keys(self):
        ring = ConsistentHashRing(range(10))
        keys = sample_keys(2000)
        before = {k: ring.owner(k) for k in keys}
        ring.add_server(10)
        moved = sum(1 for k in keys if ring.owner(k) != before[k])
        # Consistent hashing: ~1/11 of keys move, never the majority.
        assert 0 < moved < len(keys) * 0.25

    def test_moved_keys_go_to_new_server_only(self):
        ring = ConsistentHashRing(range(5))
        keys = sample_keys(2000)
        before = {k: ring.owner(k) for k in keys}
        ring.add_server(99)
        for key in keys:
            after = ring.owner(key)
            if after != before[key]:
                assert after == 99

    def test_remove_server_redistributes_its_keys(self):
        ring = ConsistentHashRing(range(4))
        keys = sample_keys(1000)
        victims = [k for k in keys if ring.owner(k) == 0]
        survivors = {k: ring.owner(k) for k in keys if ring.owner(k) != 0}
        ring.remove_server(0)
        for key in victims:
            assert ring.owner(key) != 0
        for key, owner in survivors.items():
            assert ring.owner(key) == owner  # untouched keys stay put

    def test_add_duplicate_rejected(self):
        ring = ConsistentHashRing([1, 2])
        with pytest.raises(PartitioningError):
            ring.add_server(1)

    def test_remove_unknown_rejected(self):
        ring = ConsistentHashRing([1, 2])
        with pytest.raises(PartitioningError):
            ring.remove_server(9)

    def test_remove_last_server_rejected(self):
        ring = ConsistentHashRing([1])
        with pytest.raises(PartitioningError):
            ring.remove_server(1)


class TestPreferenceList:
    def test_distinct_servers(self):
        ring = ConsistentHashRing(range(6))
        for key in sample_keys(50):
            replicas = ring.preference_list(key, 3)
            assert len(replicas) == 3
            assert len(set(replicas)) == 3

    def test_first_entry_is_owner(self):
        ring = ConsistentHashRing(range(6))
        for key in sample_keys(50):
            assert ring.preference_list(key, 3)[0] == ring.owner(key)

    def test_prefix_stability(self):
        """preference_list(k, 2) is a prefix of preference_list(k, 3)."""
        ring = ConsistentHashRing(range(6))
        for key in sample_keys(50):
            assert ring.preference_list(key, 3)[:2] == ring.preference_list(key, 2)

    def test_too_many_replicas_rejected(self):
        ring = ConsistentHashRing(range(3))
        with pytest.raises(PartitioningError):
            ring.preference_list("k", 4)

    def test_zero_replicas_rejected(self):
        ring = ConsistentHashRing(range(3))
        with pytest.raises(PartitioningError):
            ring.preference_list("k", 0)


@given(
    n_servers=st.integers(1, 20),
    n_replicas=st.integers(1, 5),
    key=st.text(min_size=1, max_size=50),
)
@settings(max_examples=100, deadline=None)
def test_preference_list_properties(n_servers, n_replicas, key):
    if n_replicas > n_servers:
        n_replicas = n_servers
    ring = ConsistentHashRing(range(n_servers), vnodes=16)
    replicas = ring.preference_list(key, n_replicas)
    assert len(replicas) == n_replicas
    assert len(set(replicas)) == n_replicas
    assert all(0 <= r < n_servers for r in replicas)
    assert replicas[0] == ring.owner(key)
