"""Integration tests for cluster assembly and end-to-end runs."""


import pytest

from repro.core.feedback import FeedbackConfig, FeedbackMode
from repro.kvstore.cluster import Cluster, run_cluster
from repro.kvstore.config import SimulationConfig

from tests.conftest import quick_sim, small_config


class TestAssembly:
    def test_storage_preloaded_with_owned_keys(self):
        cluster = Cluster(small_config())
        total_keys = sum(s.storage.key_count for s in cluster.servers.values())
        assert total_keys == cluster.config.keyspace_size

    def test_replication_multiplies_stored_keys(self):
        config = small_config(replication_factor=3)
        cluster = Cluster(config)
        total_keys = sum(s.storage.key_count for s in cluster.servers.values())
        assert total_keys == 3 * config.keyspace_size

    def test_each_client_gets_estimates_when_feedback_on(self):
        cluster = Cluster(small_config(scheduler="das"))
        assert all(c.estimates is not None for c in cluster.clients)

    def test_no_estimates_when_feedback_none(self):
        config = small_config(
            scheduler="das", feedback=FeedbackConfig(mode=FeedbackMode.NONE)
        )
        cluster = Cluster(config)
        assert all(c.estimates is None for c in cluster.clients)

    def test_servers_know_all_clients(self):
        cluster = Cluster(small_config(n_clients=3))
        for server in cluster.servers.values():
            assert sorted(server.clients) == [0, 1, 2]


class TestRuns:
    @pytest.mark.parametrize(
        "scheduler",
        ["fcfs", "random", "sjf-op", "sjf-req", "lrpt-last", "edf", "sbf",
         "rein-ml", "das"],
    )
    def test_every_scheduler_completes_all_requests(self, scheduler):
        result = run_cluster(small_config(scheduler=scheduler), quick_sim(300))
        assert result.requests_sent == 300
        assert result.requests_completed == 300
        assert result.mean_rct > 0

    def test_max_requests_split_across_clients(self):
        cluster = Cluster(small_config(n_clients=3))
        cluster.run(SimulationConfig(max_requests=100))
        sent = [c.requests_sent for c in cluster.clients]
        assert sum(sent) == 100
        assert max(sent) - min(sent) <= 1

    def test_duration_mode_stops_clock(self):
        result = run_cluster(
            small_config(load=0.3), SimulationConfig(duration=0.5)
        )
        assert result.sim_time == pytest.approx(0.5)
        assert result.requests_completed > 0

    def test_same_seed_reproduces_exactly(self):
        a = run_cluster(small_config(seed=5), quick_sim(200))
        b = run_cluster(small_config(seed=5), quick_sim(200))
        assert list(a.rcts()) == list(b.rcts())

    def test_different_seeds_differ(self):
        a = run_cluster(small_config(seed=5), quick_sim(200))
        b = run_cluster(small_config(seed=6), quick_sim(200))
        assert list(a.rcts()) != list(b.rcts())

    def test_utilization_matches_calibrated_load(self):
        result = run_cluster(small_config(load=0.6), quick_sim(3000))
        assert result.mean_utilization == pytest.approx(0.6, rel=0.15)

    def test_all_ops_succeed_on_preloaded_keyspace(self):
        result = run_cluster(small_config(), quick_sim(300))
        assert result.collector.ops_failed == 0
        assert result.collector.ops_completed == 300 * 3  # fanout 3

    def test_warmup_excludes_early_requests(self):
        result = run_cluster(small_config(), quick_sim(500))
        assert 0 < len(result.rcts()) < 500

    def test_run_result_fields(self):
        config = small_config(n_servers=4)
        result = run_cluster(config, quick_sim(200))
        assert len(result.server_utilizations) == 4
        assert result.percentile(50) > 0
        summary = result.summary()
        assert summary.p50 <= summary.p99


class TestFeedbackModes:
    def test_periodic_feedback_populates_estimates(self):
        config = small_config(
            scheduler="das",
            feedback=FeedbackConfig(mode=FeedbackMode.PERIODIC, interval=1e-3),
        )
        cluster = Cluster(config)
        cluster.run(SimulationConfig(duration=0.2))
        client = cluster.clients[0]
        assert client.estimates.feedback_count > 0
        assert len(client.estimates.known_servers()) == config.n_servers

    def test_piggyback_only_covers_contacted_servers(self):
        config = small_config(scheduler="das")
        cluster = Cluster(config)
        cluster.run(SimulationConfig(max_requests=50))
        client = cluster.clients[0]
        assert client.estimates.feedback_count > 0

    def test_das_without_feedback_still_works(self):
        config = small_config(
            scheduler="das", feedback=FeedbackConfig(mode=FeedbackMode.NONE)
        )
        result = run_cluster(config, quick_sim(200))
        assert result.requests_completed == 200


class TestReplicaSelection:
    @pytest.mark.parametrize(
        "selection", ["primary", "round_robin", "random", "least_estimated_work"]
    )
    def test_selection_policies_run(self, selection):
        config = small_config(
            scheduler="das", replication_factor=2, replica_selection=selection
        )
        result = run_cluster(config, quick_sim(200))
        assert result.requests_completed == 200
        assert result.collector.ops_failed == 0
