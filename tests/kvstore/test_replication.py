"""Unit tests for replica placement and selection."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.kvstore.partitioning import ConsistentHashRing
from repro.kvstore.replication import ReplicaPlacement


@pytest.fixture
def ring():
    return ConsistentHashRing(range(6))


class TestConstruction:
    def test_replication_factor_bounds(self, ring):
        with pytest.raises(ConfigError):
            ReplicaPlacement(ring, replication_factor=0)
        with pytest.raises(ConfigError):
            ReplicaPlacement(ring, replication_factor=7)

    def test_unknown_policy_rejected(self, ring):
        with pytest.raises(ConfigError):
            ReplicaPlacement(ring, selection="fastest")

    def test_random_requires_rng(self, ring):
        with pytest.raises(ConfigError):
            ReplicaPlacement(ring, replication_factor=3, selection="random")

    def test_least_work_requires_callback(self, ring):
        with pytest.raises(ConfigError):
            ReplicaPlacement(
                ring, replication_factor=3, selection="least_estimated_work"
            )


class TestSelection:
    def test_primary_always_first_replica(self, ring):
        placement = ReplicaPlacement(ring, replication_factor=3, selection="primary")
        for i in range(30):
            key = f"k{i}"
            assert placement.select_read_replica(key) == ring.preference_list(key, 3)[0]

    def test_round_robin_cycles_through_replicas(self, ring):
        placement = ReplicaPlacement(
            ring, replication_factor=3, selection="round_robin"
        )
        key = "hotkey"
        picks = [placement.select_read_replica(key) for _ in range(6)]
        replicas = placement.replicas(key)
        assert picks == replicas * 2

    def test_random_stays_within_replica_set(self, ring):
        placement = ReplicaPlacement(
            ring,
            replication_factor=3,
            selection="random",
            rng=np.random.default_rng(0),
        )
        key = "k"
        allowed = set(placement.replicas(key))
        picks = {placement.select_read_replica(key) for _ in range(50)}
        assert picks <= allowed
        assert len(picks) > 1  # actually randomizes

    def test_least_estimated_work_picks_minimum(self, ring):
        work = {sid: float(sid) for sid in range(6)}  # server 0 least loaded
        placement = ReplicaPlacement(
            ring,
            replication_factor=3,
            selection="least_estimated_work",
            work_estimate=lambda sid: work[sid],
        )
        for i in range(20):
            key = f"k{i}"
            replicas = placement.replicas(key)
            assert placement.select_read_replica(key) == min(replicas)

    def test_single_replica_short_circuits(self, ring):
        placement = ReplicaPlacement(ring, replication_factor=1, selection="primary")
        key = "k"
        assert placement.select_read_replica(key) == ring.owner(key)

    def test_write_set_is_full_replica_set(self, ring):
        placement = ReplicaPlacement(ring, replication_factor=3)
        key = "k"
        assert placement.write_set(key) == ring.preference_list(key, 3)

    def test_repr(self, ring):
        placement = ReplicaPlacement(ring, replication_factor=2)
        assert "n=2" in repr(placement)
