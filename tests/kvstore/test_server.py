"""Unit tests for the simulated server (direct harness, no full cluster)."""

import pytest

from repro.kvstore.items import OpKind, Operation, Request
from repro.kvstore.network import UniformLatencyNetwork
from repro.kvstore.server import Server, make_periodic_broadcaster
from repro.kvstore.service import DegradationEvent, ServiceModel
from repro.kvstore.storage import StorageEngine
from repro.schedulers.base import QueueContext
from repro.schedulers.registry import create_policy

import numpy as np


class FakeClient:
    """Collects responses like the real client would."""

    def __init__(self, client_id=0):
        self.client_id = client_id
        self.responses = []

    def handle_response(self, response):
        self.responses.append(response)


def make_server(env, scheduler="fcfs", base_delay=0.0, **service_kwargs):
    policy = create_policy(scheduler)
    queue = policy.make_queue(
        QueueContext(server_id=0, rng=np.random.default_rng(0))
    )
    service = ServiceModel(
        per_op_overhead=1e-3, byte_rate=1e6, **service_kwargs
    )
    storage = StorageEngine(server_id=0)
    network = UniformLatencyNetwork(env, base_delay=base_delay)
    server = Server(env, 0, queue, service, storage, network)
    client = FakeClient()
    server.clients[0] = client
    return server, client


def make_op(key="k", size=1000, client_id=0, arrival=0.0, kind=OpKind.GET):
    request = Request(request_id=1, client_id=client_id, arrival_time=arrival)
    op = Operation(
        request=request,
        key=key,
        kind=kind,
        value_size=size,
        server_id=0,
        demand=1e-3 + size / 1e6,
    )
    request.operations.append(op)
    return op


class TestServing:
    def test_serves_stored_key(self, env):
        server, client = make_server(env)
        server.storage.put("k", 1000)
        server.handle_operation(make_op("k"))
        env.run(until=1.0)
        assert len(client.responses) == 1
        response = client.responses[0]
        assert response.ok
        assert response.value_size == 1000

    def test_missing_key_fails_cleanly(self, env):
        server, client = make_server(env)
        server.handle_operation(make_op("ghost"))
        env.run(until=1.0)
        response = client.responses[0]
        assert not response.ok
        assert response.error == "key not found"
        assert server.ops_failed == 1

    def test_put_operation_writes_storage(self, env):
        server, client = make_server(env)
        server.handle_operation(make_op("new", size=512, kind=OpKind.PUT))
        env.run(until=1.0)
        assert client.responses[0].ok
        assert server.storage.get("new").size == 512

    def test_service_time_matches_model(self, env):
        server, client = make_server(env)
        server.storage.put("k", 1000)
        op = make_op("k")
        server.handle_operation(op)
        env.run(until=1.0)
        # demand = 1ms + 1ms = 2ms at nominal speed, no noise
        assert op.service_time == pytest.approx(2e-3)

    def test_ops_served_counter_and_busy_time(self, env):
        server, client = make_server(env)
        server.storage.put("k", 1000)
        for _ in range(3):
            server.handle_operation(make_op("k"))
        env.run(until=1.0)
        assert server.ops_served == 3
        assert server.busy_time == pytest.approx(3 * 2e-3)
        assert server.utilization(1.0) == pytest.approx(6e-3)

    def test_server_sleeps_when_idle_and_wakes_on_push(self, env):
        server, client = make_server(env)
        server.storage.put("k", 1000)

        def late_push():
            yield env.timeout(5.0)
            server.handle_operation(make_op("k"))

        env.process(late_push())
        env.run(until=10.0)
        assert len(client.responses) == 1
        op = client.responses[0].operation
        assert op.start_time == pytest.approx(5.0)

    def test_fifo_order_under_fcfs(self, env):
        server, client = make_server(env)
        server.storage.put("a", 100)
        server.storage.put("b", 100)
        server.handle_operation(make_op("a"))
        server.handle_operation(make_op("b"))
        env.run(until=1.0)
        keys = [r.operation.key for r in client.responses]
        assert keys == ["a", "b"]


class TestFeedback:
    def test_response_carries_feedback(self, env):
        server, client = make_server(env)
        server.storage.put("k", 1000)
        server.handle_operation(make_op("k"))
        env.run(until=1.0)
        feedback = client.responses[0].feedback
        assert feedback is not None
        assert feedback.server_id == 0
        assert feedback.queue_length == 0  # nothing left behind

    def test_feedback_disabled(self, env):
        policy = create_policy("fcfs")
        queue = policy.make_queue(QueueContext(0, np.random.default_rng(0)))
        network = UniformLatencyNetwork(env, base_delay=0.0)
        server = Server(
            env, 0, queue, ServiceModel(per_op_overhead=1e-3, byte_rate=1e6),
            StorageEngine(), network, piggyback_feedback=False,
        )
        client = FakeClient()
        server.clients[0] = client
        server.storage.put("k", 100)
        server.handle_operation(make_op("k"))
        env.run(until=1.0)
        assert client.responses[0].feedback is None

    def test_feedback_reports_queued_work(self, env):
        server, client = make_server(env)
        for key in ("a", "b", "c"):
            server.storage.put(key, 1000)
            server.handle_operation(make_op(key))
        feedback = server.make_feedback()
        # Three ops of 2ms each queued (one may be in service already).
        assert feedback.queued_work > 0
        assert feedback.queue_length >= 2

    def test_degraded_server_learns_its_rate(self, env):
        server, client = make_server(
            env, degradations=[DegradationEvent(0.0, 0.5)]
        )
        server.storage.put("k", 1000)
        for _ in range(20):
            server.handle_operation(make_op("k"))
        env.run(until=5.0)
        # Measured rate converges toward the degraded speed 0.5.
        assert server.measured_rate == pytest.approx(0.5, rel=0.1)

    def test_in_service_residual(self, env):
        server, client = make_server(env)
        server.storage.put("k", 1000)
        server.handle_operation(make_op("k"))

        def peek():
            yield env.timeout(1e-3)  # halfway through the 2ms service
            return server.in_service_residual(env.now)

        p = env.process(peek())
        env.run(until=p)
        assert p.value == pytest.approx(1e-3)
        env.run()
        assert server.in_service_residual(env.now) == 0.0

    def test_periodic_broadcaster_emits(self, env):
        server, client = make_server(env)
        snapshots = []
        env.process(
            make_periodic_broadcaster(env, server, 0.5, snapshots.append)
        )
        env.run(until=2.1)
        assert len(snapshots) == 4  # at 0.5, 1.0, 1.5, 2.0
