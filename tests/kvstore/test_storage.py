"""Unit tests for the in-memory storage engine."""

import pytest

from repro.errors import KeyNotFoundError, StorageError
from repro.kvstore.storage import StorageEngine


@pytest.fixture
def store() -> StorageEngine:
    return StorageEngine(server_id=1)


class TestCrud:
    def test_put_then_get(self, store):
        store.put("k", 100, now=1.0)
        record = store.get("k", now=2.0)
        assert record.size == 100
        assert record.created_at == 1.0

    def test_get_missing_raises(self, store):
        with pytest.raises(KeyNotFoundError, match="nope"):
            store.get("nope")

    def test_overwrite_bumps_version(self, store):
        v1 = store.put("k", 10)
        v2 = store.put("k", 20)
        assert v2 > v1
        assert store.get("k").size == 20

    def test_delete(self, store):
        store.put("k", 10)
        assert store.delete("k") is True
        assert store.delete("k") is False
        with pytest.raises(KeyNotFoundError):
            store.get("k")

    def test_negative_size_rejected(self, store):
        with pytest.raises(StorageError):
            store.put("k", -1)

    def test_size_of(self, store):
        store.put("k", 4096)
        assert store.size_of("k") == 4096

    def test_contains(self, store):
        assert not store.contains("k")
        store.put("k", 1)
        assert store.contains("k")
        # contains must not disturb hit/miss counters
        assert store.hits == 0
        assert store.misses == 0

    def test_payload_storage_when_enabled(self):
        store = StorageEngine(track_payloads=True)
        store.put("k", 5, payload=b"hello")
        assert store.get("k").payload == b"hello"

    def test_payload_dropped_when_disabled(self, store):
        store.put("k", 5, payload=b"hello")
        assert store.get("k").payload is None


class TestTtl:
    def test_expired_key_misses(self, store):
        store.put("k", 10, now=0.0, ttl=5.0)
        assert store.get("k", now=4.9).size == 10
        with pytest.raises(KeyNotFoundError):
            store.get("k", now=5.0)
        assert store.expirations == 1

    def test_nonpositive_ttl_rejected(self, store):
        with pytest.raises(StorageError):
            store.put("k", 10, ttl=0)

    def test_sweep_expired(self, store):
        for i in range(5):
            store.put(f"k{i}", 10, now=0.0, ttl=1.0 + i)
        removed = store.sweep_expired(now=3.0)
        assert removed == 3  # ttl 1.0, 2.0, and 3.0 (expiry is inclusive)
        assert store.key_count == 2

    def test_expiry_updates_byte_count(self, store):
        store.put("k", 100, now=0.0, ttl=1.0)
        assert store.byte_count == 100
        store.sweep_expired(now=2.0)
        assert store.byte_count == 0


class TestNamespaces:
    def test_namespaces_isolate_keys(self, store):
        store.create_namespace("other")
        store.put("k", 1)
        store.put("k", 2, namespace="other")
        assert store.get("k").size == 1
        assert store.get("k", namespace="other").size == 2

    def test_duplicate_namespace_rejected(self, store):
        store.create_namespace("x")
        with pytest.raises(StorageError):
            store.create_namespace("x")

    def test_unknown_namespace_rejected(self, store):
        with pytest.raises(StorageError):
            store.get("k", namespace="ghost")

    def test_namespace_listing(self, store):
        store.create_namespace("b")
        store.create_namespace("a")
        assert store.namespaces() == ["a", "b", "default"]


class TestAccounting:
    def test_byte_count_tracks_overwrites(self, store):
        store.put("a", 100)
        store.put("b", 50)
        store.put("a", 10)  # overwrite shrinks
        assert store.byte_count == 60

    def test_stats_shape(self, store):
        store.put("a", 1)
        store.get("a")
        try:
            store.get("missing")
        except KeyNotFoundError:
            pass
        stats = store.stats()
        assert stats["keys"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["puts"] == 1

    def test_scan_yields_all(self, store):
        store.put("a", 1)
        store.put("b", 2)
        assert {k for k, _ in store.scan()} == {"a", "b"}

    def test_repr(self, store):
        store.put("a", 1)
        assert "keys=1" in repr(store)
