"""Unit tests for the network models."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.kvstore.network import (
    TopologyNetwork,
    UniformLatencyNetwork,
    fat_tree_like_topology,
)


class TestUniformNetwork:
    def test_constant_delay(self, env):
        net = UniformLatencyNetwork(env, base_delay=1e-3)
        assert net.delay("a", "b") == 1e-3

    def test_delivery_after_delay(self, env):
        net = UniformLatencyNetwork(env, base_delay=2.0)
        received = []
        net.send("a", "b", "hello", lambda p: received.append((env.now, p)))
        env.run()
        assert received == [(2.0, "hello")]

    def test_zero_delay_still_goes_through_event_queue(self, env):
        net = UniformLatencyNetwork(env, base_delay=0.0)
        received = []
        net.send("a", "b", "x", lambda p: received.append(p))
        assert received == []  # not synchronous
        env.run()
        assert received == ["x"]

    def test_message_ordering_preserved_without_jitter(self, env):
        net = UniformLatencyNetwork(env, base_delay=1e-3)
        received = []
        for i in range(5):
            net.send("a", "b", i, received.append)
        env.run()
        assert received == [0, 1, 2, 3, 4]

    def test_jitter_requires_rng(self, env):
        with pytest.raises(ConfigError):
            UniformLatencyNetwork(env, jitter_mean=1e-3)

    def test_jitter_adds_positive_delay(self, env):
        net = UniformLatencyNetwork(
            env, base_delay=1e-3, jitter_mean=1e-3, rng=np.random.default_rng(0)
        )
        delays = [net.delay("a", "b") for _ in range(100)]
        assert all(d >= 1e-3 for d in delays)
        assert np.mean(delays) == pytest.approx(2e-3, rel=0.3)

    def test_counters(self, env):
        net = UniformLatencyNetwork(env)
        net.send("a", "b", None, lambda p: None, size_bytes=100)
        net.send("a", "b", None, lambda p: None, size_bytes=50)
        assert net.messages_sent == 2
        assert net.bytes_sent == 150

    def test_negative_base_delay_rejected(self, env):
        with pytest.raises(ConfigError):
            UniformLatencyNetwork(env, base_delay=-1)


class TestTopologyNetwork:
    def test_shortest_path_delay(self, env):
        graph = fat_tree_like_topology(n_servers=4, n_clients=2, rack_size=2)
        net = TopologyNetwork(env, graph)
        # client -> spine -> tor -> server
        delay = net.delay(("client", 0), ("server", 0))
        assert delay > 0

    def test_same_rack_cheaper_than_cross_rack(self, env):
        graph = fat_tree_like_topology(
            n_servers=4,
            n_clients=1,
            rack_size=2,
            intra_rack_delay=10e-6,
            inter_rack_delay=100e-6,
        )
        net = TopologyNetwork(env, graph)
        same_rack = net.delay(("server", 0), ("server", 1))
        cross_rack = net.delay(("server", 0), ("server", 2))
        assert same_rack < cross_rack

    def test_self_delay_zero(self, env):
        graph = fat_tree_like_topology(2, 1)
        net = TopologyNetwork(env, graph)
        assert net.delay(("server", 0), ("server", 0)) == 0.0

    def test_unknown_endpoint_rejected(self, env):
        graph = fat_tree_like_topology(2, 1)
        net = TopologyNetwork(env, graph)
        with pytest.raises(ConfigError):
            net.delay(("server", 99), ("server", 0))

    def test_delivery_via_topology(self, env):
        graph = fat_tree_like_topology(2, 1)
        net = TopologyNetwork(env, graph)
        received = []
        net.send(("client", 0), ("server", 1), "msg", lambda p: received.append(p))
        env.run()
        assert received == ["msg"]
        assert env.now == pytest.approx(net.delay(("client", 0), ("server", 1)))

    def test_distance_caching_consistent(self, env):
        graph = fat_tree_like_topology(4, 2)
        net = TopologyNetwork(env, graph)
        first = net.delay(("client", 0), ("server", 3))
        second = net.delay(("client", 0), ("server", 3))
        assert first == second


class TestTopologyBuilder:
    def test_all_endpoints_present(self):
        graph = fat_tree_like_topology(n_servers=10, n_clients=3, rack_size=4)
        for s in range(10):
            assert ("server", s) in graph
        for c in range(3):
            assert ("client", c) in graph

    def test_rack_count(self):
        graph = fat_tree_like_topology(n_servers=10, n_clients=1, rack_size=4)
        tors = [n for n in graph if isinstance(n, tuple) and n[0] == "tor"]
        assert len(tors) == 3  # ceil(10/4)

    def test_invalid_counts_rejected(self):
        with pytest.raises(ConfigError):
            fat_tree_like_topology(0, 1)
        with pytest.raises(ConfigError):
            fat_tree_like_topology(1, 0)
