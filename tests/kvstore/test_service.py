"""Unit tests for the service-time model."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.kvstore.service import DegradationEvent, ServiceModel


class TestDemand:
    def test_demand_formula(self):
        model = ServiceModel(per_op_overhead=10e-6, byte_rate=1e6)
        assert model.demand(1000) == pytest.approx(10e-6 + 1e-3)

    def test_zero_size_is_overhead_only(self):
        model = ServiceModel(per_op_overhead=5e-6, byte_rate=1e6)
        assert model.demand(0) == pytest.approx(5e-6)

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigError):
            ServiceModel().demand(-1)


class TestValidation:
    def test_bad_overhead(self):
        with pytest.raises(ConfigError):
            ServiceModel(per_op_overhead=-1)

    def test_bad_byte_rate(self):
        with pytest.raises(ConfigError):
            ServiceModel(byte_rate=0)

    def test_bad_base_speed(self):
        with pytest.raises(ConfigError):
            ServiceModel(base_speed=0)

    def test_noise_requires_rng(self):
        with pytest.raises(ConfigError):
            ServiceModel(noise_cv=0.5)

    def test_bad_degradation_factor(self):
        with pytest.raises(ConfigError):
            DegradationEvent(time=1.0, factor=0.0)

    def test_bad_degradation_time(self):
        with pytest.raises(ConfigError):
            DegradationEvent(time=-1.0, factor=0.5)


class TestSpeedFactor:
    def test_no_degradations_is_base_speed(self):
        model = ServiceModel(base_speed=1.5)
        assert model.speed_factor(0.0) == 1.5
        assert model.speed_factor(1e9) == 1.5

    def test_step_function(self):
        model = ServiceModel(
            degradations=[
                DegradationEvent(10.0, 0.5),
                DegradationEvent(20.0, 1.0),
            ]
        )
        assert model.speed_factor(9.99) == 1.0
        assert model.speed_factor(10.0) == 0.5
        assert model.speed_factor(19.99) == 0.5
        assert model.speed_factor(20.0) == 1.0

    def test_unsorted_events_are_sorted(self):
        model = ServiceModel(
            degradations=[DegradationEvent(20.0, 2.0), DegradationEvent(10.0, 0.5)]
        )
        assert model.speed_factor(15.0) == 0.5
        assert model.speed_factor(25.0) == 2.0

    def test_base_speed_multiplies_degradation(self):
        model = ServiceModel(base_speed=2.0, degradations=[DegradationEvent(5.0, 0.5)])
        assert model.speed_factor(6.0) == pytest.approx(1.0)

    def test_next_change_after(self):
        model = ServiceModel(
            degradations=[DegradationEvent(10.0, 0.5), DegradationEvent(20.0, 1.0)]
        )
        assert model.next_change_after(0.0) == 10.0
        assert model.next_change_after(10.0) == 20.0
        assert model.next_change_after(20.0) == float("inf")


class TestServiceTimes:
    def test_degraded_server_is_slower(self):
        model = ServiceModel(degradations=[DegradationEvent(10.0, 0.5)])
        fast = model.sample_service_time(1000, now=0.0)
        slow = model.sample_service_time(1000, now=15.0)
        assert slow == pytest.approx(2.0 * fast)

    def test_noise_has_mean_one(self):
        rng = np.random.default_rng(0)
        model = ServiceModel(noise_cv=0.3, rng=rng)
        base = model.demand(1000)
        samples = np.array(
            [model.sample_service_time(1000, now=0.0) for _ in range(5000)]
        )
        assert samples.mean() == pytest.approx(base, rel=0.03)

    def test_noise_cv_matches(self):
        rng = np.random.default_rng(1)
        model = ServiceModel(noise_cv=0.5, rng=rng)
        samples = np.array(
            [model.sample_service_time(1000, now=0.0) for _ in range(20000)]
        )
        cv = samples.std() / samples.mean()
        assert cv == pytest.approx(0.5, rel=0.1)

    def test_rate_sample(self):
        model = ServiceModel()
        # Served in half the demanded time -> rate 2.0
        assert model.rate_sample(demand=2e-3, actual=1e-3) == pytest.approx(2.0)

    def test_rate_sample_guards_zero(self):
        model = ServiceModel(base_speed=1.25)
        assert model.rate_sample(1e-3, 0.0) == 1.25

    def test_repr(self):
        assert "degradations=0" in repr(ServiceModel())
