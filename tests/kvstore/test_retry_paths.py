"""Retry-path edge cases: late originals, budget exhaustion, routing.

Complements ``test_faults.py`` (which covers the happy retry path) with
the corner cases the fault subsystem leans on: duplicate suppression
when a slow original answers after its retry, what happens when the
retry budget runs out against a *crashed* (not merely out) server, and
multi-hop routing down the preference list when several replicas are
dark at once.
"""

import numpy as np
import pytest

from repro.faults import Crash, DelaySpike, FaultPlan
from repro.kvstore.cluster import Cluster
from repro.kvstore.config import SimulationConfig
from repro.kvstore.network import UniformLatencyNetwork
from repro.kvstore.server import Server
from repro.kvstore.service import ServiceModel
from repro.kvstore.storage import StorageEngine
from repro.schedulers.base import QueueContext
from repro.schedulers.registry import create_policy

from tests.conftest import small_config


def retry_config(**overrides):
    return small_config(
        load=0.3,
        seed=9,
        replication_factor=overrides.pop("replication_factor", 2),
        op_timeout=overrides.pop("op_timeout", 0.02),
        max_retries=overrides.pop("max_retries", 2),
        **overrides,
    )


def slow_server_config(**overrides):
    """Server 0 answers everything ~10ms late: slow but alive, so its
    originals regularly lose the race against their own retries."""
    plan = FaultPlan((DelaySpike(at=0.0, until=100.0, extra=0.01, servers=(0,)),))
    return retry_config(
        op_timeout=overrides.pop("op_timeout", 0.005),
        fault_plan=plan,
        **overrides,
    )


class TestLateOriginalDedup:
    def test_late_original_after_successful_retry_is_ignored(self):
        config = slow_server_config(max_retries=1)
        cluster = Cluster(config)
        result = cluster.run(SimulationConfig(max_requests=300))
        assert sum(c.timeouts_observed for c in cluster.clients) > 0
        assert sum(c.retries_sent for c in cluster.clients) > 0
        assert result.requests_completed == 300
        # completed counts requests, not responses: the late originals
        # that trickled in after the retry answered did not double count.
        assert sum(c.requests_completed for c in cluster.clients) == 300

    def test_late_original_leaves_no_client_state_behind(self):
        """Whichever answer loses the race must clear out without leaking
        timers, attempt counters, or hedge bookkeeping."""
        config = slow_server_config(max_retries=1)
        cluster = Cluster(config)
        cluster.run(SimulationConfig(max_requests=300))
        for client in cluster.clients:
            assert not client._attempts
            assert not client._op_timers
            assert not client._hedged
        # Duplicates found their timer already poisoned; only the winning
        # response of each op may cancel, so cancellations stay bounded by
        # wins even though responses outnumber them.
        cancelled = sum(c.timers_cancelled for c in cluster.clients)
        assert cancelled > 0


class TestBudgetExhaustion:
    def test_crash_with_single_replica_loses_requests(self):
        """Against a crashed server with no other replica, retries burn
        out and the dropped originals never answer: the request is lost
        (an outage would merely delay it)."""
        plan = FaultPlan((Crash(0, at=0.1),))  # never recovers
        config = retry_config(
            replication_factor=1, max_retries=1, fault_plan=plan
        )
        cluster = Cluster(config)
        result = cluster.run(SimulationConfig(duration=0.6, warmup_fraction=0.0))
        assert cluster.servers[0].ops_dropped > 0
        assert result.requests_completed < result.requests_sent
        timeouts = sum(c.timeouts_observed for c in cluster.clients)
        retries = sum(c.retries_sent for c in cluster.clients)
        # The budget caps retries strictly below observed timeouts: the
        # last timeout of each doomed op finds the budget empty.
        assert 0 < retries < timeouts


class TestPreferenceListRouting:
    def test_retry_walks_past_multiple_dark_replicas(self):
        """With the first two replicas of some keys both out, the second
        retry must reach the third preference-list entry — no completed
        request waits for the outage to lift."""
        config = retry_config(
            replication_factor=3,
            outages={0: ((0.05, 0.9),), 1: ((0.05, 0.9),)},
        )
        cluster = Cluster(config)
        result = cluster.run(SimulationConfig(duration=1.0, warmup_fraction=0.0))
        assert sum(c.retries_sent for c in cluster.clients) > 0
        served_dark = cluster.servers[0].ops_served + cluster.servers[1].ops_served
        served_lit = sum(
            s.ops_served for sid, s in cluster.servers.items() if sid > 1
        )
        assert served_lit > served_dark
        # Every request that completed did so well before the windows end.
        assert result.summary().maximum < 0.85


def bare_server(env, outages):
    policy = create_policy("fcfs")
    queue = policy.make_queue(
        QueueContext(server_id=0, rng=np.random.default_rng(0))
    )
    service = ServiceModel(per_op_overhead=1e-3, byte_rate=1e6)
    network = UniformLatencyNetwork(env, base_delay=0.0)
    return Server(env, 0, queue, service, StorageEngine(server_id=0), network, outages=outages)


class TestOutageWindowMerging:
    """Regression: the bisect lookup must match the old linear scan,
    including back-to-back and overlapping windows."""

    def test_back_to_back_windows_merge(self, env):
        server = bare_server(env, outages=((0.0, 1.0), (1.0, 2.0)))
        assert server.outages == ((0.0, 2.0),)
        # The seam instant 1.0 is covered, exactly as the linear scan
        # covered it via the second window's half-open [1.0, 2.0).
        assert server._outage_end(0.5) == 2.0
        assert server._outage_end(1.0) == 2.0
        assert server._outage_end(2.0) is None

    def test_overlapping_and_unsorted_windows_merge(self, env):
        server = bare_server(env, outages=((1.5, 3.0), (0.0, 2.0), (5.0, 6.0)))
        assert server.outages == ((0.0, 3.0), (5.0, 6.0))
        assert server._outage_end(2.5) == 3.0
        assert server._outage_end(4.0) is None
        assert server._outage_end(5.0) == 6.0

    def test_disjoint_windows_stay_separate(self, env):
        server = bare_server(env, outages=((0.0, 1.0), (2.0, 3.0)))
        assert server.outages == ((0.0, 1.0), (2.0, 3.0))
        assert server._outage_end(0.0) == 1.0
        assert server._outage_end(1.0) is None
        assert server._outage_end(2.9) == 3.0

    def test_invalid_window_still_rejected(self, env):
        with pytest.raises(ValueError):
            bare_server(env, outages=((1.0, 1.0),))

    def test_back_to_back_serves_nothing_until_union_ends(self, env):
        server = bare_server(env, outages=((0.0, 0.1), (0.1, 0.2)))
        from tests.kvstore.test_server import make_op

        server.storage.put("k", 1000)

        class Sink:
            client_id = 0

            def handle_response(self, response):
                self.at = server.env.now

        sink = Sink()
        server.clients[0] = sink
        server.handle_operation(make_op())
        env.run(until=0.5)
        assert server.ops_served == 1
        assert sink.at >= 0.2  # waited out both windows as one
