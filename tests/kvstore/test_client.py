"""Unit tests for the simulated front-end client."""

import pytest

from repro.kvstore.cluster import Cluster
from repro.kvstore.config import SimulationConfig
from repro.workload.traces import TraceRecord

from tests.conftest import small_config


class TestGeneration:
    def test_max_requests_respected(self):
        cluster = Cluster(small_config(n_clients=1))
        client = cluster.clients[0]
        client.max_requests = 25
        cluster.env.run()
        assert client.requests_sent == 25
        assert client.generation_done

    def test_end_time_respected(self):
        cluster = Cluster(small_config(n_clients=1, load=0.4))
        client = cluster.clients[0]
        client.end_time = 0.05
        cluster.env.run()
        assert client.generation_done
        # All recorded arrivals fall before the end time.
        for record in cluster.metrics.records:
            assert record.arrival_time <= 0.05

    def test_request_ids_unique_across_clients(self):
        cluster = Cluster(small_config(n_clients=3))
        cluster.run(SimulationConfig(max_requests=90))
        ids = [r.request_id for r in cluster.metrics.records]
        assert len(ids) == len(set(ids))

    def test_outstanding_drains_to_zero(self):
        cluster = Cluster(small_config(n_clients=1))
        client = cluster.clients[0]
        client.max_requests = 10
        cluster.env.run()
        assert client.outstanding == 0
        assert client.drained
        assert client.requests_completed == 10

    def test_operation_timestamps_populated(self):
        cluster = Cluster(small_config(n_clients=1))
        cluster.run(SimulationConfig(max_requests=5))
        # Completion implies every op went dispatch -> enqueue -> start ->
        # finish -> response in order.
        for record in cluster.metrics.records:
            assert record.completion_time > record.arrival_time


class TestTraceClient:
    def test_trace_replay_uses_recorded_keys(self):
        records = tuple(
            TraceRecord(t=0.001 * i, keys=[f"key:{i % 100:010d}"], sizes=[1024])
            for i in range(50)
        )
        config = small_config(n_clients=1, trace=records)
        cluster = Cluster(config)
        result = cluster.run(SimulationConfig(max_requests=50))
        assert result.requests_completed == 50
        assert result.collector.ops_failed == 0  # keys exist in the keyspace

    def test_trace_split_across_clients(self):
        records = tuple(
            TraceRecord(t=0.001 * i, keys=[f"key:{i % 100:010d}"], sizes=[1024])
            for i in range(40)
        )
        config = small_config(n_clients=2, trace=records)
        cluster = Cluster(config)
        result = cluster.run(SimulationConfig(max_requests=40))
        sent = [c.requests_sent for c in cluster.clients]
        assert sent == [20, 20]
        assert result.requests_completed == 40

    def test_trace_key_missing_from_keyspace_fails_op(self):
        records = (TraceRecord(t=0.0, keys=["not-a-real-key"], sizes=[10]),)
        config = small_config(n_clients=1, trace=records)
        cluster = Cluster(config)
        result = cluster.run(SimulationConfig(max_requests=1))
        assert result.requests_completed == 1  # completes, with a miss
        assert result.collector.ops_failed == 1


class TestEstimatesFlow:
    def test_estimates_follow_piggybacked_feedback(self):
        config = small_config(scheduler="das", n_clients=1)
        cluster = Cluster(config)
        cluster.run(SimulationConfig(max_requests=100))
        estimates = cluster.clients[0].estimates
        # The client heard from servers and learned healthy rates (~1.0).
        assert estimates.feedback_count > 0
        for sid in estimates.known_servers():
            assert estimates.rate(sid) == pytest.approx(1.0, abs=0.1)
