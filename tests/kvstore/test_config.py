"""Validation tests for cluster/simulation configuration."""

import pytest

from repro.core.feedback import FeedbackConfig, FeedbackMode
from repro.errors import ConfigError
from repro.kvstore.config import ClusterConfig, ServiceConfig, SimulationConfig
from repro.kvstore.service import DegradationEvent


class TestServiceConfig:
    def test_defaults_valid(self):
        ServiceConfig()

    def test_mean_demand(self):
        service = ServiceConfig(per_op_overhead=1e-4, byte_rate=1e6, noise_cv=0)
        assert service.mean_demand(1000) == pytest.approx(1e-4 + 1e-3)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"per_op_overhead": -1},
            {"byte_rate": 0},
            {"noise_cv": -0.1},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            ServiceConfig(**kwargs)


class TestClusterConfig:
    def test_defaults_valid(self):
        config = ClusterConfig()
        assert config.n_servers == 20
        assert config.mean_speed() == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_servers": 0},
            {"n_clients": 0},
            {"keyspace_size": 0},
            {"put_fraction": 1.5},
            {"replication_factor": 99},
            {"network_base_delay": -1},
        ],
    )
    def test_invalid_fields(self, kwargs):
        with pytest.raises(ConfigError):
            ClusterConfig(**kwargs)

    def test_server_speeds_length_checked(self):
        with pytest.raises(ConfigError):
            ClusterConfig(n_servers=3, server_speeds=(1.0, 1.0))

    def test_server_speeds_positive(self):
        with pytest.raises(ConfigError):
            ClusterConfig(n_servers=2, server_speeds=(1.0, 0.0))

    def test_mean_speed_computed(self):
        config = ClusterConfig(n_servers=2, server_speeds=(0.5, 1.5))
        assert config.mean_speed() == pytest.approx(1.0)

    def test_degradation_for_unknown_server_rejected(self):
        with pytest.raises(ConfigError):
            ClusterConfig(
                n_servers=2,
                degradations={5: (DegradationEvent(1.0, 0.5),)},
            )

    def test_feedback_config_embedded(self):
        config = ClusterConfig(
            feedback=FeedbackConfig(mode=FeedbackMode.PERIODIC, interval=1e-3)
        )
        assert config.feedback.periodic


class TestFeedbackConfig:
    def test_parse_from_string(self):
        assert FeedbackMode.parse("piggyback") is FeedbackMode.PIGGYBACK
        assert FeedbackMode.parse(FeedbackMode.NONE) is FeedbackMode.NONE

    def test_parse_unknown(self):
        with pytest.raises(ConfigError):
            FeedbackMode.parse("telepathy")

    def test_interval_positive(self):
        with pytest.raises(ConfigError):
            FeedbackConfig(interval=0)

    def test_mode_flags(self):
        assert FeedbackConfig(mode=FeedbackMode.PIGGYBACK).piggyback
        assert not FeedbackConfig(mode=FeedbackMode.NONE).piggyback


class TestSimulationConfig:
    def test_exactly_one_stopping_rule(self):
        with pytest.raises(ConfigError):
            SimulationConfig()
        with pytest.raises(ConfigError):
            SimulationConfig(duration=1.0, max_requests=100)

    def test_duration_mode(self):
        sim = SimulationConfig(duration=2.0)
        assert sim.max_requests is None

    def test_max_requests_mode(self):
        sim = SimulationConfig(max_requests=100)
        assert sim.duration is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"duration": 0},
            {"max_requests": 0},
            {"max_requests": 10, "warmup_fraction": 1.0},
            {"max_requests": 10, "warmup_fraction": -0.1},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            SimulationConfig(**kwargs)
