"""Fault injection: server outages, operation timeouts, replica retries."""

import pytest

from repro.errors import ConfigError
from repro.kvstore.cluster import Cluster
from repro.kvstore.config import SimulationConfig

from tests.conftest import small_config


class TestConfigValidation:
    def test_outage_unknown_server_rejected(self):
        with pytest.raises(ConfigError):
            small_config(outages={99: ((0.0, 1.0),)})

    def test_outage_bad_window_rejected(self):
        with pytest.raises(ConfigError):
            small_config(outages={0: ((1.0, 1.0),)})
        with pytest.raises(ConfigError):
            small_config(outages={0: ((-1.0, 1.0),)})

    def test_retries_require_timeout(self):
        with pytest.raises(ConfigError):
            small_config(max_retries=2)

    def test_bad_timeout_rejected(self):
        with pytest.raises(ConfigError):
            small_config(op_timeout=0.0)


class TestOutages:
    def test_server_serves_nothing_during_outage(self):
        config = small_config(load=0.3, outages={0: ((0.0, 0.5),)})
        cluster = Cluster(config)
        cluster.run(SimulationConfig(duration=0.4))
        server = cluster.servers[0]
        assert server.ops_served == 0
        assert len(server.queue) > 0  # work piled up

    def test_queued_work_drains_after_outage(self):
        config = small_config(load=0.3, outages={0: ((0.0, 0.2),)})
        cluster = Cluster(config)
        result = cluster.run(SimulationConfig(duration=1.0))
        server = cluster.servers[0]
        assert server.ops_served > 0
        # Requests touching server 0 during the outage completed late but
        # completed; nothing is lost.
        assert result.requests_completed == result.requests_sent or (
            # tail requests may still be in flight at the duration cut
            result.requests_sent - result.requests_completed < 50
        )

    def test_outage_inflates_rct_without_retries(self):
        base = small_config(load=0.3, seed=9)
        faulty = small_config(load=0.3, seed=9, outages={0: ((0.05, 0.55),)})
        sim = SimulationConfig(duration=1.0, warmup_fraction=0.0)
        healthy = Cluster(base).run(sim).summary().maximum
        impaired = Cluster(faulty).run(sim).summary().maximum
        assert impaired > healthy * 5  # some request waited out the outage


class TestTimeoutsAndRetries:
    def retry_config(self, **overrides):
        return small_config(
            load=0.3,
            seed=9,
            replication_factor=2,
            op_timeout=overrides.pop("op_timeout", 0.02),
            max_retries=overrides.pop("max_retries", 2),
            **overrides,
        )

    def test_retries_route_around_outage(self):
        config = self.retry_config(outages={0: ((0.05, 0.8),)})
        cluster = Cluster(config)
        result = cluster.run(SimulationConfig(duration=1.0, warmup_fraction=0.0))
        client_retries = sum(c.retries_sent for c in cluster.clients)
        assert client_retries > 0
        # With retries to the second replica, no completed request had to
        # wait for the outage to end.
        assert result.summary().maximum < 0.5

    def test_retry_metrics_zero_on_healthy_cluster(self):
        config = self.retry_config()
        cluster = Cluster(config)
        cluster.run(SimulationConfig(max_requests=200))
        assert sum(c.retries_sent for c in cluster.clients) == 0
        assert sum(c.timeouts_observed for c in cluster.clients) == 0

    def test_duplicate_responses_do_not_double_complete(self):
        """A slow (not down) server answers after the retry already did;
        the duplicate must be dropped, not complete the request twice."""
        config = small_config(
            load=0.3,
            seed=9,
            replication_factor=2,
            op_timeout=0.001,  # aggressive: originals regularly "time out"
            max_retries=1,
        )
        cluster = Cluster(config)
        result = cluster.run(SimulationConfig(max_requests=300))
        assert result.requests_completed == 300
        # completed counts requests, not responses: no double counting.
        assert sum(c.requests_completed for c in cluster.clients) == 300

    def test_retry_goes_to_next_replica(self):
        config = self.retry_config(outages={0: ((0.0, 10.0),)})
        cluster = Cluster(config)
        cluster.run(SimulationConfig(duration=0.5, warmup_fraction=0.0))
        # Server 0 is down the whole run; its replicas absorbed the work.
        served_elsewhere = sum(
            s.ops_served for sid, s in cluster.servers.items() if sid != 0
        )
        assert served_elsewhere > 0
        assert cluster.servers[0].ops_served == 0

    def test_exhausted_retry_budget_waits_for_original(self):
        # Replication 1: retries can only go back to the same (down)
        # server, so requests complete only after the outage.
        config = small_config(
            load=0.3,
            seed=9,
            replication_factor=1,
            op_timeout=0.02,
            max_retries=1,
            outages={0: ((0.0, 0.3),)},
        )
        cluster = Cluster(config)
        result = cluster.run(SimulationConfig(duration=1.0, warmup_fraction=0.0))
        assert result.summary().maximum > 0.25
