"""Unit tests for the request/operation data model."""

import math

import pytest

from repro.kvstore.items import OpKind, Operation, Request


def make_request(slices):
    """Build a request with operations described by (server_id, demand)."""
    request = Request(request_id=1, client_id=0, arrival_time=10.0)
    for i, (server_id, demand) in enumerate(slices):
        request.operations.append(
            Operation(
                request=request,
                key=f"k{i}",
                kind=OpKind.GET,
                value_size=100,
                server_id=server_id,
                demand=demand,
                index=i,
            )
        )
    return request


class TestRequest:
    def test_fanout(self):
        request = make_request([(0, 1.0), (1, 2.0), (2, 3.0)])
        assert request.fanout == 3

    def test_total_demand(self):
        request = make_request([(0, 1.0), (1, 2.0)])
        assert request.total_demand == pytest.approx(3.0)

    def test_demands_by_server_aggregates_slices(self):
        request = make_request([(0, 1.0), (0, 2.0), (1, 5.0)])
        assert request.demands_by_server() == {0: pytest.approx(3.0), 1: 5.0}

    def test_bottleneck_is_largest_slice(self):
        request = make_request([(0, 1.0), (0, 2.0), (1, 2.5)])
        assert request.bottleneck_demand() == pytest.approx(3.0)

    def test_bottleneck_empty_request(self):
        request = Request(request_id=1, client_id=0, arrival_time=0.0)
        assert request.bottleneck_demand() == 0.0

    def test_remaining_counts_unfinished(self):
        request = make_request([(0, 1.0), (1, 1.0)])
        assert request.remaining == 2
        request.operations[0].finish_time = 11.0
        assert request.remaining == 1

    def test_done_and_rct(self):
        request = make_request([(0, 1.0)])
        assert not request.done
        assert math.isnan(request.rct)
        request.completion_time = 12.5
        assert request.done
        assert request.rct == pytest.approx(2.5)

    def test_total_bytes(self):
        request = make_request([(0, 1.0), (1, 1.0)])
        assert request.total_bytes == 200

    def test_repr(self):
        request = make_request([(0, 1.0)])
        assert "fanout=1" in repr(request)


class TestOperation:
    def test_wait_and_service_times(self):
        request = make_request([(0, 1.0)])
        op = request.operations[0]
        op.enqueue_time = 1.0
        op.start_time = 3.0
        op.finish_time = 4.5
        assert op.wait_time == pytest.approx(2.0)
        assert op.service_time == pytest.approx(1.5)

    def test_request_id_passthrough(self):
        request = make_request([(0, 1.0)])
        assert request.operations[0].request_id == 1

    def test_fresh_timestamps_are_nan(self):
        request = make_request([(0, 1.0)])
        op = request.operations[0]
        assert math.isnan(op.dispatch_time)
        assert math.isnan(op.finish_time)

    def test_tag_dict_is_per_operation(self):
        request = make_request([(0, 1.0), (1, 1.0)])
        request.operations[0].tag["x"] = 1
        assert "x" not in request.operations[1].tag

    def test_repr(self):
        request = make_request([(3, 0.5)])
        assert "server=3" in repr(request.operations[0])
