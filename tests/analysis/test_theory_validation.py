"""Simulator validation against closed-form queueing theory.

These tests are the credibility anchor of the whole evaluation: if the
discrete-event engine reproduces M/G/1 within a few percent, scheduler
comparisons built on it measure scheduling, not simulator artifacts.
"""

import pytest

from repro.analysis.theory import (
    mg1_mean_wait,
    mm1_mean_wait,
    predict_single_key_fcfs,
    service_moments_from_keyspace,
)
from repro.errors import ConfigError
from repro.kvstore.cluster import Cluster
from repro.kvstore.config import ClusterConfig, ServiceConfig, SimulationConfig
from repro.workload.arrivals import PoissonArrivals
from repro.workload.fanout import FixedFanout
from repro.workload.popularity import UniformPopularity
from repro.workload.sizes import ExponentialSize, FixedSize


def single_key_config(load, sizes, n_servers=4, seed=3):
    service = ServiceConfig(per_op_overhead=20e-6, byte_rate=50e6, noise_cv=0.0)
    mean_demand = service.mean_demand(sizes.mean())
    rate = load * n_servers / mean_demand
    return ClusterConfig(
        n_servers=n_servers,
        n_clients=2,
        seed=seed,
        scheduler="fcfs",
        keyspace_size=2000,
        arrivals=PoissonArrivals(rate=rate),
        fanout=FixedFanout(k=1),
        sizes=sizes,
        popularity=UniformPopularity(),
        service=service,
        network_base_delay=10e-6,
        vnodes=256,  # tight ring balance for the uniform-split assumption
    )


class TestFormulas:
    def test_mm1_known_value(self):
        # rho = 0.5: Wq = rho / (mu - lambda) = 0.5 / 0.5 = 1.0 (mu = 1).
        assert mm1_mean_wait(lam=0.5, mu=1.0) == pytest.approx(1.0)

    def test_mm1_unstable_rejected(self):
        with pytest.raises(ConfigError):
            mm1_mean_wait(lam=2.0, mu=1.0)

    def test_mg1_reduces_to_mm1_for_exponential(self):
        # Exponential service: E[S] = 1/mu, E[S^2] = 2/mu^2.
        mu = 4.0
        lam = 2.0
        assert mg1_mean_wait(lam, 1 / mu, 2 / mu**2) == pytest.approx(
            mm1_mean_wait(lam, mu)
        )

    def test_mg1_deterministic_is_half_of_exponential(self):
        # M/D/1 waits are half of M/M/1 at the same rho.
        mu = 4.0
        lam = 2.0
        deterministic = mg1_mean_wait(lam, 1 / mu, 1 / mu**2)
        exponential = mg1_mean_wait(lam, 1 / mu, 2 / mu**2)
        assert deterministic == pytest.approx(exponential / 2)

    def test_mg1_validation(self):
        with pytest.raises(ConfigError):
            mg1_mean_wait(1.0, 0.5, 0.1)  # E[S^2] < E[S]^2
        with pytest.raises(ConfigError):
            mg1_mean_wait(3.0, 0.5, 0.5)  # unstable

    def test_moments_from_keyspace(self):
        import numpy as np

        from repro.workload.requests import Keyspace

        keyspace = Keyspace(100, FixedSize(size=1000), np.random.default_rng(0))
        es, es2 = service_moments_from_keyspace(keyspace, 1e-4, 1e6)
        assert es == pytest.approx(1e-4 + 1e-3)
        assert es2 == pytest.approx(es * es)  # deterministic: no variance


class TestPredictionEnvelope:
    def test_rejects_multiget_configs(self):
        config = single_key_config(0.5, FixedSize(size=1000))
        config = type(config)(**{**config.__dict__, "fanout": FixedFanout(k=2)})
        cluster = Cluster(config)
        with pytest.raises(ConfigError, match="fan-out"):
            predict_single_key_fcfs(config, cluster.keyspace)

    def test_rejects_noisy_service(self):
        config = single_key_config(0.5, FixedSize(size=1000))
        noisy = type(config)(
            **{**config.__dict__, "service": ServiceConfig(noise_cv=0.2)}
        )
        cluster = Cluster(config)
        with pytest.raises(ConfigError, match="noise"):
            predict_single_key_fcfs(noisy, cluster.keyspace)


class TestSimulationMatchesTheory:
    """The headline validation: simulated mean RCT within ~7% of M/G/1."""

    @pytest.mark.parametrize("load", [0.3, 0.6, 0.8])
    def test_md1_deterministic_service(self, load):
        config = single_key_config(load, FixedSize(size=4096))
        cluster = Cluster(config)
        prediction = predict_single_key_fcfs(config, cluster.keyspace)
        result = cluster.run(
            SimulationConfig(max_requests=40_000, warmup_fraction=0.2)
        )
        assert result.mean_rct == pytest.approx(prediction.mean_rct, rel=0.07)

    @pytest.mark.parametrize("load", [0.3, 0.6])
    def test_mg1_exponential_like_service(self, load):
        config = single_key_config(load, ExponentialSize(mean_size=4096))
        cluster = Cluster(config)
        prediction = predict_single_key_fcfs(config, cluster.keyspace)
        result = cluster.run(
            SimulationConfig(max_requests=40_000, warmup_fraction=0.2)
        )
        assert result.mean_rct == pytest.approx(prediction.mean_rct, rel=0.10)

    def test_utilization_matches_rho(self):
        config = single_key_config(0.6, FixedSize(size=4096))
        cluster = Cluster(config)
        prediction = predict_single_key_fcfs(config, cluster.keyspace)
        result = cluster.run(
            SimulationConfig(max_requests=20_000, warmup_fraction=0.1)
        )
        assert result.mean_utilization == pytest.approx(prediction.rho, rel=0.08)

    def test_sjf_beats_fcfs_prediction_under_variance(self):
        """Sanity tying theory to scheduling: with variable service, SJF's
        mean beats the FCFS M/G/1 mean; with deterministic service it
        cannot (everything is the same size)."""
        config = single_key_config(0.7, ExponentialSize(mean_size=4096))
        sjf_config = type(config)(**{**config.__dict__, "scheduler": "sjf-op"})
        fcfs_cluster = Cluster(config)
        prediction = predict_single_key_fcfs(config, fcfs_cluster.keyspace)
        sim = SimulationConfig(max_requests=30_000, warmup_fraction=0.2)
        sjf_mean = Cluster(sjf_config).run(sim).mean_rct
        assert sjf_mean < prediction.mean_rct


class TestExactRingSplit:
    def test_exact_split_matches_simulation_tighter_near_saturation(self):
        config = single_key_config(0.85, FixedSize(size=4096))
        cluster = Cluster(config)
        exact = predict_single_key_fcfs(config, cluster.keyspace, ring=cluster.ring)
        result = cluster.run(
            SimulationConfig(max_requests=40_000, warmup_fraction=0.2)
        )
        assert result.mean_rct == pytest.approx(exact.mean_rct, rel=0.12)

    def test_exact_split_predicts_higher_wait_than_uniform(self):
        """Ownership imbalance always increases the average wait (Jensen:
        Wq is convex in rho), so the exact prediction dominates the
        uniform-split one."""
        config = single_key_config(0.8, FixedSize(size=4096))
        cluster = Cluster(config)
        uniform = predict_single_key_fcfs(config, cluster.keyspace)
        exact = predict_single_key_fcfs(config, cluster.keyspace, ring=cluster.ring)
        assert exact.mean_wait >= uniform.mean_wait

    def test_exact_split_rho_matches_offered_load(self):
        config = single_key_config(0.6, FixedSize(size=4096))
        cluster = Cluster(config)
        exact = predict_single_key_fcfs(config, cluster.keyspace, ring=cluster.ring)
        # The ownership-weighted rho is slightly above the nominal target
        # (weighting by share favours the busier servers) but close.
        assert exact.rho == pytest.approx(0.6, rel=0.1)
