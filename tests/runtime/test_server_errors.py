"""Runtime server behaviour on malformed and edge-case requests."""

import asyncio

from repro.runtime.protocol import Message, read_message, write_message
from repro.runtime.server import KVServer


def run(coro):
    return asyncio.run(coro)


async def raw_call(port: int, message: Message) -> Message:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        await write_message(writer, message)
        return await read_message(reader)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class TestServerErrorHandling:
    def test_missing_field_reported_not_fatal(self):
        async def scenario():
            server = KVServer(scheduler="fcfs", byte_rate=None)
            await server.start()
            try:
                reply = await raw_call(
                    server.port, Message(type="get", id=1, fields={})
                )
                assert reply.type == "reply"
                assert reply.fields["ok"] is False
                assert "missing field" in reply.fields["error"]
                # Server still alive for a valid request afterwards.
                reply2 = await raw_call(
                    server.port,
                    Message(type="get", id=2, fields={"key": "ghost"}),
                )
                assert reply2.fields["ok"] is True
                assert reply2.fields["values"]["ghost"] is None
            finally:
                await server.stop()

        run(scenario())

    def test_bad_value_encoding_reported(self):
        async def scenario():
            server = KVServer(scheduler="fcfs", byte_rate=None)
            await server.start()
            try:
                reply = await raw_call(
                    server.port,
                    Message(
                        type="put",
                        id=1,
                        fields={"key": "k", "value": "!!!not-base64!!!"},
                    ),
                )
                assert reply.fields["ok"] is False
                assert "encoding" in reply.fields["error"]
            finally:
                await server.stop()

        run(scenario())

    def test_garbage_bytes_close_connection_not_server(self):
        async def scenario():
            server = KVServer(scheduler="fcfs", byte_rate=None)
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                # A length prefix promising more than the limit.
                writer.write((2**31).to_bytes(4, "big"))
                await writer.drain()
                # The server drops this connection...
                data = await reader.read()
                assert data == b""
                writer.close()
                # ...but keeps serving new ones.
                reply = await raw_call(
                    server.port,
                    Message(type="get", id=1, fields={"key": "x"}),
                )
                assert reply.type == "reply"
            finally:
                await server.stop()

        run(scenario())

    def test_reply_always_carries_feedback(self):
        async def scenario():
            server = KVServer(scheduler="das", byte_rate=None)
            await server.start()
            try:
                reply = await raw_call(
                    server.port, Message(type="get", id=1, fields={"key": "a"})
                )
                feedback = reply.fields["feedback"]
                assert {"queued_work", "queue_length", "rate_sample"} <= set(
                    feedback
                )
            finally:
                await server.stop()

        run(scenario())

    def test_multiple_sequential_requests_same_connection(self):
        async def scenario():
            server = KVServer(scheduler="fcfs", byte_rate=None)
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                for i in range(5):
                    await write_message(
                        writer,
                        Message(type="get", id=i, fields={"key": f"k{i}"}),
                    )
                    reply = await read_message(reader)
                    assert reply.id == i
                writer.close()
                await writer.wait_closed()
            finally:
                await server.stop()

        run(scenario())
