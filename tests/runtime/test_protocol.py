"""Tests for the runtime wire protocol."""

import asyncio

import pytest

from repro.errors import ProtocolError
from repro.runtime.protocol import (
    MAX_MESSAGE_BYTES,
    Message,
    decode_value,
    encode_value,
    read_message,
)


class TestMessage:
    def test_roundtrip(self):
        message = Message(type="get", id=7, fields={"key": "k", "tags": {"rpt": 1.5}})
        decoded = Message.decode(message.encode()[4:])
        assert decoded.type == "get"
        assert decoded.id == 7
        assert decoded.fields == {"key": "k", "tags": {"rpt": 1.5}}

    def test_invalid_type_rejected(self):
        with pytest.raises(ProtocolError):
            Message(type="steal", id=1)

    def test_invalid_id_rejected(self):
        with pytest.raises(ProtocolError):
            Message(type="get", id=-1)

    def test_decode_bad_json(self):
        with pytest.raises(ProtocolError, match="malformed"):
            Message.decode(b"{broken")

    def test_decode_non_object(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            Message.decode(b"[1, 2]")

    def test_decode_missing_fields(self):
        with pytest.raises(ProtocolError, match="missing"):
            Message.decode(b'{"type": "get"}')

    def test_length_prefix(self):
        raw = Message(type="get", id=1, fields={"key": "k"}).encode()
        length = int.from_bytes(raw[:4], "big")
        assert length == len(raw) - 4


class TestValues:
    def test_value_roundtrip(self):
        payload = bytes(range(256))
        assert decode_value(encode_value(payload)) == payload

    def test_bad_encoding_rejected(self):
        with pytest.raises(ProtocolError):
            decode_value("!!! not base64 !!!")


class TestStreamIO:
    def run(self, coro):
        return asyncio.run(coro)

    def test_write_then_read(self):
        async def scenario():
            reader = asyncio.StreamReader()
            message = Message(type="mget", id=3, fields={"keys": ["a", "b"]})
            reader.feed_data(message.encode())
            reader.feed_eof()
            received = await read_message(reader)
            assert received.type == "mget"
            assert received.fields["keys"] == ["a", "b"]

        self.run(scenario())

    def test_clean_eof_returns_none(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_eof()
            assert await read_message(reader) is None

        self.run(scenario())

    def test_mid_header_eof_raises(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(b"\x00\x00")  # truncated length prefix
            reader.feed_eof()
            with pytest.raises(ProtocolError, match="mid-header"):
                await read_message(reader)

        self.run(scenario())

    def test_mid_message_eof_raises(self):
        async def scenario():
            reader = asyncio.StreamReader()
            raw = Message(type="get", id=1, fields={"key": "k"}).encode()
            reader.feed_data(raw[:-2])  # drop the body's tail
            reader.feed_eof()
            with pytest.raises(ProtocolError, match="mid-message"):
                await read_message(reader)

        self.run(scenario())

    def test_oversized_declared_length_rejected(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data((MAX_MESSAGE_BYTES + 1).to_bytes(4, "big"))
            with pytest.raises(ProtocolError, match="exceeds limit"):
                await read_message(reader)

        self.run(scenario())

    def test_multiple_messages_in_sequence(self):
        async def scenario():
            reader = asyncio.StreamReader()
            for i in range(3):
                reader.feed_data(
                    Message(type="get", id=i, fields={"key": f"k{i}"}).encode()
                )
            reader.feed_eof()
            ids = []
            while True:
                message = await read_message(reader)
                if message is None:
                    break
                ids.append(message.id)
            assert ids == [0, 1, 2]

        self.run(scenario())
