"""Unit tests for the client-side resilience policies."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.runtime.resilience import (
    CircuitBreaker,
    HedgePolicy,
    LatencyTracker,
    MultigetReport,
    RetryPolicy,
)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(op_timeout=0)
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ConfigError):
            RetryPolicy(total_deadline=-1)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_factor=0.5)

    def test_first_attempt_never_waits(self):
        policy = RetryPolicy(backoff_base=0.1)
        assert policy.backoff(1, np.random.default_rng(0)) == 0.0

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(backoff_base=0.01, backoff_factor=2.0, jitter=0.0)
        rng = np.random.default_rng(0)
        assert policy.backoff(2, rng) == pytest.approx(0.01)
        assert policy.backoff(3, rng) == pytest.approx(0.02)
        assert policy.backoff(4, rng) == pytest.approx(0.04)

    def test_jitter_shrinks_within_bounds(self):
        policy = RetryPolicy(backoff_base=0.01, jitter=0.5)
        rng = np.random.default_rng(42)
        for _ in range(100):
            pause = policy.backoff(2, rng)
            assert 0.005 <= pause <= 0.01

    def test_jitter_deterministic_given_seed(self):
        policy = RetryPolicy(backoff_base=0.01, jitter=0.5)
        a = [policy.backoff(2, np.random.default_rng(7)) for _ in range(3)]
        b = [policy.backoff(2, np.random.default_rng(7)) for _ in range(3)]
        assert a == b


class TestHedgePolicy:
    def test_fixed_threshold_wins_over_percentile(self):
        tracker = LatencyTracker()
        policy = HedgePolicy(hedge_after=0.05)
        assert policy.threshold(tracker) == 0.05

    def test_percentile_needs_samples(self):
        tracker = LatencyTracker()
        policy = HedgePolicy(percentile=95.0, min_samples=10)
        assert policy.threshold(tracker) is None
        for i in range(10):
            tracker.record(0.001 * (i + 1))
        threshold = policy.threshold(tracker)
        assert threshold is not None
        assert 0.009 <= threshold <= 0.010

    def test_validation(self):
        with pytest.raises(ConfigError):
            HedgePolicy(percentile=0)
        with pytest.raises(ConfigError):
            HedgePolicy(hedge_after=0)
        with pytest.raises(ConfigError):
            HedgePolicy(max_hedges=0)


class TestLatencyTracker:
    def test_window_wraps(self):
        tracker = LatencyTracker(window=4)
        for i in range(10):
            tracker.record(float(i))
        assert len(tracker) == 4
        # Only the last 4 samples survive.
        assert tracker.percentile(100.0) == 9.0
        assert tracker.percentile(0.0) == 6.0


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=1.0)
        assert not breaker.record_failure(now=0.0)
        assert not breaker.record_failure(now=0.1)
        assert breaker.record_failure(now=0.2)  # third failure opens
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow(now=0.5)

    def test_success_resets_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure(now=0.0)
        breaker.record_success()
        assert not breaker.record_failure(now=0.1)
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_then_close(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=0.5)
        assert breaker.record_failure(now=0.0)
        assert not breaker.allow(now=0.2)
        assert breaker.allow(now=0.6)  # probe let through
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=0.5)
        breaker.record_failure(now=0.0)
        assert breaker.allow(now=0.6)
        assert breaker.record_failure(now=0.7)  # probe failed -> reopen
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow(now=0.8)


class TestMultigetReport:
    def test_complete_flag(self):
        report = MultigetReport(requested=3, fetched=3)
        assert report.complete
        report.failed_servers[0] = "timeout"
        assert not report.complete
