"""Integration tests: replica selection in the asyncio runtime.

Covers correctness of replicated reads/writes, the control-plane probe
path, and the behaviour the subsystem exists for: a degraded server
shedding read traffic under the Prequal-style policy.
"""

import asyncio

import pytest

from repro.runtime import LocalCluster
from repro.runtime.client import RuntimeClient
from repro.runtime.server import KVServer


def run(coro):
    return asyncio.run(coro)


class TestReplicatedCorrectness:
    def test_puts_reach_every_replica(self):
        async def scenario():
            async with LocalCluster(
                n_servers=3, byte_rate=None, replication_factor=3,
                selection="round_robin", trace_sample_rate=0,
            ) as cluster:
                await cluster.client.put("k", b"v")
                # Every server stored the key (rf == n_servers).
                counts = [s.storage.key_count for s in cluster.servers]
                assert counts == [1, 1, 1]

        run(scenario())

    def test_reads_correct_from_any_replica(self):
        async def scenario():
            async with LocalCluster(
                n_servers=4, byte_rate=None, replication_factor=3,
                selection="random", trace_sample_rate=0,
            ) as cluster:
                items = {f"key:{i:03d}": f"value-{i}".encode() for i in range(30)}
                await cluster.preload(items)
                for _ in range(5):  # different replicas on each pass
                    values = await cluster.client.multiget(list(items))
                    assert values == items

        run(scenario())

    def test_selection_stats_exposed(self):
        async def scenario():
            async with LocalCluster(
                n_servers=3, byte_rate=None, replication_factor=2,
                selection="round_robin", trace_sample_rate=0,
            ) as cluster:
                await cluster.preload({"a": b"1", "b": b"2"})
                await cluster.client.multiget(["a", "b"])
                stats = cluster.client.stats()["selection"]
                assert stats["policy"] == "round_robin"
                assert stats["decisions"] >= 2

        run(scenario())

    def test_replication_factor_validated(self):
        with pytest.raises(ValueError, match="replication_factor"):
            RuntimeClient([("127.0.0.1", 1)], replication_factor=2)


class TestProbes:
    def test_probe_message_answers_from_control_plane(self):
        async def scenario():
            server = KVServer(scheduler="fcfs", byte_rate=None)
            await server.start()
            client = RuntimeClient([(server.host, server.port)])
            await client.connect()
            reply = await client._attempt(0, "probe", {}, timeout=2.0)
            await client.close()
            await server.stop()
            assert reply.fields["ok"]
            assert "in_flight" in reply.fields
            assert "feedback" in reply.fields
            assert server.stats()["probes_answered"] == 1

        run(scenario())

    def test_probes_fired_for_probe_based_policy(self):
        async def scenario():
            async with LocalCluster(
                n_servers=3, byte_rate=None, replication_factor=3,
                selection="prequal", trace_sample_rate=0,
            ) as cluster:
                await cluster.preload({f"k{i}": b"x" for i in range(10)})
                for _ in range(10):
                    await cluster.client.multiget([f"k{i}" for i in range(5)])
                # Let the fire-and-forget probe tasks drain.
                for _ in range(50):
                    if not cluster.client._probe_tasks:
                        break
                    await asyncio.sleep(0.01)
                stats = cluster.client.stats()
                assert stats["probes_sent"] > 0
                assert stats["probes_ok"] == stats["probes_sent"]
                answered = sum(
                    s.stats()["probes_answered"] for s in cluster.servers
                )
                assert answered == stats["probes_ok"]
                assert stats["selection"]["probes_added"] > 0

        run(scenario())

    def test_primary_policy_fires_no_probes(self):
        async def scenario():
            async with LocalCluster(
                n_servers=3, byte_rate=None, replication_factor=3,
                selection="primary", trace_sample_rate=0,
            ) as cluster:
                await cluster.preload({"a": b"1"})
                await cluster.client.multiget(["a"])
                assert cluster.client.stats()["probes_sent"] == 0

        run(scenario())


class TestLoadReports:
    def test_dodoor_cluster_broadcasts_and_absorbs_reports(self):
        async def scenario():
            async with LocalCluster(
                n_servers=3, byte_rate=None, replication_factor=3,
                selection="dodoor", load_report_interval=0.02,
                trace_sample_rate=0,
            ) as cluster:
                await cluster.preload({f"k{i}": b"x" for i in range(10)})
                deadline = asyncio.get_running_loop().time() + 2.0
                while asyncio.get_running_loop().time() < deadline:
                    await cluster.client.multiget([f"k{i}" for i in range(5)])
                    if cluster.client.stats()["load_reports"] >= 3:
                        break
                    await asyncio.sleep(0.02)
                stats = cluster.client.stats()
                assert stats["load_reports"] >= 3
                assert stats["probes_sent"] == 0  # reports replace probes
                selection = stats["selection"]
                assert selection["policy"] == "dodoor"
                assert selection["control_plane"]["messages_sent"]["report"] >= 3
                assert selection["reports_cached"] > 0
                sent = sum(
                    s.stats()["load_reports_sent"] for s in cluster.servers
                )
                assert sent >= stats["load_reports"]

        run(scenario())

    def test_reporter_defaults_on_for_report_fed_policy(self):
        # No explicit interval: LocalCluster must arm the reporter because
        # the dodoor registry entry declares load_reports.
        cluster = LocalCluster(
            n_servers=2, byte_rate=None, replication_factor=2,
            selection="dodoor", trace_sample_rate=0,
        )
        assert cluster.load_report_interval is not None
        assert all(
            s.load_report_interval == cluster.load_report_interval
            for s in cluster.servers
        )

    def test_reporter_stays_off_for_other_policies(self):
        cluster = LocalCluster(
            n_servers=2, byte_rate=None, replication_factor=2,
            selection="prequal", trace_sample_rate=0,
        )
        assert cluster.load_report_interval is None

    def test_interval_validated(self):
        with pytest.raises(ValueError, match="load_report_interval"):
            KVServer(byte_rate=None, load_report_interval=0.0)

    def test_report_loop_survives_restart(self):
        async def scenario():
            server = KVServer(
                scheduler="fcfs", byte_rate=None, load_report_interval=0.01
            )
            await server.start()
            assert server._report_task is not None
            await server.crash()
            assert server._report_task is None
            await server.restart()
            assert server._report_task is not None
            await server.stop()
            assert server._report_task is None

        run(scenario())


class TestDegradedServerSheds:
    def test_prequal_sheds_reads_from_slow_server(self):
        """A server made 100x slower ends up with well under its fair share.

        Server 2's per-op overhead is raised before start so its executor
        queue genuinely builds; the feedback and probe replies expose the
        congestion and the Prequal policy routes reads to the two healthy
        replicas.  (The slow server is not id 0 on purpose: cold-start
        tie-breaks favour low ids, which would mask weak shedding.)
        """

        async def scenario():
            cluster = LocalCluster(
                n_servers=3,
                scheduler="fcfs",
                replication_factor=3,
                selection="prequal",
                trace_sample_rate=0,
            )
            cluster.servers[2].per_op_overhead = 0.02
            async with cluster:
                items = {f"key:{i:03d}": b"x" * 64 for i in range(20)}
                await cluster.preload(items)
                keys = list(items)
                for i in range(40):
                    batch = [keys[(i + j) % len(keys)] for j in range(5)]
                    await cluster.client.multiget(batch)
                stats = cluster.client.stats()["selection"]
                total = sum(stats["picks"].values())
                slow = stats["picks"].get(2, 0)
                fair = total / 3
                assert slow < fair * 0.6, (
                    f"slow server kept {slow}/{total} picks "
                    f"(fair share {fair:.0f}): {stats['picks']}"
                )

        run(scenario())
