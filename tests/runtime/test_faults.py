"""Runtime failure paths: fault injection, retries, reconnects, chaos.

These are the runtime twins of the simulator's X2 fault-tolerance
benchmark: a server misbehaving (stalled, dropping, delayed, dead) must
not hang a protected client, and recovery must need no manual steps.
"""

import asyncio

import pytest

from repro.runtime import (
    DelayReplies,
    DropReplies,
    HedgePolicy,
    LocalCluster,
    Outage,
    RetryPolicy,
    ServerUnavailableError,
)
from repro.runtime.faults import (
    DELAY,
    DISCONNECT,
    DROP,
    PASS,
    Disconnect,
    FaultInjector,
    RefuseConnections,
)


def run(coro):
    return asyncio.run(coro)


def keys_for_server(client, server_id, n, prefix="k"):
    """First ``n`` generated keys the ring assigns to ``server_id``."""
    keys, i = [], 0
    while len(keys) < n:
        candidate = f"{prefix}:{i:04d}"
        if client.owner(candidate) == server_id:
            keys.append(candidate)
        i += 1
    return keys


class TestFaultInjector:
    def test_outage_window_relative_to_arming(self):
        injector = FaultInjector()
        injector.add(Outage(0.5, 1.5), now=100.0)
        assert injector.decide(None, now=100.2).action == PASS
        assert injector.connection_allowed(now=100.2)
        assert injector.decide(None, now=100.9).action == DROP
        assert not injector.connection_allowed(now=100.9)
        assert injector.decide(None, now=101.6).action == PASS
        assert injector.counters.dropped == 1
        assert injector.counters.refused_connections == 1

    def test_drop_count_mode_is_deterministic(self):
        injector = FaultInjector()
        injector.add(DropReplies(count=2), now=0.0)
        actions = [injector.decide(None, now=0.0).action for _ in range(4)]
        assert actions == [DROP, DROP, PASS, PASS]

    def test_drop_probability_mode_reproducible(self):
        a = DropReplies(probability=0.5, seed=7)
        b = DropReplies(probability=0.5, seed=7)
        decisions_a = [a.decide(None, 0.0).action for _ in range(20)]
        decisions_b = [b.decide(None, 0.0).action for _ in range(20)]
        assert decisions_a == decisions_b
        assert DROP in decisions_a and PASS in decisions_a

    def test_worst_decision_wins_and_delays_add(self):
        injector = FaultInjector()
        injector.add(DelayReplies(delay=0.1), now=0.0)
        injector.add(DelayReplies(delay=0.2), now=0.0)
        decision = injector.decide(None, now=0.0)
        assert decision.action == DELAY
        assert decision.delay == pytest.approx(0.3)
        injector.add(Disconnect(count=1), now=0.0)
        assert injector.decide(None, now=0.0).action == DISCONNECT

    def test_refuse_connections_window(self):
        injector = FaultInjector()
        injector.add(RefuseConnections(0.0, 1.0), now=50.0)
        assert not injector.connection_allowed(now=50.5)
        assert injector.connection_allowed(now=51.5)
        # Message handling unaffected — only accepts are refused.
        assert injector.decide(None, now=50.5).action == PASS


class TestTimeoutsAndRetries:
    def test_unprotected_client_hangs_on_stalled_server(self):
        async def scenario():
            async with LocalCluster(n_servers=2, byte_rate=None) as cluster:
                keys = keys_for_server(cluster.client, 0, 2)
                await cluster.preload({k: b"v" for k in keys})
                cluster.inject(0, Outage(0.0, 60.0))
                with pytest.raises(asyncio.TimeoutError):
                    await asyncio.wait_for(cluster.client.multiget(keys), 0.25)

        run(scenario())

    def test_retry_counter_increments_under_injected_drops(self):
        async def scenario():
            async with LocalCluster(n_servers=2, byte_rate=None) as cluster:
                key = keys_for_server(cluster.client, 0, 1)[0]
                await cluster.client.put(key, b"survives")
                protected = await cluster.new_client(
                    retry_policy=RetryPolicy(
                        op_timeout=0.05, max_attempts=3, backoff_base=0.005
                    )
                )
                cluster.inject(0, DropReplies(count=2))
                value = await protected.get(key)
                assert value == b"survives"
                stats = protected.stats()
                assert stats["retries"] == 2
                assert stats["timeouts"] == 2
                assert cluster.servers[0].stats()["faults"]["dropped"] == 2

        run(scenario())

    def test_retry_budget_exhausts_with_operation_timeout(self):
        async def scenario():
            async with LocalCluster(n_servers=2, byte_rate=None) as cluster:
                key = keys_for_server(cluster.client, 0, 1)[0]
                protected = await cluster.new_client(
                    retry_policy=RetryPolicy(
                        op_timeout=0.03, max_attempts=2, backoff_base=0.005
                    )
                )
                cluster.inject(0, Outage(0.0, 60.0))
                with pytest.raises(ServerUnavailableError):
                    await protected.get(key)
                assert protected.stats()["timeouts"] == 2

        run(scenario())

    def test_total_deadline_budget_bounds_wall_clock(self):
        async def scenario():
            async with LocalCluster(n_servers=1, byte_rate=None) as cluster:
                protected = await cluster.new_client(
                    retry_policy=RetryPolicy(
                        op_timeout=0.2,
                        max_attempts=50,
                        backoff_base=0.0,
                        total_deadline=0.15,
                    )
                )
                cluster.inject(0, Outage(0.0, 60.0))
                loop = asyncio.get_running_loop()
                start = loop.time()
                with pytest.raises(ServerUnavailableError):
                    await protected.get("any")
                assert loop.time() - start < 1.0

        run(scenario())


class TestCrashAndReconnect:
    def test_server_killed_mid_multiget_fails_fast_not_hangs(self):
        async def scenario():
            async with LocalCluster(n_servers=2, byte_rate=None) as cluster:
                keys = keys_for_server(cluster.client, 1, 3)
                await cluster.preload({k: b"v" for k in keys})
                protected = await cluster.new_client(
                    retry_policy=RetryPolicy(
                        op_timeout=0.1, max_attempts=2, backoff_base=0.005
                    )
                )
                cluster.inject(1, DelayReplies(delay=0.5))
                fetch = asyncio.create_task(protected.multiget(keys))
                await asyncio.sleep(0.05)  # multiget now in flight
                await cluster.crash(1)
                with pytest.raises((ServerUnavailableError, ConnectionError)):
                    await asyncio.wait_for(fetch, 2.0)

        run(scenario())

    def test_reconnect_after_restart_roundtrips(self):
        async def scenario():
            async with LocalCluster(n_servers=2, byte_rate=None) as cluster:
                key = keys_for_server(cluster.client, 1, 1)[0]
                await cluster.client.put(key, b"durable")
                protected = await cluster.new_client(
                    retry_policy=RetryPolicy(
                        op_timeout=0.1, max_attempts=3, backoff_base=0.01
                    ),
                    breaker_reset_timeout=0.05,
                )
                assert await protected.get(key) == b"durable"
                port_before = cluster.servers[1].port
                await cluster.crash(1)
                with pytest.raises(ServerUnavailableError):
                    await protected.get(key)
                await cluster.restart(1)
                assert cluster.servers[1].port == port_before
                await asyncio.sleep(0.06)  # past the breaker reset window
                # No manual reconnect: the dead connection is replaced.
                assert await protected.get(key) == b"durable"
                assert protected.stats()["reconnects"] >= 1
                assert await protected.multiget([key]) == {key: b"durable"}

        run(scenario())


class TestPartialMultiget:
    def test_partial_returns_surviving_keys_and_report(self):
        async def scenario():
            async with LocalCluster(n_servers=3, byte_rate=None) as cluster:
                items = {f"key:{i:03d}": f"v{i}".encode() for i in range(30)}
                await cluster.preload(items)
                dead = [k for k in items if cluster.client.owner(k) == 0]
                live = [k for k in items if cluster.client.owner(k) != 0]
                assert dead and live
                protected = await cluster.new_client(
                    retry_policy=RetryPolicy(
                        op_timeout=0.05, max_attempts=2, backoff_base=0.005
                    )
                )
                cluster.inject(0, Outage(0.0, 60.0))
                values, report = await protected.multiget(
                    list(items), partial=True
                )
                assert set(values) == set(live)
                assert all(values[k] == items[k] for k in live)
                assert set(report.failed_servers) == {0}
                assert sorted(report.missing_keys) == sorted(dead)
                assert report.requested == len(items)
                assert report.fetched == len(live)
                assert not report.complete
                assert report.retries > 0

        run(scenario())

    def test_partial_complete_when_all_healthy(self):
        async def scenario():
            async with LocalCluster(n_servers=2, byte_rate=None) as cluster:
                await cluster.client.put("a", b"1")
                values, report = await cluster.client.multiget(
                    ["a", "missing"], partial=True
                )
                assert values == {"a": b"1", "missing": None}
                assert report.complete
                assert report.missing_keys == []

        run(scenario())


class TestHedging:
    def test_hedge_wins_over_delayed_primary(self):
        async def scenario():
            async with LocalCluster(n_servers=1, byte_rate=None) as cluster:
                await cluster.client.put("slowkey", b"payload")
                hedger = await cluster.new_client(
                    retry_policy=RetryPolicy(op_timeout=1.0, max_attempts=2),
                    hedge_policy=HedgePolicy(hedge_after=0.03),
                )
                # Only the first reply (the primary's) is delayed; the
                # hedge on the secondary connection sails through.
                cluster.inject(0, DelayReplies(delay=0.4, count=1))
                loop = asyncio.get_running_loop()
                start = loop.time()
                assert await hedger.get("slowkey") == b"payload"
                assert loop.time() - start < 0.35
                stats = hedger.stats()
                assert stats["hedges_sent"] >= 1
                assert stats["hedges_won"] >= 1

        run(scenario())

    def test_hedge_requires_retry_policy(self):
        from repro.runtime.client import RuntimeClient

        with pytest.raises(ValueError):
            RuntimeClient(
                endpoints=[("127.0.0.1", 1)],
                hedge_policy=HedgePolicy(hedge_after=0.1),
            )


class TestGracefulDegradationChaos:
    def test_chaos_crashed_server_partial_service_then_recovery(self):
        """The acceptance scenario: 4 servers, server 0 dark mid-run.

        An unprotected client hangs past a 250 ms deadline; a protected
        client completes every multiget with the live servers' keys and a
        report naming the dead one, then recovers fully — no manual
        reconnection — once the server comes back.
        """

        async def scenario():
            async with LocalCluster(n_servers=4, byte_rate=None) as cluster:
                items = {f"key:{i:03d}": f"value-{i}".encode() for i in range(40)}
                await cluster.preload(items)
                dead = [k for k in items if cluster.client.owner(k) == 0]
                live = [k for k in items if cluster.client.owner(k) != 0]
                assert dead and live
                protected = await cluster.new_client(
                    retry_policy=RetryPolicy(
                        op_timeout=0.05, max_attempts=3, backoff_base=0.005
                    ),
                    breaker_reset_timeout=0.1,
                )

                # Server 0 crashes mid-run (stalls, the worst failure mode:
                # TCP stays up but nothing answers).
                cluster.inject(0, Outage(0.0, 60.0))

                # Unprotected client: hangs past the 250 ms deadline.
                with pytest.raises(asyncio.TimeoutError):
                    await asyncio.wait_for(
                        cluster.client.multiget(list(items)), 0.25
                    )

                # Protected client: every multiget completes with all the
                # live servers' keys and names the dead server.
                for _ in range(3):
                    values, report = await protected.multiget(
                        list(items), partial=True
                    )
                    assert set(values) == set(live)
                    assert all(values[k] == items[k] for k in live)
                    assert set(report.failed_servers) == {0}
                    assert sorted(report.missing_keys) == sorted(dead)
                assert protected.stats()["retries"] > 0

                # Server 0 restarts; the client reconverges on its own.
                cluster.clear_faults(0)
                await asyncio.sleep(0.15)  # let the breaker go half-open
                values, report = await protected.multiget(
                    list(items), partial=True
                )
                assert report.complete
                assert values == items

        run(scenario())

    def test_hard_crash_recovery_with_real_restart(self):
        """Same story with a real process-death: sockets severed, then a
        restart on the same port and automatic client reconnection."""

        async def scenario():
            async with LocalCluster(n_servers=4, byte_rate=None) as cluster:
                items = {f"key:{i:03d}": f"value-{i}".encode() for i in range(40)}
                await cluster.preload(items)
                live = [k for k in items if cluster.client.owner(k) != 0]
                protected = await cluster.new_client(
                    retry_policy=RetryPolicy(
                        op_timeout=0.05, max_attempts=3, backoff_base=0.005
                    ),
                    breaker_reset_timeout=0.1,
                )
                await cluster.crash(0)
                values, report = await protected.multiget(
                    list(items), partial=True
                )
                assert set(values) == set(live)
                assert set(report.failed_servers) == {0}
                await cluster.restart(0)
                await asyncio.sleep(0.15)
                values, report = await protected.multiget(
                    list(items), partial=True
                )
                assert report.complete
                assert values == items
                assert protected.stats()["reconnects"] >= 1

        run(scenario())


class TestObservability:
    def test_server_stats_shape(self):
        async def scenario():
            async with LocalCluster(n_servers=1, byte_rate=None) as cluster:
                await cluster.client.put("k", b"v")
                stats = cluster.servers[0].stats()
                assert stats["ops_served"] == 1
                assert stats["connections_accepted"] == 1
                assert stats["active_connections"] == 1
                assert set(stats["faults"]) == {
                    "dropped",
                    "delayed",
                    "disconnected",
                    "refused_connections",
                }

        run(scenario())

    def test_cluster_stats_combines_servers_and_client(self):
        async def scenario():
            async with LocalCluster(n_servers=2, byte_rate=None) as cluster:
                await cluster.client.put("k", b"v")
                stats = cluster.stats()
                assert set(stats["servers"]) == {0, 1}
                assert "retries" in stats["client"]

        run(scenario())


class TestPreload:
    def test_preload_batches_with_bounded_concurrency(self):
        async def scenario():
            async with LocalCluster(n_servers=2, byte_rate=None) as cluster:
                items = {f"key:{i:03d}": f"v{i}".encode() for i in range(50)}
                await cluster.preload(items, concurrency=8)
                values = await cluster.client.multiget(list(items))
                assert values == items

        run(scenario())

    def test_preload_rejects_bad_concurrency(self):
        async def scenario():
            async with LocalCluster(n_servers=1, byte_rate=None) as cluster:
                with pytest.raises(ValueError):
                    await cluster.preload({"k": b"v"}, concurrency=0)

        run(scenario())
