"""Integration tests: real asyncio servers + client over loopback TCP."""

import asyncio

import pytest

from repro.runtime import LocalCluster
from repro.runtime.client import RuntimeClient
from repro.runtime.server import KVServer


def run(coro):
    return asyncio.run(coro)


class TestSingleServer:
    def test_put_get_roundtrip(self):
        async def scenario():
            server = KVServer(scheduler="fcfs", byte_rate=None)
            await server.start()
            client = RuntimeClient([(server.host, server.port)])
            await client.connect()
            await client.put("greeting", b"hello world")
            value = await client.get("greeting")
            await client.close()
            await server.stop()
            assert value == b"hello world"

        run(scenario())

    def test_missing_key_returns_none(self):
        async def scenario():
            server = KVServer(scheduler="fcfs", byte_rate=None)
            await server.start()
            client = RuntimeClient([(server.host, server.port)])
            await client.connect()
            value = await client.get("ghost")
            await client.close()
            await server.stop()
            assert value is None

        run(scenario())

    def test_overwrite(self):
        async def scenario():
            server = KVServer(scheduler="fcfs", byte_rate=None)
            await server.start()
            client = RuntimeClient([(server.host, server.port)])
            await client.connect()
            await client.put("k", b"v1")
            await client.put("k", b"v2 is longer")
            value = await client.get("k")
            await client.close()
            await server.stop()
            assert value == b"v2 is longer"

        run(scenario())

    def test_binary_values_survive(self):
        async def scenario():
            server = KVServer(scheduler="fcfs", byte_rate=None)
            await server.start()
            client = RuntimeClient([(server.host, server.port)])
            await client.connect()
            payload = bytes(range(256)) * 4
            await client.put("bin", payload)
            value = await client.get("bin")
            await client.close()
            await server.stop()
            assert value == payload

        run(scenario())


class TestCluster:
    def test_multiget_spans_servers(self):
        async def scenario():
            async with LocalCluster(n_servers=4, scheduler="das", byte_rate=None) as cluster:
                items = {f"key:{i:03d}": f"value-{i}".encode() for i in range(40)}
                await cluster.preload(items)
                values = await cluster.client.multiget(list(items))
                assert values == items
                # The keys really spread over multiple servers.
                owners = {cluster.client.owner(k) for k in items}
                assert len(owners) > 1

        run(scenario())

    def test_multiget_mixes_present_and_missing(self):
        async def scenario():
            async with LocalCluster(n_servers=2, scheduler="das", byte_rate=None) as cluster:
                await cluster.client.put("present", b"yes")
                values = await cluster.client.multiget(["present", "absent"])
                assert values == {"present": b"yes", "absent": None}

        run(scenario())

    def test_empty_multiget(self):
        async def scenario():
            async with LocalCluster(n_servers=2, byte_rate=None) as cluster:
                assert await cluster.client.multiget([]) == {}

        run(scenario())

    def test_feedback_populates_estimates(self):
        async def scenario():
            async with LocalCluster(n_servers=3, scheduler="das", byte_rate=None) as cluster:
                await cluster.client.put("a", b"1")
                await cluster.client.get("a")
                assert cluster.client.estimates.feedback_count >= 2

        run(scenario())

    def test_concurrent_multigets(self):
        async def scenario():
            async with LocalCluster(n_servers=3, scheduler="das", byte_rate=None) as cluster:
                items = {f"key:{i:03d}": b"x" * 64 for i in range(30)}
                await cluster.preload(items)
                keys = list(items)

                async def one(i):
                    subset = keys[i % 10 : i % 10 + 5]
                    return await cluster.client.multiget(subset)

                results = await asyncio.gather(*(one(i) for i in range(40)))
                for i, result in enumerate(results):
                    subset = keys[i % 10 : i % 10 + 5]
                    assert all(result[k] == items[k] for k in subset)

        run(scenario())

    @pytest.mark.parametrize("scheduler", ["fcfs", "sbf", "das"])
    def test_all_schedulers_serve_correctly(self, scheduler):
        async def scenario():
            async with LocalCluster(
                n_servers=2, scheduler=scheduler, byte_rate=None
            ) as cluster:
                await cluster.client.put("k", b"v")
                assert await cluster.client.get("k") == b"v"

        run(scenario())

    def test_ops_counted(self):
        async def scenario():
            async with LocalCluster(n_servers=2, byte_rate=None) as cluster:
                await cluster.client.put("a", b"1")
                await cluster.client.get("a")
                assert cluster.total_ops_executed() == 2

        run(scenario())
