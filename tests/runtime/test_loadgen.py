"""Tests for the runtime load generator."""

import asyncio

import pytest

from repro.errors import ConfigError
from repro.runtime import LocalCluster
from repro.runtime.loadgen import LoadGenerator
from repro.workload.arrivals import DeterministicArrivals, PoissonArrivals
from repro.workload.fanout import FixedFanout
from repro.workload.popularity import UniformPopularity


def run(coro):
    return asyncio.run(coro)


async def make_cluster_and_keys(n_servers=2, n_keys=50):
    cluster = LocalCluster(n_servers=n_servers, scheduler="das", byte_rate=None)
    await cluster.start()
    items = {f"key:{i:04d}": b"v" * 64 for i in range(n_keys)}
    await cluster.preload(items)
    return cluster, list(items)


class TestLoadGenerator:
    def test_fires_requested_count(self):
        async def scenario():
            cluster, keys = await make_cluster_and_keys()
            try:
                gen = LoadGenerator(
                    cluster.client, keys,
                    arrivals=DeterministicArrivals(rate=500.0),
                    fanout=FixedFanout(k=3),
                    popularity=UniformPopularity(),
                )
                result = await gen.run(n_requests=40)
                assert result.launched == 40
                assert len(result.latencies) == 40
                assert result.errors == 0
                assert result.summary().mean > 0
                assert result.throughput > 0
            finally:
                await cluster.stop()

        run(scenario())

    def test_duration_bound(self):
        async def scenario():
            cluster, keys = await make_cluster_and_keys()
            try:
                gen = LoadGenerator(
                    cluster.client, keys,
                    arrivals=DeterministicArrivals(rate=200.0),
                    fanout=FixedFanout(k=2),
                    popularity=UniformPopularity(),
                )
                result = await gen.run(duration=0.1)
                # ~200/s for 0.1s: about 20 launches, bounded either side.
                assert 10 <= result.launched <= 25
            finally:
                await cluster.stop()

        run(scenario())

    def test_exactly_one_stopping_rule(self):
        async def scenario():
            cluster, keys = await make_cluster_and_keys()
            try:
                gen = LoadGenerator(
                    cluster.client, keys,
                    arrivals=PoissonArrivals(rate=100.0),
                    fanout=FixedFanout(k=1),
                    popularity=UniformPopularity(),
                )
                with pytest.raises(ConfigError):
                    await gen.run()
                with pytest.raises(ConfigError):
                    await gen.run(n_requests=5, duration=1.0)
            finally:
                await cluster.stop()

        run(scenario())

    def test_validation(self):
        async def scenario():
            cluster, keys = await make_cluster_and_keys(n_keys=2)
            try:
                with pytest.raises(ConfigError, match="fanout"):
                    LoadGenerator(
                        cluster.client, keys,
                        arrivals=PoissonArrivals(rate=10.0),
                        fanout=FixedFanout(k=5),
                        popularity=UniformPopularity(),
                    )
                with pytest.raises(ConfigError, match="empty"):
                    LoadGenerator(
                        cluster.client, [],
                        arrivals=PoissonArrivals(rate=10.0),
                        fanout=FixedFanout(k=1),
                        popularity=UniformPopularity(),
                    )
            finally:
                await cluster.stop()

        run(scenario())

    def test_closed_loop_fires_requested_count(self):
        async def scenario():
            cluster, keys = await make_cluster_and_keys()
            try:
                gen = LoadGenerator(
                    cluster.client, keys,
                    arrivals=PoissonArrivals(rate=1.0),  # ignored in closed mode
                    fanout=FixedFanout(k=2),
                    popularity=UniformPopularity(),
                    mode="closed",
                    closed_concurrency=3,
                )
                result = await gen.run(n_requests=30)
                assert result.launched == 30
                assert len(result.latencies) == 30
                assert result.errors == 0
            finally:
                await cluster.stop()

        run(scenario())

    def test_mode_validation(self):
        async def scenario():
            cluster, keys = await make_cluster_and_keys()
            try:
                with pytest.raises(ConfigError, match="mode"):
                    LoadGenerator(
                        cluster.client, keys,
                        arrivals=PoissonArrivals(rate=10.0),
                        fanout=FixedFanout(k=1),
                        popularity=UniformPopularity(),
                        mode="half-open",
                    )
                with pytest.raises(ConfigError, match="closed_concurrency"):
                    LoadGenerator(
                        cluster.client, keys,
                        arrivals=PoissonArrivals(rate=10.0),
                        fanout=FixedFanout(k=1),
                        popularity=UniformPopularity(),
                        mode="closed",
                        closed_concurrency=0,
                    )
            finally:
                await cluster.stop()

        run(scenario())


    def test_deterministic_given_seed(self):
        async def scenario():
            cluster, keys = await make_cluster_and_keys()
            try:
                def build():
                    return LoadGenerator(
                        cluster.client, keys,
                        arrivals=PoissonArrivals(rate=1000.0),
                        fanout=FixedFanout(k=2),
                        popularity=UniformPopularity(),
                        seed=9,
                    )

                a = build()
                b = build()
                # The samplers replay identically: same fan-outs and keys.
                draws_a = [a._popularity.sample_distinct(2).tolist() for _ in range(5)]
                draws_b = [b._popularity.sample_distinct(2).tolist() for _ in range(5)]
                assert draws_a == draws_b
            finally:
                await cluster.stop()

        run(scenario())


class TestFromSpec:
    def test_builds_from_registry_spec(self):
        async def scenario():
            from repro.workload.registry import workload

            cluster, keys = await make_cluster_and_keys(n_keys=100)
            try:
                spec = workload("closed-loop")
                gen = LoadGenerator.from_spec(cluster.client, keys, spec)
                assert gen.mode == "closed"
                assert gen.closed_concurrency == spec.closed_concurrency
                result = await gen.run(n_requests=16)
                assert len(result.latencies) == 16
            finally:
                await cluster.stop()

        run(scenario())

    def test_trace_spec_rejected(self):
        async def scenario():
            from repro.errors import WorkloadError
            from repro.workload.registry import workload

            cluster, keys = await make_cluster_and_keys()
            try:
                with pytest.raises(WorkloadError, match="simulator only"):
                    LoadGenerator.from_spec(
                        cluster.client, keys, workload("trace-sample")
                    )
            finally:
                await cluster.stop()

        run(scenario())
