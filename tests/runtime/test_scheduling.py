"""Tests for the scheduled asyncio executor."""

import asyncio

import pytest

from repro.runtime.scheduling import (
    ExecutorStoppedError,
    QueuedOp,
    ScheduledExecutor,
)


def run(coro):
    return asyncio.run(coro)


def make_queued_op(key="k", demand=0.0, tag=None, result="ok"):
    op = QueuedOp(key=key, demand=demand, tag=dict(tag or {}))
    op.work = lambda: result
    return op


class TestExecutor:
    def test_executes_submitted_op(self):
        async def scenario():
            executor = ScheduledExecutor(policy_name="fcfs", byte_rate=None)
            await executor.start()
            result = await executor.submit(make_queued_op(result=42))
            await executor.stop()
            assert result == 42
            assert executor.ops_executed == 1

        run(scenario())

    def test_fcfs_order(self):
        async def scenario():
            executor = ScheduledExecutor(policy_name="fcfs", byte_rate=None)
            order = []
            ops = []
            for i in range(5):
                op = QueuedOp(key=f"k{i}", demand=0.0)
                op.work = lambda i=i: order.append(i)
                ops.append(op)
            futures = [executor.submit(op) for op in ops]
            await executor.start()
            await asyncio.gather(*futures)
            await executor.stop()
            assert order == [0, 1, 2, 3, 4]

        run(scenario())

    def test_priority_order_with_sjf(self):
        async def scenario():
            # Submit before starting so the whole batch is queued, then the
            # scheduler picks smallest demand first.
            executor = ScheduledExecutor(policy_name="sjf-op", byte_rate=None)
            order = []
            futures = []
            for demand in (3.0, 1.0, 2.0):
                op = QueuedOp(key="k", demand=0.0, tag={})
                op.demand = 0.0  # no sleep
                op.tag["demand_label"] = demand
                op.work = lambda d=demand: order.append(d)
                # sjf-op keys on op.demand; emulate demand without sleeping
                # by setting demand then disabling the throttle.
                op.demand = demand
                futures.append(executor.submit(op))
            await executor.start()
            await asyncio.gather(*futures)
            await executor.stop()
            assert order == [1.0, 2.0, 3.0]

        run(scenario())

    def test_das_tags_respected(self):
        async def scenario():
            executor = ScheduledExecutor(
                policy_name="das", policy_params={"last_band": False},
                byte_rate=None,
            )
            order = []
            futures = []
            for rpt in (5.0, 1.0, 3.0):
                op = QueuedOp(key="k", demand=0.0, tag={"rpt": rpt})
                op.work = lambda r=rpt: order.append(r)
                futures.append(executor.submit(op))
            await executor.start()
            await asyncio.gather(*futures)
            await executor.stop()
            assert order == [1.0, 3.0, 5.0]

        run(scenario())

    def test_work_exception_propagates_to_future(self):
        async def scenario():
            executor = ScheduledExecutor(policy_name="fcfs", byte_rate=None)
            await executor.start()
            op = QueuedOp(key="k", demand=0.0)

            def boom():
                raise ValueError("work failed")

            op.work = boom
            with pytest.raises(ValueError, match="work failed"):
                await executor.submit(op)
            # The executor keeps serving after a failure.
            assert await executor.submit(make_queued_op(result="still alive")) == (
                "still alive"
            )
            await executor.stop()

        run(scenario())

    def test_throttle_sleeps_for_demand(self):
        async def scenario():
            executor = ScheduledExecutor(policy_name="fcfs", byte_rate=1.0)
            await executor.start()
            loop = asyncio.get_running_loop()
            t0 = loop.time()
            await executor.submit(make_queued_op(demand=0.05))
            elapsed = loop.time() - t0
            await executor.stop()
            assert elapsed >= 0.04

        run(scenario())

    def test_feedback_shape(self):
        async def scenario():
            executor = ScheduledExecutor(policy_name="fcfs", byte_rate=None)
            feedback = executor.feedback()
            assert set(feedback) == {"queued_work", "queue_length", "rate_sample"}
            assert feedback["queue_length"] == 0

        run(scenario())

    def test_double_start_rejected(self):
        async def scenario():
            executor = ScheduledExecutor(policy_name="fcfs", byte_rate=None)
            await executor.start()
            with pytest.raises(RuntimeError):
                await executor.start()
            await executor.stop()

        run(scenario())

    def test_stop_drains_queue(self):
        async def scenario():
            executor = ScheduledExecutor(policy_name="fcfs", byte_rate=None)
            futures = [executor.submit(make_queued_op(result=i)) for i in range(5)]
            await executor.start()
            await executor.stop()
            results = [f.result() for f in futures]
            assert results == [0, 1, 2, 3, 4]

        run(scenario())


class TestLifecycleRejection:
    """submit() after stop/abort must fail fast, never hang the awaiter."""

    def test_submit_after_stop_raises(self):
        async def scenario():
            executor = ScheduledExecutor(policy_name="fcfs", byte_rate=None)
            await executor.start()
            await executor.stop()
            with pytest.raises(ExecutorStoppedError):
                executor.submit(make_queued_op())
            assert executor.registry.value(
                "executor_rejected_total", server="0"
            ) == 1.0

        run(scenario())

    def test_submit_after_abort_raises(self):
        async def scenario():
            executor = ScheduledExecutor(policy_name="fcfs", byte_rate=None)
            await executor.start()
            await executor.abort()
            with pytest.raises(ExecutorStoppedError):
                executor.submit(make_queued_op())

        run(scenario())

    def test_submit_before_start_still_allowed(self):
        async def scenario():
            executor = ScheduledExecutor(policy_name="fcfs", byte_rate=None)
            future = executor.submit(make_queued_op(result="queued early"))
            await executor.start()
            assert await future == "queued early"
            await executor.stop()

        run(scenario())


class TestFailurePath:
    def test_failed_op_still_completes_queue_bookkeeping(self):
        async def scenario():
            executor = ScheduledExecutor(policy_name="fcfs", byte_rate=None)
            completed = []
            original = executor.queue.on_service_complete
            executor.queue.on_service_complete = (
                lambda op, now: (completed.append(op), original(op, now))
            )
            await executor.start()
            bad = QueuedOp(key="k", demand=0.0)

            def boom():
                raise ValueError("work failed")

            bad.work = boom
            with pytest.raises(ValueError):
                await executor.submit(bad)
            good = make_queued_op()
            await executor.submit(good)
            await executor.stop()
            # The completion hook ran for the failure too — adaptive
            # queue state must not drift when work raises.
            assert completed == [bad, good]
            assert bad.finish_time >= bad.start_time

        run(scenario())

    def test_failures_counted_separately_from_successes(self):
        async def scenario():
            executor = ScheduledExecutor(policy_name="fcfs", byte_rate=None)
            await executor.start()
            bad = QueuedOp(key="k", demand=0.0)
            bad.work = lambda: (_ for _ in ()).throw(RuntimeError("nope"))
            with pytest.raises(RuntimeError):
                await executor.submit(bad)
            await executor.submit(make_queued_op())
            await executor.stop()
            assert executor.ops_executed == 1
            assert executor.ops_failed == 1
            hist = executor.registry.get("executor_service_seconds", server="0")
            assert hist.count == 2  # failures are observed too

        run(scenario())
