"""Property tests for Dodoor-style selection and control-plane accounting.

The two properties the X5 family rests on: a cache fed by fresh reports
routes to the least-loaded sample, and a cache that has expired (or was
never filled) degrades to *uniform random* — never a crash, never a pin
on one server.  Expiry itself must be deterministic under the simulated
clock: the staleness check compares plain floats, so the same feedback
timeline always expires at the same instant.
"""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.kvstore.items import Feedback
from repro.selection import (
    CONTROL_MESSAGE_KINDS,
    DodoorPolicy,
    create_selection_policy,
    selection_policy_needs,
)

CANDIDATES = (3, 7, 11, 15)


def feedback(server_id, queued_work=0.0, t=0.0):
    return Feedback(
        server_id=server_id,
        queued_work=queued_work,
        queue_length=int(queued_work * 10),
        rate_sample=1.0,
        timestamp=t,
    )


def fresh_policy(seed=0, **kwargs):
    return DodoorPolicy(np.random.default_rng(seed), **kwargs)


class TestConstruction:
    def test_registry_declares_needs(self):
        needs = selection_policy_needs("dodoor")
        assert needs.rng
        assert needs.load_reports

    def test_registry_builds_policy(self):
        policy = create_selection_policy(
            "dodoor", rng=np.random.default_rng(0), d=3, max_staleness=0.1
        )
        assert policy.name == "dodoor"
        assert policy.d == 3
        assert policy.max_staleness == 0.1

    def test_invalid_params(self):
        with pytest.raises(ConfigError, match="rng"):
            DodoorPolicy(None)
        with pytest.raises(ConfigError, match="d >= 2"):
            fresh_policy(d=1)
        with pytest.raises(ConfigError, match="max_staleness"):
            fresh_policy(max_staleness=0.0)


class TestFreshCache:
    def test_picks_least_loaded_of_sample(self):
        policy = fresh_policy(d=len(CANDIDATES))  # sample = all candidates
        for sid, load in zip(CANDIDATES, (0.5, 0.1, 0.9, 0.7)):
            policy.observe_feedback(feedback(sid, queued_work=load), now=0.0)
        assert policy.select("k", CANDIDATES, 1e-3) == 7

    def test_stale_entries_are_skipped(self):
        policy = fresh_policy(d=len(CANDIDATES), max_staleness=0.01)
        policy.observe_feedback(feedback(3, queued_work=0.0), now=0.0)
        policy.observe_feedback(feedback(7, queued_work=5.0), now=1.0)
        # Server 3's report has long expired; only 7 is fresh.
        assert policy.select("k", CANDIDATES, 1.005) == 7

    def test_inflight_nudge_breaks_reported_ties(self):
        policy = fresh_policy(d=len(CANDIDATES))
        for sid in CANDIDATES:
            policy.observe_feedback(feedback(sid, queued_work=1.0), now=0.0)
        policy.on_dispatch(3, 0.0)
        policy.on_dispatch(7, 0.0)
        # All reported loads equal: the pick avoids the servers this
        # client already has requests in flight on.
        assert policy.select("k", CANDIDATES, 1e-3) in (11, 15)


class TestExpiry:
    def test_expiry_boundary_is_deterministic(self):
        policy = fresh_policy(max_staleness=0.02)
        policy.observe_feedback(feedback(3, queued_work=1.0), now=0.0)
        # Exactly at the bound the entry is still valid (> comparison).
        assert policy.cached_load(3, 0.02) == 1.0
        assert policy.cached_load(3, 0.020000001) is None
        assert policy.expired_lookups == 1

    def test_same_timeline_same_expiry(self):
        def run():
            policy = fresh_policy(seed=5, max_staleness=0.01)
            picks = []
            for step in range(50):
                now = step * 1e-3
                if step % 7 == 0:
                    policy.observe_feedback(
                        feedback(CANDIDATES[step % 4], queued_work=0.1), now=now
                    )
                picks.append(policy.select("k", CANDIDATES, now))
            return picks, policy.expired_lookups, policy.blind_decisions

        assert run() == run()


class TestBlindDegradation:
    def test_empty_cache_never_crashes(self):
        policy = fresh_policy()
        for i in range(100):
            assert policy.select(f"k{i}", CANDIDATES, 0.0) in CANDIDATES
        assert policy.blind_decisions == 100

    def test_empty_cache_is_uniform_random(self):
        policy = fresh_policy(seed=1)
        n = 4000
        counts = {sid: 0 for sid in CANDIDATES}
        for i in range(n):
            counts[policy.select(f"k{i}", CANDIDATES, 0.0)] += 1
        expected = n / len(CANDIDATES)
        for sid, count in counts.items():
            assert abs(count - expected) < 0.15 * expected, (
                f"server {sid} picked {count} times, expected ~{expected:.0f}"
            )

    def test_expired_cache_never_pins_one_server(self):
        policy = fresh_policy(seed=2, max_staleness=0.01)
        for sid in CANDIDATES:
            policy.observe_feedback(feedback(sid, queued_work=0.1), now=0.0)
        counts = {sid: 0 for sid in CANDIDATES}
        n = 2000
        for i in range(n):  # all entries long expired at now=10
            counts[policy.select(f"k{i}", CANDIDATES, 10.0)] += 1
        assert policy.blind_decisions == n
        assert max(counts.values()) < 0.4 * n, f"pinned: {counts}"
        assert all(count > 0 for count in counts.values())


class TestControlPlaneAccounting:
    def test_kinds_and_totals(self):
        policy = fresh_policy()
        policy.record_control_message("report", payload_bytes=40)
        policy.record_control_message("report", payload_bytes=40)
        policy.record_control_message("probe", payload_bytes=8)
        policy.record_control_message("feedback", messages=0, payload_bytes=40)
        assert policy.control_messages == {"probe": 1, "report": 2, "feedback": 0}
        assert policy.control_bytes == {"probe": 8, "report": 80, "feedback": 40}
        assert policy.control_messages_total() == 3

    def test_unknown_kind_raises(self):
        policy = fresh_policy()
        with pytest.raises(ValueError, match="unknown control message kind"):
            policy.record_control_message("gossip")

    def test_stats_surface(self):
        policy = fresh_policy()
        policy.observe_feedback(feedback(3), now=0.0)
        policy.select("k", CANDIDATES, 0.0)
        policy.record_control_message("report", payload_bytes=40)
        stats = policy.stats()
        control = stats["control_plane"]
        assert set(control["messages_sent"]) == set(CONTROL_MESSAGE_KINDS)
        assert control["messages_total"] == 1
        assert control["messages_per_decision"] == 1.0
        assert stats["cache_size"] == 1
        assert stats["reports_cached"] == 1

    def test_messages_per_decision_zero_decisions(self):
        policy = fresh_policy()
        assert policy.stats()["control_plane"]["messages_per_decision"] == 0.0


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a, b = fresh_policy(seed=9), fresh_policy(seed=9)
        for policy in (a, b):
            for sid in CANDIDATES[:2]:
                policy.observe_feedback(feedback(sid, queued_work=0.2), now=0.0)
        seq_a = [a.select(f"k{i}", CANDIDATES, 1e-3) for i in range(50)]
        seq_b = [b.select(f"k{i}", CANDIDATES, 1e-3) for i in range(50)]
        assert seq_a == seq_b
