"""Property tests for the replica-selection policies.

These are the conformance tests the CI ``smoke (selection)`` matrix
entry runs: distributional properties of the blind policies, the never-pick-
the-worst guarantee of power-of-d, staleness handling in Tars and the
Prequal probe pool, and the bookkeeping shared through the base class.
"""

import math

import numpy as np
import pytest

from repro.core.estimator import ServerEstimates
from repro.errors import ConfigError
from repro.kvstore.items import Feedback
from repro.selection import (
    C3Policy,
    PowerOfDPolicy,
    PrequalPolicy,
    PrimaryPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    SELECTION_POLICY_NAMES,
    TarsPolicy,
    create_selection_policy,
    selection_policy_needs,
)

CANDIDATES = (3, 7, 11)


def feedback(server_id, queued_work=0.0, queue_length=0, rate=1.0, t=0.0):
    return Feedback(
        server_id=server_id,
        queued_work=queued_work,
        queue_length=queue_length,
        rate_sample=rate,
        timestamp=t,
    )


def estimates_with(loads, t=0.0, **kwargs):
    """ServerEstimates primed with one feedback per ``{sid: queued_work}``."""
    est = ServerEstimates(**kwargs)
    for sid, work in loads.items():
        est.observe(feedback(sid, queued_work=work, queue_length=int(work * 10), t=t))
    return est


class TestRegistry:
    def test_all_names_constructible(self):
        rng = np.random.default_rng(0)
        est = ServerEstimates()
        for name in SELECTION_POLICY_NAMES:
            policy = create_selection_policy(name, rng=rng, estimates=est)
            assert policy.name == name

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigError, match="unknown selection policy"):
            selection_policy_needs("nearest")
        with pytest.raises(ConfigError, match="unknown selection policy"):
            create_selection_policy("nearest")

    def test_missing_rng_raises(self):
        with pytest.raises(ConfigError, match="rng"):
            create_selection_policy("random")
        with pytest.raises(ConfigError, match="rng"):
            create_selection_policy("power_of_d")

    def test_missing_estimates_raises(self):
        for name in ("least_estimated_work", "c3", "tars"):
            with pytest.raises(ConfigError):
                create_selection_policy(name, rng=np.random.default_rng(0))

    def test_legacy_work_estimate_callback(self):
        loads = {3: 0.5, 7: 0.0, 11: 0.9}
        policy = create_selection_policy(
            "least_estimated_work", work_estimate=lambda sid: loads[sid]
        )
        assert policy.select("k", CANDIDATES, now=0.0) == 7

    def test_params_forwarded(self):
        policy = create_selection_policy(
            "power_of_d", rng=np.random.default_rng(0), d=3
        )
        assert policy.d == 3
        policy = create_selection_policy("prequal", pool_size=4, max_age=0.5)
        assert policy.pool_size == 4


class TestBaseBookkeeping:
    def test_single_candidate_short_circuit(self):
        policy = PrimaryPolicy()
        assert policy.select("k", (9,), now=0.0) == 9
        assert policy.decisions == 1
        assert policy.picks == {9: 1}

    def test_inflight_accounting(self):
        policy = PrimaryPolicy()
        policy.on_dispatch(4)
        policy.on_dispatch(4)
        policy.on_dispatch(5)
        assert policy.inflight_of(4) == 2
        policy.on_response(4, latency=0.001)
        assert policy.inflight_of(4) == 1
        # Never goes negative even on spurious responses.
        policy.on_response(6)
        assert policy.inflight_of(6) == 0

    def test_stats_shape(self):
        policy = RoundRobinPolicy()
        for _ in range(4):
            policy.select("k", CANDIDATES, now=0.0)
        stats = policy.stats()
        assert stats["policy"] == "round_robin"
        assert stats["decisions"] == 4
        assert sum(stats["picks"].values()) == 4


class TestBlindPolicies:
    def test_primary_always_first(self):
        policy = PrimaryPolicy()
        for _ in range(10):
            assert policy.select("k", CANDIDATES, now=0.0) == CANDIDATES[0]

    def test_random_uniformity(self):
        """Each replica gets ~1/3 of picks: bounded chi-square over 6000."""
        policy = RandomPolicy(np.random.default_rng(1234))
        n = 6000
        for i in range(n):
            policy.select(f"k{i % 50}", CANDIDATES, now=0.0)
        expected = n / len(CANDIDATES)
        chi2 = sum(
            (policy.picks.get(sid, 0) - expected) ** 2 / expected
            for sid in CANDIDATES
        )
        # 99.9th percentile of chi-square with 2 dof is ~13.8.
        assert chi2 < 13.8, f"picks suspiciously non-uniform: {policy.picks}"

    def test_random_covers_all_candidates(self):
        policy = RandomPolicy(np.random.default_rng(7))
        for _ in range(200):
            policy.select("k", CANDIDATES, now=0.0)
        assert set(policy.picks) == set(CANDIDATES)

    def test_round_robin_rotates_per_key(self):
        policy = RoundRobinPolicy()
        seq = [policy.select("a", CANDIDATES, now=0.0) for _ in range(6)]
        assert seq == [3, 7, 11, 3, 7, 11]
        # A different key starts its own rotation from the beginning.
        assert policy.select("b", CANDIDATES, now=0.0) == 3

    def test_round_robin_exact_balance(self):
        policy = RoundRobinPolicy()
        for _ in range(30):
            policy.select("k", CANDIDATES, now=0.0)
        assert all(policy.picks[sid] == 10 for sid in CANDIDATES)


class TestPowerOfD:
    def test_never_picks_strictly_worst(self):
        """With d >= 2 the strictly-worst replica is never chosen."""
        est = estimates_with({3: 0.1, 7: 0.2, 11: 5.0}, **{"drain": False})
        policy = PowerOfDPolicy(np.random.default_rng(5), estimates=est)
        for _ in range(500):
            assert policy.select("k", CANDIDATES, now=0.0) != 11

    def test_sampling_decorrelates(self):
        """Both non-worst replicas are picked (it is not argmin-everything)."""
        est = estimates_with({3: 0.1, 7: 0.2, 11: 5.0}, **{"drain": False})
        policy = PowerOfDPolicy(np.random.default_rng(5), estimates=est)
        for _ in range(500):
            policy.select("k", CANDIDATES, now=0.0)
        assert policy.picks.get(3, 0) > 0
        assert policy.picks.get(7, 0) > 0

    def test_falls_back_to_inflight_without_estimates(self):
        policy = PowerOfDPolicy(np.random.default_rng(5), d=3)
        policy.on_dispatch(3)
        policy.on_dispatch(3)
        policy.on_dispatch(7)
        # d == n: all sampled, least inflight (11, with zero) wins.
        assert policy.select("k", CANDIDATES, now=0.0) == 11

    def test_d_must_be_at_least_two(self):
        with pytest.raises(ConfigError, match="d >= 2"):
            PowerOfDPolicy(np.random.default_rng(0), d=1)


class TestScoredPolicies:
    def test_c3_prefers_short_queue(self):
        est = estimates_with({3: 2.0, 7: 0.01, 11: 2.0}, **{"drain": False})
        policy = C3Policy(est)
        assert policy.select("k", CANDIDATES, now=0.0) == 7

    def test_c3_cubic_penalty_beats_latency(self):
        """A long queue repels even when the short-queue server is slower."""
        est = ServerEstimates(drain=False)
        est.observe(feedback(3, queued_work=5.0, queue_length=50, rate=1.0))
        est.observe(feedback(7, queued_work=0.01, queue_length=1, rate=0.5))
        policy = C3Policy(est)
        policy.on_response(7, latency=0.004)  # slower observed latency...
        policy.on_response(3, latency=0.001)
        assert policy.select("k", (3, 7), now=0.0) == 7

    def test_tars_discounts_stale_observations(self):
        """A stale 'busy' reading decays toward the mean; a fresh one wins."""
        est = ServerEstimates(drain=False)
        est.observe(feedback(3, queued_work=1.0, t=0.0))   # stale busy
        est.observe(feedback(7, queued_work=0.6, t=10.0))  # fresh medium
        policy = TarsPolicy(est, tau=0.05)
        # At t=10, server 3's reading is 10s old: freshness ~ exp(-200) -> 0,
        # so its score collapses to the candidate mean (0.8) while 7 keeps
        # its fresh 0.6 -> 7 wins despite 3's *drainless* estimate being 1.0.
        assert policy.select("k", (3, 7), now=10.0) == 7
        # Flip: make 3's reading fresh and light -> 3 wins.
        est.observe(feedback(3, queued_work=0.1, t=10.0))
        assert policy.select("k", (3, 7), now=10.0) == 3

    def test_tars_rate_division_penalizes_slow_servers(self):
        est = ServerEstimates(drain=False)
        est.observe(feedback(3, queued_work=0.0, rate=0.2, t=0.0))
        est.observe(feedback(7, queued_work=0.0, rate=1.0, t=0.0))
        policy = TarsPolicy(est)
        assert policy.select("k", (3, 7), now=0.0) == 7

    def test_tars_unheard_servers_use_population_mean(self):
        est = ServerEstimates(drain=False)
        est.observe(feedback(3, queued_work=2.0, t=0.0))
        policy = TarsPolicy(est)
        # 7 was never heard from: freshness 0 -> mean wait; 3's fresh busy
        # reading is above the mean, so the unknown server is preferred.
        assert policy.select("k", (3, 7), now=0.0) == 7


class TestPrequal:
    def test_probe_pool_staleness_expiry(self):
        policy = PrequalPolicy(pool_size=8, max_age=1.0)
        policy.add_probe(3, rif=1, latency=0.001, now=0.0)
        policy.add_probe(7, rif=2, latency=0.002, now=0.1)
        assert len(policy.pool) == 2
        # Selection at t=1.5 expires both (older than max_age=1.0).
        policy.select("k", CANDIDATES, now=1.5)
        assert len(policy.pool) == 0
        assert policy.probes_expired == 2

    def test_pool_bounded_oldest_evicted(self):
        policy = PrequalPolicy(pool_size=3)
        for i in range(5):
            policy.add_probe(i, rif=i, latency=0.0, now=float(i))
        assert len(policy.pool) == 3
        assert [p.server_id for p in policy.pool] == [2, 3, 4]

    def test_cold_pick_lowest_latency(self):
        policy = PrequalPolicy(hot_quantile=0.5)
        policy.add_probe(3, rif=1, latency=0.005, now=0.0)
        policy.add_probe(7, rif=2, latency=0.001, now=0.0)
        policy.add_probe(11, rif=50, latency=0.0001, now=0.0)
        # The pool's median RIF is 2: server 11 sits far above it -> hot,
        # so its tiny latency does not matter; among the cold, 7 wins on
        # latency.
        assert policy.select("k", CANDIDATES, now=0.0) == 7

    def test_all_hot_picks_lowest_rif(self):
        policy = PrequalPolicy(hot_quantile=0.25)
        policy.add_probe(3, rif=40, latency=0.001, now=0.0)
        policy.add_probe(7, rif=30, latency=0.009, now=0.0)
        policy.add_probe(11, rif=50, latency=0.0001, now=0.0)
        # Quantile threshold is the pool's low RIF (30): 3 and 11 exceed it,
        # 7 sits exactly at the threshold and stays cold -> still 7, but by
        # the cold rule.  Push the threshold below everything instead:
        policy2 = PrequalPolicy(hot_quantile=0.01)
        policy2.add_probe(3, rif=40, latency=0.001, now=0.0)
        policy2.add_probe(7, rif=30, latency=0.009, now=0.0)
        policy2.add_probe(11, rif=50, latency=0.0001, now=0.0)
        policy2.add_probe(5, rif=1, latency=0.5, now=0.0)  # lowers threshold
        # Candidates 3/7/11 are all above rif=1 -> all hot -> lowest RIF (7).
        assert policy2.select("k", CANDIDATES, now=0.0) == 7

    def test_feedback_funnel_feeds_pool(self):
        policy = PrequalPolicy()
        policy.observe_feedback(
            feedback(3, queued_work=0.2, queue_length=4), now=1.0
        )
        assert policy.probes_added == 1
        probe = policy.pool[0]
        assert (probe.server_id, probe.rif, probe.latency) == (3, 4.0, 0.2)

    def test_unprobed_candidates_explored(self):
        """A server with no probe is cold with zero charge: exploration."""
        policy = PrequalPolicy()
        policy.add_probe(3, rif=5, latency=0.004, now=0.0)
        policy.add_probe(7, rif=5, latency=0.004, now=0.0)
        assert policy.select("k", CANDIDATES, now=0.0) == 11

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            PrequalPolicy(pool_size=0)
        with pytest.raises(ConfigError):
            PrequalPolicy(max_age=0.0)
        with pytest.raises(ConfigError):
            PrequalPolicy(hot_quantile=1.5)


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        """Policies never read a clock: same inputs -> same picks."""
        def run(seed):
            rng = np.random.default_rng(seed)
            policy = PowerOfDPolicy(rng, estimates=estimates_with({3: 0.3, 7: 0.1, 11: 0.7}))
            return [policy.select(f"k{i}", CANDIDATES, now=i * 0.01) for i in range(100)]

        assert run(99) == run(99)
        assert run(99) != run(100)  # and the rng actually matters

    def test_tie_breaks_are_lowest_server_id(self):
        est = ServerEstimates(drain=False)  # all zeros -> full tie
        for policy in (
            TarsPolicy(est),
            C3Policy(est),
            create_selection_policy("least_estimated_work", estimates=est),
        ):
            assert policy.select("k", (11, 7, 3), now=0.0) == 3

    def test_freshness_is_exponential(self):
        est = ServerEstimates(drain=False)
        est.observe(feedback(3, queued_work=1.0, t=0.0))
        policy = TarsPolicy(est, tau=0.5)
        assert policy._freshness(3, now=0.5) == pytest.approx(math.exp(-1.0))
        assert policy._freshness(99, now=0.5) == 0.0
