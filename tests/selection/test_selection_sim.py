"""Selection policies driven through the simulator, including determinism.

The X3 acceptance property — estimate/probe-driven policies beat the
load-oblivious ones on a degraded fleet — is asserted at full scale by
``benchmarks/bench_x3_selection.py``; here we assert the wiring:
policies receive the signals they declare, selection stats surface
through the cluster, and the parallel experiment engine reproduces the
sequential cells bit-for-bit for every policy (cells_identical).
"""

import dataclasses

from repro.experiments.parallel import run_scenario_parallel
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import get_scenario
from repro.kvstore.cluster import Cluster
from repro.kvstore.config import SimulationConfig

from tests.conftest import small_config


def run_small(selection, n_servers=4, rf=3, requests=400, **overrides):
    config = small_config(
        scheduler="das",
        n_servers=n_servers,
        replication_factor=rf,
        replica_selection=selection,
        **overrides,
    )
    cluster = Cluster(config)
    result = cluster.run(SimulationConfig(max_requests=requests))
    return cluster, result


class TestSimWiring:
    def test_every_policy_completes_all_requests(self):
        for selection in (
            "primary", "random", "round_robin", "least_estimated_work",
            "power_of_d", "c3", "tars", "prequal",
        ):
            _, result = run_small(selection, requests=200)
            assert result.requests_completed == result.requests_sent

    def test_selection_stats_surface(self):
        cluster, _ = run_small("tars")
        stats = cluster.selection_stats()
        assert set(stats) == {0, 1}  # one entry per client
        for per_client in stats.values():
            assert per_client["policy"] == "tars"
            assert per_client["decisions"] > 0

    def test_prequal_pool_fed_by_piggyback_feedback(self):
        cluster, _ = run_small("prequal")
        for client in cluster.clients:
            assert client.placement.policy.probes_added > 0

    def test_non_primary_spreads_reads(self):
        cluster, _ = run_small("round_robin")
        picks = cluster.clients[0].placement.policy.picks
        assert len(picks) > 1

    def test_primary_policy_tracks_nothing(self):
        cluster, _ = run_small("primary")
        placement = cluster.clients[0].placement
        assert not placement.wants_inflight
        assert not placement.wants_feedback
        assert placement.policy.inflight == {}


class TestX5SimWiring:
    def test_dodoor_reports_counted_not_probes(self):
        cluster, result = run_small("dodoor", load_report_interval=1e-3)
        assert result.requests_completed == result.requests_sent
        for per_client in cluster.selection_stats().values():
            control = per_client["control_plane"]
            assert control["messages_sent"]["report"] > 0
            assert control["messages_sent"]["probe"] == 0
            assert per_client["reports_cached"] > 0

    def test_dodoor_defaults_reporter_from_policy_needs(self):
        # No explicit load_report_interval: the cluster must still start
        # the periodic broadcaster because the policy declares
        # wants_load_reports.
        cluster, _ = run_small("dodoor")
        for per_client in cluster.selection_stats().values():
            assert per_client["control_plane"]["messages_sent"]["report"] > 0

    def test_prequal_probe_roundtrips_counted(self):
        cluster, _ = run_small("prequal", probes_per_request=2)
        for per_client in cluster.selection_stats().values():
            control = per_client["control_plane"]
            probes = control["messages_sent"]["probe"]
            assert probes > 0
            assert probes % 2 == 0  # each probe is a two-message round trip
            assert control["messages_sent"]["report"] == 0

    def test_piggyback_feedback_costs_bytes_not_messages(self):
        cluster, _ = run_small("tars")
        for per_client in cluster.selection_stats().values():
            control = per_client["control_plane"]
            assert control["messages_sent"]["feedback"] == 0
            assert control["bytes_sent"]["feedback"] > 0

    def test_tenants_partition_client_keyspaces(self):
        from repro.workload.popularity import PartitionedPopularity

        cluster, result = run_small("random", tenants=2)
        assert result.requests_completed == result.requests_sent
        for cid, client in enumerate(cluster.clients):
            popularity = client.factory.spec.popularity
            assert isinstance(popularity, PartitionedPopularity)
            assert popularity.tenant == cid % 2
            assert popularity.tenants == 2


class TestX5Determinism:
    def test_parallel_matches_sequential_on_x5_cells(self, monkeypatch):
        """X5 cells must satisfy cells_identical under the array engine.

        Trimmed to the smallest fleet's report-fed and probe-fed cells so
        the test stays fast; the full grid runs through the same gate in
        ``benchmarks/bench_x5_scaleout.py``.
        """
        monkeypatch.setenv("REPRO_ENGINE", "array")
        scenario = get_scenario("X5", scale=0.02)
        keep = [
            p for p in scenario.points
            if p.x in ("128s/dodoor", "128s/prequal")
        ]
        assert len(keep) == 2
        trimmed = dataclasses.replace(scenario, points=tuple(keep))
        sequential = run_scenario(trimmed)
        parallel = run_scenario_parallel(trimmed, workers=2)
        assert set(parallel.cells) == set(sequential.cells)
        for key, seq_cell in sequential.cells.items():
            par_cell = parallel.cells[key]
            assert par_cell.summary == seq_cell.summary
            assert par_cell.requests == seq_cell.requests


class TestX3Determinism:
    def test_parallel_matches_sequential_on_x3_cells(self):
        """cells_identical must hold for the selection scenario too.

        Trimmed to two policies (one rng-driven, one probe-driven — the
        hardest cases for determinism) at smoke scale so the test stays
        fast; the engine uses the same worker pool machinery at any
        ``--workers`` count.
        """
        scenario = get_scenario("X3", scale=0.02)
        keep = [p for p in scenario.points if p.x in ("power_of_d", "prequal")]
        assert len(keep) == 2
        trimmed = dataclasses.replace(scenario, points=tuple(keep))
        sequential = run_scenario(trimmed)
        parallel = run_scenario_parallel(trimmed, workers=2)
        assert set(parallel.cells) == set(sequential.cells)
        for key, seq_cell in sequential.cells.items():
            par_cell = parallel.cells[key]
            assert par_cell.summary == seq_cell.summary
            assert par_cell.requests == seq_cell.requests
