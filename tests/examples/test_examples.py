"""Smoke tests: every shipped example runs to completion.

Examples are the first thing a new user executes; a broken one is a
release blocker.  Each runs in a subprocess exactly as a user would run
it.  These are the slowest tests in the suite (~2 minutes total).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def run_example(name: str, timeout: float = 240.0) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamplesInventory:
    def test_at_least_five_examples_ship(self):
        assert len(ALL_EXAMPLES) >= 5
        assert "quickstart.py" in ALL_EXAMPLES


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_runs_clean(name):
    result = run_example(name)
    assert result.returncode == 0, (
        f"{name} failed:\nstdout:\n{result.stdout}\nstderr:\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{name} printed nothing"


class TestExampleOutputs:
    """Spot-check that the headline numbers appear in the output."""

    def test_quickstart_reports_all_schedulers(self):
        result = run_example("quickstart.py")
        for scheduler in ("fcfs", "sbf", "das"):
            assert scheduler in result.stdout
        assert "vs FCFS" in result.stdout

    def test_fault_tolerance_shows_retry_effect(self):
        result = run_example("fault_tolerance.py")
        assert "retries 0" in result.stdout  # unprotected rows
        assert "protected" in result.stdout
