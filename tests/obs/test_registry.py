"""Unit tests for the counter/gauge/histogram registry."""

import math

import pytest

from repro.errors import ConfigError
from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc_accumulates(self):
        c = Counter("ops_total")
        c.inc()
        c.inc(2.5)
        assert c.get() == pytest.approx(3.5)

    def test_negative_increment_rejected(self):
        c = Counter("ops_total")
        with pytest.raises(ConfigError):
            c.inc(-1)


class TestGauge:
    def test_set_and_inc(self):
        g = Gauge("depth")
        g.set(5)
        g.inc(2)
        assert g.get() == pytest.approx(7.0)

    def test_callback_gauge_reads_live_value(self):
        box = {"v": 1}
        g = Gauge("depth", fn=lambda: box["v"])
        assert g.get() == 1.0
        box["v"] = 9
        assert g.get() == 9.0

    def test_callback_gauge_rejects_set(self):
        g = Gauge("depth", fn=lambda: 0)
        with pytest.raises(ConfigError):
            g.set(1)
        with pytest.raises(ConfigError):
            g.inc()


class TestHistogram:
    def test_summary_tracks_count_sum_min_max(self):
        h = Histogram("latency")
        for x in (1.0, 3.0, 2.0):
            h.observe(x)
        s = h.summary()
        assert s["count"] == 3
        assert s["sum"] == pytest.approx(6.0)
        assert s["min"] == 1.0
        assert s["max"] == 3.0

    def test_empty_summary_is_nan_not_inf(self):
        s = Histogram("latency").summary()
        assert s["count"] == 0
        assert math.isnan(s["min"]) and math.isnan(s["max"])

    def test_quantiles_converge(self):
        h = Histogram("latency", quantiles=(0.5,))
        for i in range(1, 2001):
            h.observe(i % 100)
        assert h.quantile(0.5) == pytest.approx(49.5, abs=5)

    def test_quantile_of_empty_is_nan(self):
        assert math.isnan(Histogram("latency").quantile(0.5))


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("ops_total", server="0")
        b = reg.counter("ops_total", server="0")
        assert a is b
        a.inc()
        assert reg.value("ops_total", server="0") == 1.0

    def test_labels_distinguish_series(self):
        reg = MetricsRegistry()
        reg.counter("ops_total", server="0").inc()
        reg.counter("ops_total", server="1").inc(5)
        assert reg.value("ops_total", server="0") == 1.0
        assert reg.value("ops_total", server="1") == 5.0

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigError):
            reg.gauge("x")

    def test_reregistration_rebinds_callback(self):
        # A restarted component re-registers its gauge; the callback must
        # point at the *new* live object, not the dead one.
        reg = MetricsRegistry()
        reg.gauge("depth", fn=lambda: 1)
        reg.gauge("depth", fn=lambda: 2)
        assert reg.value("depth") == 2.0

    def test_value_of_missing_metric_raises(self):
        with pytest.raises(ConfigError):
            MetricsRegistry().value("nope")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("ops_total", server="3").inc(2)
        reg.gauge("depth", fn=lambda: 7)
        reg.histogram("latency").observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {'ops_total{server="3"}': 2.0}
        assert snap["gauges"] == {"depth": 7.0}
        assert snap["histograms"]["latency"]["count"] == 1

    def test_snapshot_is_json_able(self):
        import json

        reg = MetricsRegistry()
        reg.counter("ops_total").inc()
        reg.histogram("latency").observe(1.0)
        json.dumps(reg.snapshot())


class TestPrometheusExport:
    def test_one_type_line_per_metric_name(self):
        # The exposition format forbids repeating # TYPE for a name even
        # when many label sets exist.
        reg = MetricsRegistry()
        for sid in range(3):
            reg.counter("ops_total", "Ops", server=str(sid)).inc(sid)
        text = reg.to_prometheus()
        assert text.count("# TYPE ops_total counter") == 1
        assert 'ops_total{server="2"} 2.0' in text

    def test_gauge_and_summary_rendering(self):
        reg = MetricsRegistry()
        reg.gauge("depth", "Queue depth", fn=lambda: 4, server="0")
        h = reg.histogram("latency", "Service time", quantiles=(0.5,))
        h.observe(2.0)
        text = reg.to_prometheus()
        assert "# TYPE depth gauge" in text
        assert 'depth{server="0"} 4.0' in text
        assert "# TYPE latency summary" in text
        assert 'latency{quantile="0.5"}' in text
        assert "latency_count 1" in text
        assert "latency_sum 2.0" in text

    def test_extra_labels_appended_to_every_sample(self):
        reg = MetricsRegistry()
        reg.counter("ops_total", server="0").inc()
        text = reg.to_prometheus(extra_labels={"cell": "E1"})
        assert 'ops_total{cell="E1",server="0"} 1.0' in text

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().to_prometheus() == ""


class TestEngineGauges:
    def test_register_engine_gauges_reads_event_core(self):
        from repro.obs import register_engine_gauges
        from repro.sim import Environment

        env = Environment(engine="array")
        env.timeout(1.0)
        reg = MetricsRegistry()
        register_engine_gauges(reg, env)
        gauges = reg.snapshot()["gauges"]
        assert gauges["sim_now"] == 0.0
        assert gauges['sim_pending_events{engine="array"}'] == 1.0
        assert 'sim_bucket_resizes_total{engine="array"}' in gauges
        env.run()
        assert reg.snapshot()["gauges"]["sim_now"] == 1.0
        assert reg.snapshot()["gauges"]['sim_pending_events{engine="array"}'] == 0.0

    def test_engine_gauges_cover_heap_backend_too(self):
        from repro.obs import register_engine_gauges
        from repro.sim import Environment

        env = Environment(engine="heap")
        reg = MetricsRegistry()
        register_engine_gauges(reg, env)
        gauges = reg.snapshot()["gauges"]
        assert gauges['sim_slot_reuse_hit_rate{engine="heap"}'] == 0.0
