"""Unit tests for request traces, op spans, and the sampling tracer."""

import json

import pytest

from repro.errors import ConfigError
from repro.obs import (
    OBS_BAND,
    OBS_PROMOTED,
    OBS_THRESHOLD,
    OpSpan,
    RequestTrace,
    Tracer,
)


class FakeOp:
    def __init__(self, **kwargs):
        self.key = kwargs.pop("key", "k")
        self.server_id = kwargs.pop("server_id", 3)
        self.enqueue_time = kwargs.pop("enqueue_time", 1.0)
        self.start_time = kwargs.pop("start_time", 2.0)
        self.finish_time = kwargs.pop("finish_time", 3.0)
        self.tag = kwargs.pop("tag", {})


class TestOpSpan:
    def test_from_op_reads_timestamps_and_annotations(self):
        op = FakeOp(
            tag={OBS_BAND: "last", OBS_THRESHOLD: 0.5, OBS_PROMOTED: True}
        )
        span = OpSpan.from_op(op)
        assert span.key == "k"
        assert span.server_id == 3
        assert (span.enqueue, span.service_start, span.service_end) == (1.0, 2.0, 3.0)
        assert span.band == "last"
        assert span.threshold == 0.5
        assert span.promoted is True

    def test_explicit_server_id_wins(self):
        assert OpSpan.from_op(FakeOp(), server_id=9).server_id == 9

    def test_monotone(self):
        assert OpSpan.from_op(FakeOp()).monotone()
        assert not OpSpan.from_op(FakeOp(start_time=0.5)).monotone()
        # A NaN timestamp (op never served) must fail, not pass vacuously.
        assert not OpSpan.from_op(FakeOp(finish_time=float("nan"))).monotone()


class TestRequestTrace:
    def trace(self, **kwargs):
        return RequestTrace(
            request_id=7,
            tag_time=kwargs.pop("tag_time", 0.5),
            reply_time=kwargs.pop("reply_time", 4.0),
            ops=[OpSpan.from_op(FakeOp(**kwargs))],
        )

    def test_monotone_accepts_ordered_chain(self):
        assert self.trace().monotone()

    def test_tag_after_enqueue_rejected(self):
        assert not self.trace(tag_time=1.5).monotone()

    def test_reply_before_service_end_rejected(self):
        assert not self.trace(reply_time=2.5).monotone()

    def test_as_dict_round_trips_json(self):
        data = json.loads(json.dumps(self.trace().as_dict()))
        assert data["request_id"] == 7
        assert data["ops"][0]["band"] is None


class TestTracer:
    def test_rate_one_samples_everything(self):
        tracer = Tracer(sample_rate=1.0)
        assert all(tracer.should_sample() for _ in range(10))

    def test_rate_zero_disables(self):
        tracer = Tracer(sample_rate=0.0)
        assert not tracer.enabled
        assert not any(tracer.should_sample() for _ in range(10))

    def test_stride_sampling_is_deterministic(self):
        tracer = Tracer(sample_rate=0.25)
        picks = [tracer.should_sample() for _ in range(8)]
        # First request always sampled, then every 4th.
        assert picks == [True, False, False, False, True, False, False, False]

    def test_capacity_is_a_ring(self):
        tracer = Tracer(sample_rate=1.0, capacity=2)
        for i in range(3):
            tracer.record(RequestTrace(request_id=i, tag_time=0.0))
        assert [t.request_id for t in tracer.traces] == [1, 2]
        assert tracer.sampled == 3
        assert tracer.dropped == 1

    def test_to_json(self):
        tracer = Tracer(sample_rate=1.0)
        tracer.record(RequestTrace(request_id=1, tag_time=0.0))
        assert json.loads(tracer.to_json())[0]["request_id"] == 1

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigError):
            Tracer(sample_rate=1.5)
        with pytest.raises(ConfigError):
            Tracer(capacity=0)
