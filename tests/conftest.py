"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kvstore.config import ClusterConfig, ServiceConfig, SimulationConfig
from repro.sim.core import Environment
from repro.workload.arrivals import PoissonArrivals
from repro.workload.fanout import FixedFanout
from repro.workload.popularity import UniformPopularity
from repro.workload.requests import arrival_rate_for_load
from repro.workload.sizes import FixedSize


@pytest.fixture
def env() -> Environment:
    return Environment()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def small_config(
    scheduler: str = "fcfs",
    load: float = 0.6,
    n_servers: int = 4,
    fanout: int = 3,
    value_size: int = 1024,
    seed: int = 7,
    **overrides,
) -> ClusterConfig:
    """A small, fast, deterministic cluster config for tests.

    Fixed fan-out / fixed sizes / uniform keys keep the math exact so
    tests can assert on calibrated loads.
    """
    service = overrides.pop("service", ServiceConfig(noise_cv=0.0))
    mean_demand = service.mean_demand(value_size)
    rate = arrival_rate_for_load(load, fanout, mean_demand, n_servers)
    return ClusterConfig(
        n_servers=n_servers,
        n_clients=overrides.pop("n_clients", 2),
        seed=seed,
        scheduler=scheduler,
        keyspace_size=overrides.pop("keyspace_size", 500),
        arrivals=overrides.pop("arrivals", PoissonArrivals(rate=rate)),
        fanout=overrides.pop("fanout_spec", FixedFanout(k=fanout)),
        sizes=overrides.pop("sizes", FixedSize(size=value_size)),
        popularity=overrides.pop("popularity", UniformPopularity()),
        service=service,
        **overrides,
    )


def quick_sim(max_requests: int = 400) -> SimulationConfig:
    return SimulationConfig(max_requests=max_requests, warmup_fraction=0.1)
