"""Tests for the keyspace, request factory, and load calibration."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.arrivals import PoissonArrivals
from repro.workload.fanout import FixedFanout
from repro.workload.popularity import UniformPopularity
from repro.workload.requests import (
    Keyspace,
    RequestFactory,
    RequestSpec,
    TraceReplayFactory,
    arrival_rate_for_load,
    offered_load,
)
from repro.workload.sizes import FixedSize, UniformSize
from repro.workload.traces import TraceRecord


def make_keyspace(size=100, rng=None):
    return Keyspace(size, FixedSize(size=1000), rng or np.random.default_rng(0))


def make_factory(keyspace=None, fanout=3, rate=10.0, put_fraction=0.0):
    spec = RequestSpec(
        arrivals=PoissonArrivals(rate=rate),
        fanout=FixedFanout(k=fanout),
        popularity=UniformPopularity(),
        put_fraction=put_fraction,
    )
    return RequestFactory(
        spec,
        keyspace or make_keyspace(),
        rng_arrivals=np.random.default_rng(1),
        rng_fanout=np.random.default_rng(2),
        rng_keys=np.random.default_rng(3),
        rng_kind=np.random.default_rng(4) if put_fraction > 0 else None,
    )


class TestKeyspace:
    def test_key_names_are_stable(self):
        ks = make_keyspace()
        assert ks.key_name(0) == "key:0000000000"
        assert ks.key_name(42) == "key:0000000042"

    def test_out_of_range_rejected(self):
        ks = make_keyspace(10)
        with pytest.raises(WorkloadError):
            ks.key_name(10)

    def test_sizes_fixed_at_creation(self):
        rng = np.random.default_rng(0)
        ks = Keyspace(50, UniformSize(lo=10, hi=20), rng)
        first = [ks.value_size(i) for i in range(50)]
        second = [ks.value_size(i) for i in range(50)]
        assert first == second

    def test_mean_value_size(self):
        assert make_keyspace().mean_value_size() == 1000.0

    def test_len(self):
        assert len(make_keyspace(7)) == 7

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            make_keyspace(0)


class TestRequestFactory:
    def test_request_has_distinct_keys(self):
        factory = make_factory(fanout=5)
        for _ in range(50):
            descriptor = factory.make_request()
            assert len(set(descriptor.keys)) == 5

    def test_sizes_match_keyspace(self):
        ks = make_keyspace()
        factory = make_factory(keyspace=ks)
        descriptor = factory.make_request()
        for key, size in zip(descriptor.keys, descriptor.sizes):
            idx = int(key.split(":")[1])
            assert size == ks.value_size(idx)

    def test_fanout_exceeding_keyspace_rejected(self):
        with pytest.raises(WorkloadError):
            make_factory(keyspace=make_keyspace(2), fanout=3)

    def test_put_fraction_requires_rng(self):
        spec = RequestSpec(
            arrivals=PoissonArrivals(rate=1.0),
            fanout=FixedFanout(k=1),
            popularity=UniformPopularity(),
            put_fraction=0.5,
        )
        with pytest.raises(WorkloadError):
            RequestFactory(
                spec,
                make_keyspace(),
                rng_arrivals=np.random.default_rng(1),
                rng_fanout=np.random.default_rng(2),
                rng_keys=np.random.default_rng(3),
            )

    def test_put_fraction_statistics(self):
        factory = make_factory(fanout=4, put_fraction=0.5)
        puts = 0
        total = 0
        for _ in range(500):
            descriptor = factory.make_request()
            puts += sum(descriptor.is_put)
            total += len(descriptor.is_put)
        assert puts / total == pytest.approx(0.5, abs=0.05)

    def test_generated_counter(self):
        factory = make_factory()
        factory.make_request()
        factory.make_request()
        assert factory.generated == 2

    def test_invalid_put_fraction(self):
        with pytest.raises(WorkloadError):
            RequestSpec(
                arrivals=PoissonArrivals(rate=1.0),
                fanout=FixedFanout(k=1),
                popularity=UniformPopularity(),
                put_fraction=1.5,
            )


class TestLoadCalibration:
    def test_rate_and_load_are_inverses(self):
        mean_demand = 2e-3
        rate = arrival_rate_for_load(0.7, 4.0, mean_demand, 10)
        spec = RequestSpec(
            arrivals=PoissonArrivals(rate=rate),
            fanout=FixedFanout(k=4),
            popularity=UniformPopularity(),
        )
        load = offered_load(
            spec, keyspace_mean_size=1900, n_servers=10,
            per_op_overhead=100e-6, byte_rate=1e6,
        )
        assert load == pytest.approx(0.7)

    def test_mean_speed_scales_capacity(self):
        slow = arrival_rate_for_load(0.5, 2.0, 1e-3, 4, mean_speed=0.5)
        fast = arrival_rate_for_load(0.5, 2.0, 1e-3, 4, mean_speed=1.0)
        assert fast == pytest.approx(2 * slow)

    def test_invalid_inputs(self):
        with pytest.raises(WorkloadError):
            arrival_rate_for_load(0, 1.0, 1e-3, 4)
        with pytest.raises(WorkloadError):
            arrival_rate_for_load(0.5, 0.0, 1e-3, 4)


class TestTraceReplayFactory:
    def records(self):
        return [
            TraceRecord(t=float(i), keys=[f"k{i}"], sizes=[100]) for i in range(6)
        ]

    def test_replays_in_order(self):
        factory = TraceReplayFactory(self.records())
        t = 0.0
        keys = []
        while True:
            gap = factory.next_interarrival(t)
            if gap == float("inf"):
                break
            t += gap
            keys.append(factory.make_request().keys[0])
        assert keys == [f"k{i}" for i in range(6)]

    def test_striding_partitions_records(self):
        a = TraceReplayFactory(self.records(), start=0, stride=2)
        b = TraceReplayFactory(self.records(), start=1, stride=2)
        assert len(a) == 3 and len(b) == 3
        assert a.make_request().keys == ["k0"]
        assert b.make_request().keys == ["k1"]

    def test_exhausted_factory_raises_on_make(self):
        factory = TraceReplayFactory(self.records()[:1])
        factory.make_request()
        with pytest.raises(WorkloadError):
            factory.make_request()

    def test_invalid_stride(self):
        with pytest.raises(WorkloadError):
            TraceReplayFactory([], stride=0)
        with pytest.raises(WorkloadError):
            TraceReplayFactory([], start=2, stride=2)

    def test_mean_ops(self):
        factory = TraceReplayFactory(self.records())
        assert factory.mean_ops_per_request() == 1.0
        assert TraceReplayFactory([]).mean_ops_per_request() == 0.0
