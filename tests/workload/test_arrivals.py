"""Unit and statistical tests for arrival processes."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.arrivals import (
    DeterministicArrivals,
    MMPPArrivals,
    PoissonArrivals,
    TraceArrivals,
)


class TestPoisson:
    def test_mean_rate(self):
        assert PoissonArrivals(rate=100.0).mean_rate() == 100.0

    def test_scaled(self):
        assert PoissonArrivals(rate=100.0).scaled(0.5).rate == 50.0

    def test_invalid_rate(self):
        with pytest.raises(WorkloadError):
            PoissonArrivals(rate=0)

    def test_empirical_mean_interarrival(self, rng):
        sampler = PoissonArrivals(rate=100.0).build(rng)
        gaps = [sampler.next_interarrival(0.0) for _ in range(20000)]
        assert np.mean(gaps) == pytest.approx(0.01, rel=0.05)

    def test_memorylessness_cv(self, rng):
        sampler = PoissonArrivals(rate=50.0).build(rng)
        gaps = np.array([sampler.next_interarrival(0.0) for _ in range(20000)])
        assert gaps.std() / gaps.mean() == pytest.approx(1.0, rel=0.05)


class TestDeterministic:
    def test_constant_gap(self, rng):
        sampler = DeterministicArrivals(rate=10.0).build(rng)
        assert sampler.next_interarrival(0.0) == pytest.approx(0.1)
        assert sampler.next_interarrival(55.0) == pytest.approx(0.1)

    def test_invalid(self):
        with pytest.raises(WorkloadError):
            DeterministicArrivals(rate=-1)


class TestMMPP:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            MMPPArrivals(rates=(1.0,), dwell_means=(1.0,))
        with pytest.raises(WorkloadError):
            MMPPArrivals(rates=(1.0, 2.0), dwell_means=(1.0,))
        with pytest.raises(WorkloadError):
            MMPPArrivals(rates=(1.0, 0.0), dwell_means=(1.0, 1.0))
        with pytest.raises(WorkloadError):
            MMPPArrivals(rates=(1.0, 2.0), dwell_means=(1.0, 0.0))

    def test_mean_rate_dwell_weighted(self):
        spec = MMPPArrivals(rates=(10.0, 30.0), dwell_means=(1.0, 3.0))
        assert spec.mean_rate() == pytest.approx((10 * 1 + 30 * 3) / 4)

    def test_scaled_scales_rates_only(self):
        spec = MMPPArrivals(rates=(10.0, 30.0), dwell_means=(1.0, 3.0)).scaled(2.0)
        assert spec.rates == (20.0, 60.0)
        assert spec.dwell_means == (1.0, 3.0)

    def test_state_advances_over_time(self, rng):
        spec = MMPPArrivals(rates=(1000.0, 1000.0), dwell_means=(0.01, 0.01))
        sampler = spec.build(rng)
        t = 0.0
        for _ in range(2000):
            t += sampler.next_interarrival(t)
        # After ~2 seconds with 10ms dwells, many switches happened and we
        # are in a valid state.
        assert sampler.state in (0, 1)

    def test_empirical_rate_matches_two_state_average(self, rng):
        spec = MMPPArrivals(rates=(50.0, 200.0), dwell_means=(0.5, 0.5))
        sampler = spec.build(rng)
        t = 0.0
        n = 20000
        for _ in range(n):
            t += sampler.next_interarrival(t)
        assert n / t == pytest.approx(spec.mean_rate(), rel=0.1)


class TestTrace:
    def test_replays_absolute_times(self, rng):
        sampler = TraceArrivals(times=(1.0, 1.5, 4.0)).build(rng)
        t = 0.0
        gaps = []
        for _ in range(3):
            gap = sampler.next_interarrival(t)
            gaps.append(gap)
            t += gap
        assert gaps == [1.0, 0.5, 2.5]
        assert sampler.next_interarrival(t) == float("inf")

    def test_validation(self):
        with pytest.raises(WorkloadError):
            TraceArrivals(times=())
        with pytest.raises(WorkloadError):
            TraceArrivals(times=(2.0, 1.0))
        with pytest.raises(WorkloadError):
            TraceArrivals(times=(-1.0, 1.0))

    def test_mean_rate(self):
        spec = TraceArrivals(times=(0.0, 1.0, 2.0))
        assert spec.mean_rate() == pytest.approx(1.0)

    def test_scaled_compresses_time(self):
        spec = TraceArrivals(times=(0.0, 2.0)).scaled(2.0)
        assert spec.times == (0.0, 1.0)
