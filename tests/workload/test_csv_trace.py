"""Tests for cache-trace CSV ingest, rescaling, remapping, and summary."""

import pytest

from repro.errors import TraceFormatError
from repro.workload.registry import SAMPLE_TRACE
from repro.workload.requests import TraceReplayFactory
from repro.workload.traces import (
    TraceRecord,
    read_csv_trace,
    remap_keys,
    rescale_trace,
    trace_info,
)

CSV = """timestamp,key,op,size
0.000,alpha,get,100
0.100,beta,set,200
0.250,alpha,get,100
0.400,gamma,GET,50
"""


def write(tmp_path, text, name="trace.csv"):
    path = tmp_path / name
    path.write_text(text)
    return path


class TestCsvIngest:
    def test_basic_parse(self, tmp_path):
        records = read_csv_trace(write(tmp_path, CSV))
        assert len(records) == 4
        assert records[0] == TraceRecord(t=0.0, keys=["alpha"], sizes=[100])
        assert records[1].is_put == [True]
        assert records[3].keys == ["gamma"]  # ops are case-insensitive

    def test_headerless_file(self, tmp_path):
        body = "\n".join(CSV.splitlines()[1:]) + "\n"
        assert len(read_csv_trace(write(tmp_path, body))) == 4

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        text = "# a comment\n\n0.0,k,get,10\n\n0.5,k,get,10\n"
        assert len(read_csv_trace(write(tmp_path, text))) == 2

    def test_extra_columns_ignored(self, tmp_path):
        text = "0.0,k,get,10,ttl=60,client7\n"
        records = read_csv_trace(write(tmp_path, text))
        assert records[0].sizes == [10]

    def test_limit(self, tmp_path):
        assert len(read_csv_trace(write(tmp_path, CSV), limit=2)) == 2

    def test_op_aliases(self, tmp_path):
        text = "0.0,k,read,1\n0.1,k,write,1\n0.2,k,add,1\n0.3,k,cas,1\n"
        records = read_csv_trace(write(tmp_path, text))
        assert [r.is_put[0] for r in records] == [False, True, True, True]

    def test_non_monotone_names_line(self, tmp_path):
        text = "0.0,k,get,1\n2.0,k,get,1\n1.0,k,get,1\n"
        with pytest.raises(TraceFormatError, match="line 3.*non-decreasing"):
            read_csv_trace(write(tmp_path, text))

    def test_bad_timestamp_names_line(self, tmp_path):
        with pytest.raises(TraceFormatError, match="line 2: bad timestamp"):
            read_csv_trace(write(tmp_path, "0.0,k,get,1\nnope,k,get,1\n"))

    def test_unknown_op_names_line(self, tmp_path):
        with pytest.raises(TraceFormatError, match="line 1: unknown op 'frob'"):
            read_csv_trace(write(tmp_path, "0.0,k,frob,1\n"))

    def test_bad_size_names_line(self, tmp_path):
        with pytest.raises(TraceFormatError, match="line 1: bad size"):
            read_csv_trace(write(tmp_path, "0.0,k,get,huge\n"))

    def test_missing_columns_names_line(self, tmp_path):
        with pytest.raises(TraceFormatError, match="line 1: expected 4 columns"):
            read_csv_trace(write(tmp_path, "0.0,k,get\n"))

    def test_empty_file_rejected(self, tmp_path):
        with pytest.raises(TraceFormatError, match="no records"):
            read_csv_trace(write(tmp_path, "timestamp,key,op,size\n"))

    def test_bundled_sample_parses(self):
        records = read_csv_trace(SAMPLE_TRACE)
        assert len(records) == 240
        info = trace_info(records)
        assert info.distinct_keys > 10
        assert 0.0 < info.put_fraction < 0.5


class TestRescale:
    def records(self):
        return [
            TraceRecord(t=10.0, keys=["a"], sizes=[1]),
            TraceRecord(t=12.0, keys=["b"], sizes=[1]),
            TraceRecord(t=14.0, keys=["c"], sizes=[1]),
        ]

    def test_duration_target(self):
        out = rescale_trace(self.records(), duration=2.0)
        assert [r.t for r in out] == [0.0, 1.0, 2.0]

    def test_rate_target(self):
        out = rescale_trace(self.records(), rate=1.0)
        assert [r.t for r in out] == [0.0, 1.0, 2.0]

    def test_payload_untouched(self):
        out = rescale_trace(self.records(), duration=1.0)
        assert [r.keys for r in out] == [["a"], ["b"], ["c"]]

    def test_exactly_one_target(self):
        with pytest.raises(TraceFormatError, match="exactly one"):
            rescale_trace(self.records())
        with pytest.raises(TraceFormatError, match="exactly one"):
            rescale_trace(self.records(), duration=1.0, rate=1.0)

    def test_single_record_only_shifts(self):
        out = rescale_trace([TraceRecord(t=5.0, keys=["a"], sizes=[1])], duration=2.0)
        assert out[0].t == 0.0


class TestRemap:
    def test_first_appearance_order(self):
        records = [
            TraceRecord(t=0.0, keys=["zz"], sizes=[1]),
            TraceRecord(t=1.0, keys=["aa"], sizes=[1]),
            TraceRecord(t=2.0, keys=["zz"], sizes=[1]),
        ]
        out = remap_keys(records, keyspace_size=100)
        assert out[0].keys == ["key:0000000000"]
        assert out[1].keys == ["key:0000000001"]
        assert out[2].keys == ["key:0000000000"]  # same trace key, same name

    def test_aliasing_wraps_modulo(self):
        records = [
            TraceRecord(t=float(i), keys=[f"k{i}"], sizes=[1]) for i in range(5)
        ]
        out = remap_keys(records, keyspace_size=2)
        assert out[2].keys == ["key:0000000000"]
        assert out[3].keys == ["key:0000000001"]

    def test_deterministic(self):
        records = read_csv_trace(SAMPLE_TRACE)
        a = remap_keys(records, keyspace_size=50)
        b = remap_keys(records, keyspace_size=50)
        assert a == b


class TestTraceInfo:
    def test_summary_fields(self):
        records = [
            TraceRecord(t=0.0, keys=["a"], sizes=[10]),
            TraceRecord(t=2.0, keys=["b"], sizes=[30], is_put=[True]),
        ]
        info = trace_info(records)
        assert info.records == 2
        assert info.ops == 2
        assert info.duration == 2.0
        assert info.mean_rate == 0.5
        assert info.distinct_keys == 2
        assert info.put_fraction == 0.5
        assert (info.size_min, info.size_max) == (10, 30)
        assert info.size_mean == 20.0

    def test_describe_is_human_readable(self):
        info = trace_info(read_csv_trace(SAMPLE_TRACE))
        text = info.describe()
        assert "240 records" in text
        assert "distinct keys" in text

    def test_empty_rejected(self):
        with pytest.raises(TraceFormatError, match="empty"):
            trace_info([])


class TestReplayFactoryGuard:
    def test_non_monotone_records_rejected(self):
        records = [
            TraceRecord(t=0.0, keys=["a"], sizes=[1]),
            TraceRecord(t=2.0, keys=["b"], sizes=[1]),
        ]
        # Forge a non-monotone sequence by reordering valid records.
        with pytest.raises(TraceFormatError, match="record 1.*non-decreasing"):
            TraceReplayFactory(list(reversed(records)))

    def test_monotone_records_accepted(self):
        records = [
            TraceRecord(t=0.0, keys=["a"], sizes=[1]),
            TraceRecord(t=0.0, keys=["b"], sizes=[1]),  # ties are fine
            TraceRecord(t=1.0, keys=["c"], sizes=[1]),
        ]
        assert len(TraceReplayFactory(records)) == 3
