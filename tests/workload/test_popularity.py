"""Tests for key popularity distributions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workload.popularity import (
    HotspotPopularity,
    PartitionedPopularity,
    UniformPopularity,
    ZipfPopularity,
)


class TestUniform:
    def test_coverage(self, rng):
        sampler = UniformPopularity().build(100, rng)
        seen = {sampler.sample_one() for _ in range(5000)}
        assert len(seen) > 95

    def test_distinct_sampling(self, rng):
        sampler = UniformPopularity().build(50, rng)
        picks = sampler.sample_distinct(50)
        assert sorted(picks) == list(range(50))

    def test_too_many_distinct_rejected(self, rng):
        sampler = UniformPopularity().build(10, rng)
        with pytest.raises(WorkloadError):
            sampler.sample_distinct(11)


class TestZipf:
    def test_skew_concentrates_mass(self, rng):
        sampler = ZipfPopularity(s=0.99, shuffle=False).build(1000, rng)
        draws = np.array([sampler.sample_one() for _ in range(20000)])
        top_fraction = np.mean(draws < 10)  # 10 hottest ranks
        assert top_fraction > 0.3  # heavy concentration vs 1% for uniform

    def test_zero_exponent_is_uniform(self, rng):
        sampler = ZipfPopularity(s=0.0, shuffle=False).build(100, rng)
        draws = np.array([sampler.sample_one() for _ in range(20000)])
        top_fraction = np.mean(draws < 10)
        assert top_fraction == pytest.approx(0.1, abs=0.02)

    def test_shuffle_spreads_hot_ranks(self, rng):
        plain = ZipfPopularity(s=1.2, shuffle=False).build(1000, rng)
        hot_plain = plain.sample_one()
        # With shuffle, rank 0 maps to an arbitrary index; sampling still
        # works and stays in range.
        shuffled = ZipfPopularity(s=1.2, shuffle=True).build(
            1000, np.random.default_rng(0)
        )
        assert 0 <= shuffled.sample_one() < 1000
        assert 0 <= hot_plain < 1000

    def test_negative_exponent_rejected(self):
        with pytest.raises(WorkloadError):
            ZipfPopularity(s=-0.1)

    def test_distinct_under_skew(self, rng):
        sampler = ZipfPopularity(s=1.5).build(100, rng)
        picks = sampler.sample_distinct(20)
        assert len(set(picks)) == 20


class TestHotspot:
    def test_hot_region_receives_hot_probability(self):
        rng = np.random.default_rng(5)
        spec = HotspotPopularity(hot_fraction=0.1, hot_probability=0.9)
        sampler = spec.build(1000, rng)
        hot_indices = set(sampler._perm[:100])
        draws = [sampler.sample_one() for _ in range(20000)]
        hot_hits = sum(1 for d in draws if d in hot_indices)
        assert hot_hits / len(draws) == pytest.approx(0.9, abs=0.02)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            HotspotPopularity(hot_fraction=0.0)
        with pytest.raises(WorkloadError):
            HotspotPopularity(hot_probability=1.0)

    def test_tiny_keyspace_rejected_when_hot_covers_all(self, rng):
        with pytest.raises(WorkloadError):
            HotspotPopularity(hot_fraction=0.99).build(1, rng)


class TestPartitioned:
    def test_slices_are_disjoint_and_cover_span(self, rng):
        tenants = 4
        keyspace = 100
        spans = []
        for tenant in range(tenants):
            spec = PartitionedPopularity(UniformPopularity(), tenant, tenants)
            sampler = spec.build(keyspace, np.random.default_rng(tenant))
            draws = {sampler.sample_one() for _ in range(2000)}
            lo, hi = tenant * 25, (tenant + 1) * 25
            assert all(lo <= d < hi for d in draws), (tenant, min(draws), max(draws))
            assert len(draws) == 25  # uniform inner law covers its slice
            spans.append(draws)
        for i in range(tenants):
            for j in range(i + 1, tenants):
                assert not spans[i] & spans[j]

    def test_inner_law_is_preserved(self):
        spec = PartitionedPopularity(
            ZipfPopularity(s=1.2, shuffle=False), tenant=1, tenants=2
        )
        sampler = spec.build(1000, np.random.default_rng(3))
        draws = np.array([sampler.sample_one() for _ in range(20000)])
        assert draws.min() >= 500
        # Hot ranks of the inner zipf sit at the slice start.
        assert np.mean(draws < 510) > 0.3

    def test_distinct_stays_in_slice(self, rng):
        spec = PartitionedPopularity(UniformPopularity(), tenant=2, tenants=5)
        picks = spec.build(50, rng).sample_distinct(10)
        assert sorted(picks) == sorted(set(int(p) for p in picks))
        assert all(20 <= p < 30 for p in picks)

    def test_validation(self, rng):
        with pytest.raises(WorkloadError, match="tenants"):
            PartitionedPopularity(UniformPopularity(), 0, 0)
        with pytest.raises(WorkloadError, match="tenant"):
            PartitionedPopularity(UniformPopularity(), 3, 3)
        with pytest.raises(WorkloadError, match="slices"):
            PartitionedPopularity(UniformPopularity(), 0, 10).build(5, rng)


@given(
    keyspace=st.integers(10, 500),
    n=st.integers(1, 10),
    s=st.floats(min_value=0.0, max_value=2.0),
    seed=st.integers(0, 1000),
)
@settings(max_examples=60, deadline=None)
def test_distinct_samples_are_distinct_and_in_range(keyspace, n, s, seed):
    rng = np.random.default_rng(seed)
    sampler = ZipfPopularity(s=s).build(keyspace, rng)
    picks = sampler.sample_distinct(n)
    assert len(set(int(p) for p in picks)) == n
    assert all(0 <= p < keyspace for p in picks)
