"""Tests for the sinusoidal (diurnal) arrival process."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.arrivals import SinusoidalArrivals


class TestSinusoidalArrivals:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            SinusoidalArrivals(base_rate=0)
        with pytest.raises(WorkloadError):
            SinusoidalArrivals(base_rate=10, amplitude=1.0)
        with pytest.raises(WorkloadError):
            SinusoidalArrivals(base_rate=10, period=0)

    def test_mean_rate_is_base_rate(self):
        assert SinusoidalArrivals(base_rate=500.0).mean_rate() == 500.0

    def test_scaled(self):
        spec = SinusoidalArrivals(base_rate=100.0, amplitude=0.3, period=5.0)
        scaled = spec.scaled(2.0)
        assert scaled.base_rate == 200.0
        assert scaled.amplitude == 0.3
        assert scaled.period == 5.0

    def test_long_run_rate_matches_base(self, rng):
        spec = SinusoidalArrivals(base_rate=1000.0, amplitude=0.8, period=1.0)
        sampler = spec.build(rng)
        t = 0.0
        n = 20000
        for _ in range(n):
            t += sampler.next_interarrival(t)
        assert n / t == pytest.approx(1000.0, rel=0.05)

    def test_rate_oscillates_within_period(self, rng):
        """Arrivals concentrate in the sine's crest and thin in its trough."""
        spec = SinusoidalArrivals(base_rate=2000.0, amplitude=0.9, period=1.0)
        sampler = spec.build(rng)
        t = 0.0
        crest = trough = 0
        for _ in range(40000):
            t += sampler.next_interarrival(t)
            phase = (t % 1.0)
            if 0.0 <= phase < 0.5:
                crest += 1  # sin positive on the first half period
            else:
                trough += 1
        assert crest > trough * 1.5

    def test_zero_amplitude_is_plain_poisson(self, rng):
        spec = SinusoidalArrivals(base_rate=500.0, amplitude=0.0, period=1.0)
        sampler = spec.build(rng)
        gaps = []
        t = 0.0
        for _ in range(20000):
            gap = sampler.next_interarrival(t)
            gaps.append(gap)
            t += gap
        gaps = np.asarray(gaps)
        assert gaps.mean() == pytest.approx(1 / 500.0, rel=0.05)
        assert gaps.std() / gaps.mean() == pytest.approx(1.0, rel=0.05)

    def test_usable_in_cluster(self):
        from repro.kvstore.cluster import run_cluster
        from repro.kvstore.config import SimulationConfig

        from tests.conftest import small_config

        config = small_config(
            arrivals=SinusoidalArrivals(base_rate=3000.0, amplitude=0.6, period=0.2)
        )
        result = run_cluster(config, SimulationConfig(max_requests=300))
        assert result.requests_completed == 300
