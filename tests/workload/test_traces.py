"""Tests for trace serialization."""

import pytest

from repro.errors import TraceFormatError
from repro.workload.traces import TraceRecord, load_trace, read_trace, write_trace


def sample_records():
    return [
        TraceRecord(t=0.0, keys=["a", "b"], sizes=[10, 20]),
        TraceRecord(t=1.5, keys=["c"], sizes=[30], is_put=[True]),
        TraceRecord(t=1.5, keys=["d"], sizes=[40]),
    ]


class TestRecord:
    def test_defaults_is_put_to_false(self):
        record = TraceRecord(t=0.0, keys=["a"], sizes=[1])
        assert record.is_put == [False]

    def test_validation(self):
        with pytest.raises(TraceFormatError):
            TraceRecord(t=-1.0, keys=["a"], sizes=[1])
        with pytest.raises(TraceFormatError):
            TraceRecord(t=0.0, keys=["a"], sizes=[1, 2])
        with pytest.raises(TraceFormatError):
            TraceRecord(t=0.0, keys=[], sizes=[])
        with pytest.raises(TraceFormatError):
            TraceRecord(t=0.0, keys=["a"], sizes=[1], is_put=[True, False])

    def test_json_roundtrip(self):
        record = TraceRecord(t=2.5, keys=["x"], sizes=[99], is_put=[True])
        parsed = TraceRecord.from_json(record.to_json())
        assert parsed == record

    def test_from_json_errors(self):
        with pytest.raises(TraceFormatError, match="invalid JSON"):
            TraceRecord.from_json("{broken", lineno=3)
        with pytest.raises(TraceFormatError, match="must be an object"):
            TraceRecord.from_json("[1,2]")
        with pytest.raises(TraceFormatError, match="missing field"):
            TraceRecord.from_json('{"t": 1.0, "keys": ["a"]}')
        with pytest.raises(TraceFormatError, match="bad field value"):
            TraceRecord.from_json('{"t": 1.0, "keys": ["a"], "sizes": ["xx"]}')


class TestFileRoundtrip:
    def test_write_and_read(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        count = write_trace(path, sample_records())
        assert count == 3
        loaded = load_trace(path)
        assert loaded == sample_records()

    def test_read_is_lazy(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace(path, sample_records())
        iterator = read_trace(path)
        first = next(iterator)
        assert first.keys == ["a", "b"]

    def test_write_rejects_out_of_order(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        records = [
            TraceRecord(t=2.0, keys=["a"], sizes=[1]),
            TraceRecord(t=1.0, keys=["b"], sizes=[1]),
        ]
        with pytest.raises(TraceFormatError, match="out of order"):
            write_trace(path, records)

    def test_read_rejects_out_of_order(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"t":2.0,"keys":["a"],"sizes":[1]}\n'
            '{"t":1.0,"keys":["b"],"sizes":[1]}\n'
        )
        with pytest.raises(TraceFormatError, match="non-decreasing"):
            load_trace(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"t":1.0,"keys":["a"],"sizes":[1]}\n\n')
        assert len(load_trace(path)) == 1

    def test_bad_line_reports_lineno(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"t":1.0,"keys":["a"],"sizes":[1]}\nnot json\n')
        with pytest.raises(TraceFormatError, match="line 2"):
            load_trace(path)
