"""Bit-identity of the batched sampling layer vs scalar numpy draws.

The batched-draw layer (:class:`repro.sim.rand.BatchedStream`) is only
admissible because its sequences are *bit-for-bit identical* to the scalar
``numpy.random.Generator`` calls it replaced — otherwise every golden
output in the repository would shift.  These tests pin that contract per
distribution and per consuming component: each one replays the exact
scalar call sequence on a fresh generator with the same seed and demands
equality, not closeness.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kvstore.network import UniformLatencyNetwork
from repro.kvstore.service import ServiceModel
from repro.sim.core import Environment
from repro.workload.arrivals import MMPPArrivals, PoissonArrivals
from repro.workload.fanout import BimodalFanout, GeometricFanout, UniformFanout
from repro.workload.popularity import PopularitySampler, ZipfPopularity
from repro.workload.sizes import (
    BimodalSize,
    ExponentialSize,
    FixedSize,
    LognormalSize,
    ParetoSize,
    UniformSize,
)

SEED = 20260807
N = 3000


def _rng():
    return np.random.default_rng(SEED)


# ----------------------------------------------------------------------
# Arrivals
# ----------------------------------------------------------------------
class TestArrivalEquivalence:
    def test_poisson_matches_scalar_exponential(self):
        sampler = PoissonArrivals(rate=250.0).build(_rng())
        reference = _rng()
        for _ in range(N):
            assert sampler.next_interarrival(0.0) == reference.exponential(1.0 / 250.0)

    def test_mmpp_matches_scalar_reference(self):
        spec = MMPPArrivals(rates=(50.0, 400.0), dwell_means=(0.05, 0.02))
        sampler = spec.build(_rng())

        # Scalar re-implementation of the sampler on a raw generator.
        reference = _rng()
        state = 0
        state_until = reference.exponential(spec.dwell_means[0])
        now = 0.0
        for _ in range(N):
            t, gap = now, 0.0
            while True:
                candidate = reference.exponential(1.0 / spec.rates[state])
                if t + candidate <= state_until:
                    gap += candidate
                    break
                gap += state_until - t
                t = state_until
                state = (state + 1) % len(spec.rates)
                state_until = t + reference.exponential(spec.dwell_means[state])
            assert sampler.next_interarrival(now) == gap
            now += gap


# ----------------------------------------------------------------------
# Fan-out
# ----------------------------------------------------------------------
class TestFanoutEquivalence:
    def test_uniform_matches_scalar_integers(self):
        sampler = UniformFanout(lo=1, hi=16).build(_rng())
        reference = _rng()
        for _ in range(N):
            assert sampler.sample() == reference.integers(1, 17)

    def test_geometric_matches_scalar_geometric(self):
        spec = GeometricFanout(mean_target=5.0, cap=64)
        sampler = spec.build(_rng())
        reference = _rng()
        for _ in range(N):
            assert sampler.sample() == min(int(reference.geometric(spec.p)), 64)

    def test_bimodal_matches_scalar_uniform(self):
        sampler = BimodalFanout(small=2, large=32, p_large=0.1).build(_rng())
        reference = _rng()
        for _ in range(N):
            expected = 32 if reference.random() < 0.1 else 2
            assert sampler.sample() == expected


# ----------------------------------------------------------------------
# Value sizes: each sampler's vectorized sample_block vs its scalar sample
# ----------------------------------------------------------------------
SIZE_SPECS = [
    FixedSize(size=777),
    UniformSize(lo=128, hi=4096),
    LognormalSize(median=1024.0, sigma=1.2, cap=1 << 18),
    ParetoSize(lo=256.0, alpha=1.5, cap=1 << 20),
    # Truly heavy tails (alpha <= 1), legal since the ParetoSize fix.
    ParetoSize(lo=256.0, alpha=1.0, cap=1 << 22),
    ParetoSize(lo=256.0, alpha=0.9, cap=1 << 22),
    BimodalSize(small=512, large=262144, p_large=0.05),
    BimodalSize(small=512, large=262144, p_large=0.002),
    ExponentialSize(mean_size=1024.0, cap=1 << 22),
]


@pytest.mark.parametrize("spec", SIZE_SPECS, ids=lambda s: type(s).__name__)
def test_size_block_matches_scalar_loop(spec):
    scalar = spec.build(_rng())
    block = spec.build(_rng())
    expected = np.asarray([scalar.sample() for _ in range(N)], dtype=np.int64)
    got = block.sample_block(N)
    assert got.dtype == np.int64
    np.testing.assert_array_equal(got, expected)


@pytest.mark.parametrize("spec", SIZE_SPECS, ids=lambda s: type(s).__name__)
def test_size_block_split_draws_same_sequence(spec):
    """Block draws crossing a prefetch boundary stay identical."""
    one_shot = spec.build(_rng()).sample_block(N)
    split = spec.build(_rng())
    parts = [split.sample_block(n) for n in (1, 7, N - 8)]
    np.testing.assert_array_equal(np.concatenate(parts), one_shot)


# ----------------------------------------------------------------------
# Popularity: vectorized Zipf rejection vs the scalar base-class loop
# ----------------------------------------------------------------------
class TestZipfEquivalence:
    @pytest.mark.parametrize("s,keyspace,fanout", [
        (0.99, 5000, 16),
        (1.4, 50, 30),       # dup-heavy: many rejections per draw
        (0.0, 1000, 8),      # uniform weights
    ])
    def test_sample_distinct_matches_scalar_rejection(self, s, keyspace, fanout):
        spec = ZipfPopularity(s=s, shuffle=True)
        vectorized = spec.build(keyspace, _rng())
        scalar = spec.build(keyspace, _rng())
        for _ in range(200):
            got = vectorized.sample_distinct(fanout)
            # The unbound base-class method is the scalar rejection loop.
            expected = PopularitySampler.sample_distinct(scalar, fanout)
            np.testing.assert_array_equal(got, expected)

    def test_sample_one_matches_scalar_searchsorted(self):
        spec = ZipfPopularity(s=0.99, shuffle=True)
        sampler = spec.build(2000, _rng())
        reference = _rng()
        perm = reference.permutation(2000)
        for _ in range(N):
            u = reference.random()
            rank = min(int(np.searchsorted(sampler._cum, u, side="left")), 1999)
            assert sampler.sample_one() == int(perm[rank])


# ----------------------------------------------------------------------
# Network jitter and service noise
# ----------------------------------------------------------------------
class TestKvstoreEquivalence:
    def test_network_jitter_matches_scalar_exponential(self):
        net = UniformLatencyNetwork(
            Environment(), base_delay=50e-6, jitter_mean=20e-6, rng=_rng()
        )
        reference = _rng()
        for _ in range(N):
            assert net.delay(0, 1) == 50e-6 + reference.exponential(20e-6)

    def test_service_noise_matches_scalar_lognormal(self):
        model = ServiceModel(
            per_op_overhead=20e-6, byte_rate=200e6, noise_cv=0.3, rng=_rng()
        )
        reference = _rng()
        sigma2 = float(np.log(1.0 + 0.3**2))
        mu, sigma = -sigma2 / 2.0, sigma2**0.5
        for _ in range(N):
            expected = model.demand(4096) * reference.lognormal(mu, sigma)
            assert model.sample_service_time(4096, now=0.0) == expected
