"""Tests for named traffic patterns."""

import pytest

from repro.errors import WorkloadError
from repro.workload.patterns import TRAFFIC_PATTERNS, traffic_pattern


class TestPatterns:
    def test_lookup_known(self):
        assert traffic_pattern("baseline").name == "baseline"

    def test_lookup_unknown_lists_names(self):
        with pytest.raises(WorkloadError, match="baseline"):
            traffic_pattern("mystery")

    @pytest.mark.parametrize("name", sorted(TRAFFIC_PATTERNS))
    def test_every_pattern_builds_working_samplers(self, name, rng):
        pattern = traffic_pattern(name)
        fanout = pattern.fanout.build(rng)
        sizes = pattern.sizes.build(rng)
        popularity = pattern.popularity.build(1000, rng)
        for _ in range(20):
            n = fanout.sample()
            assert 1 <= n <= pattern.fanout.max_fanout()
            assert sizes.sample() >= 0
            picks = popularity.sample_distinct(min(n, 10))
            assert len(set(int(p) for p in picks)) == len(picks)

    @pytest.mark.parametrize("name", sorted(TRAFFIC_PATTERNS))
    def test_patterns_have_descriptions_and_means(self, name):
        pattern = traffic_pattern(name)
        assert pattern.description
        assert pattern.fanout.mean() >= 1.0
        assert pattern.sizes.mean() > 0

    def test_single_get_pattern_is_fanout_one(self):
        assert traffic_pattern("single-get").fanout.mean() == 1.0

    def test_bimodal_pattern_mixes_sizes(self):
        pattern = traffic_pattern("bimodal")
        assert pattern.fanout.max_fanout() == 32
