"""Tests for the declarative workload spec format (docs/workloads.md)."""

import json

import pytest

from repro.errors import WorkloadError
from repro.kvstore.config import ServiceConfig
from repro.workload.arrivals import MMPPArrivals, PhasedArrivals, PoissonArrivals
from repro.workload.fanout import FixedFanout
from repro.workload.popularity import HotspotPopularity
from repro.workload.sizes import BimodalSize
from repro.workload.spec import (
    WorkloadSpec,
    _parse_toml_minimal,
    load_spec,
)

TOML = """
name = "test-spec"
description = "unit test"
load = 0.5
put_fraction = 0.1

[arrivals]
kind = "mmpp"
rates = [500.0, 2000.0]
dwell_means = [1.0, 0.25]

[fanout]
kind = "fixed"
k = 8

[sizes]
kind = "bimodal"
small = 512
large = 262144
p_large = 0.05

[popularity]
kind = "hotspot"
hot_fraction = 0.1
hot_probability = 0.9
"""


def write_spec(tmp_path, text, name="spec.toml"):
    path = tmp_path / name
    path.write_text(text)
    return path


class TestLoading:
    def test_toml_load_builds_generators(self, tmp_path):
        spec = load_spec(write_spec(tmp_path, TOML))
        assert spec.name == "test-spec"
        assert isinstance(spec.arrivals, MMPPArrivals)
        assert isinstance(spec.fanout, FixedFanout) and spec.fanout.k == 8
        assert isinstance(spec.sizes, BimodalSize)
        assert isinstance(spec.popularity, HotspotPopularity)
        assert spec.load == 0.5
        assert spec.put_fraction == 0.1

    def test_toml_json_equivalence(self, tmp_path):
        toml_spec = load_spec(write_spec(tmp_path, TOML))
        json_path = tmp_path / "spec.json"
        json_path.write_text(json.dumps(toml_spec.as_dict()))
        json_spec = load_spec(json_path)
        assert json_spec == toml_spec
        assert json_spec.fingerprint() == toml_spec.fingerprint()

    def test_fingerprint_tracks_content_not_formatting(self, tmp_path):
        a = load_spec(write_spec(tmp_path, TOML, "a.toml"))
        b = load_spec(write_spec(tmp_path, TOML + "\n# comment\n", "b.toml"))
        c = load_spec(
            write_spec(tmp_path, TOML.replace("load = 0.5", "load = 0.6"), "c.toml")
        )
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()

    def test_minimal_spec_uses_defaults(self, tmp_path):
        spec = load_spec(write_spec(tmp_path, 'name = "tiny"\n'))
        assert spec.mode == "open"
        assert isinstance(spec.arrivals, PoissonArrivals)

    def test_unsupported_extension(self, tmp_path):
        with pytest.raises(WorkloadError, match="unsupported spec format"):
            load_spec(write_spec(tmp_path, TOML, "spec.yaml"))

    def test_missing_file(self, tmp_path):
        with pytest.raises(WorkloadError, match="not found"):
            load_spec(tmp_path / "nope.toml")

    def test_invalid_json(self, tmp_path):
        with pytest.raises(WorkloadError, match="invalid JSON"):
            load_spec(write_spec(tmp_path, "{broken", "spec.json"))


class TestValidation:
    def from_dict(self, **overrides):
        data = {"name": "v"}
        data.update(overrides)
        return WorkloadSpec.from_dict(data)

    def test_missing_name(self):
        with pytest.raises(WorkloadError, match="non-empty string 'name'"):
            WorkloadSpec.from_dict({"mode": "open"})

    def test_unknown_top_level_key(self):
        with pytest.raises(WorkloadError, match="unknown spec key.*fanoot"):
            self.from_dict(fanoot={"kind": "fixed", "k": 1})

    def test_wrong_scalar_type(self):
        with pytest.raises(WorkloadError, match="put_fraction has wrong type"):
            self.from_dict(put_fraction="lots")

    def test_bad_mode(self):
        with pytest.raises(WorkloadError, match="mode must be 'open' or 'closed'"):
            self.from_dict(mode="half-open")

    def test_bad_load_range(self):
        with pytest.raises(WorkloadError, match=r"load must be in \(0, 1\]"):
            self.from_dict(load=1.5)

    def test_bad_put_fraction_range(self):
        with pytest.raises(WorkloadError, match=r"put_fraction must be in \[0, 1\]"):
            self.from_dict(put_fraction=2.0)

    def test_missing_component_kind(self):
        with pytest.raises(WorkloadError, match="sizes.kind is required"):
            self.from_dict(sizes={"median": 100.0})

    def test_unknown_component_kind(self):
        with pytest.raises(WorkloadError, match="unknown arrivals.kind 'weibull'"):
            self.from_dict(arrivals={"kind": "weibull"})

    def test_unknown_component_parameter(self):
        with pytest.raises(WorkloadError, match="unknown fanout parameter\\(s\\) depth"):
            self.from_dict(fanout={"kind": "fixed", "k": 2, "depth": 3})

    def test_component_value_validation_propagates(self):
        with pytest.raises(WorkloadError, match="invalid arrivals \\(poisson\\)"):
            self.from_dict(arrivals={"kind": "poisson", "rate": -1.0})

    def test_trace_unknown_key(self):
        with pytest.raises(WorkloadError, match="unknown trace key.*loop"):
            self.from_dict(trace={"path": "t.csv", "loop": True})

    def test_trace_bad_format(self):
        with pytest.raises(WorkloadError, match="trace.format"):
            self.from_dict(trace={"path": "t.csv", "format": "parquet"})

    def test_trace_excludes_load(self):
        with pytest.raises(WorkloadError, match="mutually exclusive"):
            self.from_dict(load=0.5, trace={"path": "t.csv"})

    def test_closed_concurrency_positive(self):
        with pytest.raises(WorkloadError, match="closed_concurrency"):
            self.from_dict(mode="closed", closed_concurrency=0)


class TestCalibration:
    def test_load_calibration_scales_to_cluster(self):
        spec = WorkloadSpec(name="c", load=0.5, fanout=FixedFanout(k=4))
        service = ServiceConfig()
        small = spec.build_arrivals(n_servers=8, service=service)
        large = spec.build_arrivals(n_servers=16, service=service)
        assert large.mean_rate() == pytest.approx(2 * small.mean_rate())

    def test_calibration_preserves_shape(self):
        spec = WorkloadSpec(
            name="c",
            load=0.5,
            arrivals=MMPPArrivals(rates=(100.0, 400.0), dwell_means=(1.0, 1.0)),
        )
        out = spec.build_arrivals(n_servers=16, service=ServiceConfig())
        assert isinstance(out, MMPPArrivals)
        assert out.rates[1] == pytest.approx(4 * out.rates[0])

    def test_absolute_rates_pass_through(self):
        arrivals = PoissonArrivals(rate=123.0)
        spec = WorkloadSpec(name="c", arrivals=arrivals)
        assert spec.build_arrivals(n_servers=16, service=ServiceConfig()) is arrivals


class TestPhasedArrivals:
    def test_mean_rate_is_time_average(self):
        spec = PhasedArrivals(phases=((1.0, 100.0), (3.0, 300.0)))
        assert spec.mean_rate() == pytest.approx(250.0)

    def test_scaled_preserves_durations(self):
        spec = PhasedArrivals(phases=((1.0, 100.0), (2.0, 200.0))).scaled(2.0)
        assert spec.phases == ((1.0, 200.0), (2.0, 400.0))

    def test_validation(self):
        with pytest.raises(WorkloadError, match="at least one phase"):
            PhasedArrivals(phases=())
        with pytest.raises(WorkloadError, match="phase 1: rate"):
            PhasedArrivals(phases=((1.0, 100.0), (1.0, -5.0)))

    def test_sampler_respects_phase_rates(self):
        import numpy as np

        spec = PhasedArrivals(phases=((1.0, 50.0), (1.0, 500.0)))
        sampler = spec.build(np.random.default_rng(0))
        t, count = 0.0, 0
        while t < 200.0:
            t += sampler.next_interarrival(t)
            count += 1
        # Long-run average ~275/s over the 2 s cycle.
        assert count / t == pytest.approx(275.0, rel=0.1)


class TestMinimalTomlParser:
    def test_matches_tomllib_on_spec_subset(self):
        tomllib = pytest.importorskip("tomllib")
        assert _parse_toml_minimal(TOML, "t") == tomllib.loads(TOML)

    def test_multiline_arrays(self):
        text = 'name = "x"\n[arrivals]\nkind = "phased"\nphases = [\n  [1.0, 100.0],\n  [2.0, 300.0],\n]\n'
        parsed = _parse_toml_minimal(text, "t")
        assert parsed["arrivals"]["phases"] == [[1.0, 100.0], [2.0, 300.0]]

    def test_inline_comments_stripped(self):
        parsed = _parse_toml_minimal('name = "x"  # trailing\n', "t")
        assert parsed == {"name": "x"}

    def test_hash_inside_string_kept(self):
        parsed = _parse_toml_minimal('name = "a#b"\n', "t")
        assert parsed == {"name": "a#b"}

    def test_errors_name_line(self):
        with pytest.raises(WorkloadError, match="t:2"):
            _parse_toml_minimal('name = "x"\nbroken line\n', "t")
