"""Tests for the bundled workload registry: every spec must round-trip."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.kvstore.cluster import Cluster
from repro.kvstore.config import ClusterConfig, ServiceConfig, SimulationConfig
from repro.workload.registry import (
    BUNDLED_SPECS_DIR,
    SAMPLE_TRACE,
    list_workloads,
    resolve_workload,
    workload,
)

#: The registry contract from the workload-spec issue: at least eight
#: bundled named specs, including a Pareto heavy-tail and an MMPP burst.
REQUIRED_SPECS = {
    "baseline",
    "uniform",
    "bimodal-fanout",
    "hotspot",
    "pareto-heavytail",
    "x4-large-values",
    "single-get",
    "mmpp-burst",
}


class TestRegistry:
    def test_at_least_eight_bundled_specs(self):
        names = list_workloads()
        assert len(names) >= 8
        assert REQUIRED_SPECS <= set(names)

    def test_sample_trace_is_bundled(self):
        assert SAMPLE_TRACE.exists()

    def test_unknown_name_lists_registry(self):
        with pytest.raises(WorkloadError, match="unknown workload.*baseline"):
            workload("not-a-workload")

    def test_resolve_accepts_paths(self):
        by_name = workload("baseline")
        by_path = resolve_workload(str(BUNDLED_SPECS_DIR / "baseline.toml"))
        assert by_path == by_name

    def test_names_match_filenames(self):
        for name in list_workloads():
            assert workload(name).name == name

    def test_lookup_is_cached(self):
        assert workload("baseline") is workload("baseline")


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(REQUIRED_SPECS | {"phased-ramp"}))
    def test_spec_builds_generators(self, name):
        spec = workload(name)
        rng = np.random.default_rng(0)
        sampler = spec.build_arrivals(
            n_servers=8, service=ServiceConfig()
        ).build(rng)
        assert sampler.next_interarrival(0.0) >= 0.0
        assert spec.fanout.build(rng).sample() >= 1
        assert spec.sizes.build(rng).sample() >= 0
        assert spec.popularity.build(100, rng).sample_distinct(1).size == 1

    @pytest.mark.parametrize("name", sorted(list_workloads()))
    def test_smoke_cell(self, name):
        """Every bundled spec must drive a small cluster run end to end."""
        cfg = ClusterConfig(
            workload=name, n_servers=8, n_clients=2, keyspace_size=2000, seed=3
        )
        result = Cluster(cfg).run(SimulationConfig(max_requests=200))
        assert result.collector.rcts(0.0).size > 0
        assert cfg.workload_fingerprint == workload(name).fingerprint()


class TestConfigResolution:
    def test_spec_overwrites_generator_fields(self):
        cfg = ClusterConfig(workload="x4-large-values", n_servers=8)
        assert cfg.fanout.k == 8
        assert cfg.sizes.p_large == 0.05

    def test_closed_loop_spec_sets_mode(self):
        cfg = ClusterConfig(workload="closed-loop", n_servers=8)
        assert cfg.closed_loop is True
        assert cfg.closed_concurrency == 8

    def test_trace_spec_materializes_records(self):
        cfg = ClusterConfig(workload="trace-sample", n_servers=8)
        assert cfg.trace is not None and len(cfg.trace) == 240
        # Remapped onto the simulator's canonical keyspace names.
        assert all(k.startswith("key:") for r in cfg.trace for k in r.keys)
        # Rescaled onto the spec's 4-second window.
        assert cfg.trace[-1].t == pytest.approx(4.0)

    def test_spec_keyspace_overrides_config(self):
        cfg = ClusterConfig(workload="trace-sample", n_servers=8, keyspace_size=77)
        assert cfg.keyspace_size == 10_000  # the spec pins it

    def test_load_calibration_uses_cluster_size(self):
        small = ClusterConfig(workload="baseline", n_servers=8)
        large = ClusterConfig(workload="baseline", n_servers=16)
        assert large.arrivals.mean_rate() == pytest.approx(
            2 * small.arrivals.mean_rate()
        )

    def test_fingerprint_lands_in_repr(self):
        """The parallel engine fingerprints repr(config); the spec hash
        must be inside it so checkpoint cells invalidate on spec change."""
        cfg = ClusterConfig(workload="baseline", n_servers=8)
        assert cfg.workload_fingerprint in repr(cfg)
