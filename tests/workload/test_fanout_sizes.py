"""Tests for fan-out and value-size distributions (analytic vs empirical)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.fanout import (
    BimodalFanout,
    FixedFanout,
    GeometricFanout,
    UniformFanout,
)
from repro.workload.sizes import (
    BimodalSize,
    FixedSize,
    LognormalSize,
    ParetoSize,
    UniformSize,
)


def empirical_mean(sampler, n=30000):
    return np.mean([sampler.sample() for _ in range(n)])


class TestFanoutSpecs:
    def test_fixed(self, rng):
        spec = FixedFanout(k=7)
        sampler = spec.build(rng)
        assert sampler.sample() == 7
        assert spec.mean() == 7.0
        assert spec.max_fanout() == 7

    def test_fixed_invalid(self):
        with pytest.raises(WorkloadError):
            FixedFanout(k=0)

    def test_uniform_range_and_mean(self, rng):
        spec = UniformFanout(lo=2, hi=8)
        sampler = spec.build(rng)
        draws = [sampler.sample() for _ in range(5000)]
        assert min(draws) == 2 and max(draws) == 8
        assert np.mean(draws) == pytest.approx(spec.mean(), rel=0.05)

    def test_uniform_invalid(self):
        with pytest.raises(WorkloadError):
            UniformFanout(lo=0, hi=5)
        with pytest.raises(WorkloadError):
            UniformFanout(lo=5, hi=4)

    def test_geometric_mean_matches_analytic(self, rng):
        spec = GeometricFanout(mean_target=5.0, cap=64)
        assert empirical_mean(spec.build(rng)) == pytest.approx(spec.mean(), rel=0.03)

    def test_geometric_cap_enforced(self, rng):
        spec = GeometricFanout(mean_target=10.0, cap=4)
        draws = [spec.build(rng).sample() for _ in range(100)]
        assert max(draws) <= 4

    def test_geometric_truncated_mean_below_target(self):
        spec = GeometricFanout(mean_target=10.0, cap=4)
        assert spec.mean() < 10.0

    def test_geometric_invalid(self):
        with pytest.raises(WorkloadError):
            GeometricFanout(mean_target=0.5)

    def test_bimodal_mean_and_values(self, rng):
        spec = BimodalFanout(small=2, large=32, p_large=0.25)
        sampler = spec.build(rng)
        draws = {sampler.sample() for _ in range(1000)}
        assert draws == {2, 32}
        assert spec.mean() == pytest.approx(2 * 0.75 + 32 * 0.25)

    def test_bimodal_invalid(self):
        with pytest.raises(WorkloadError):
            BimodalFanout(small=32, large=2)
        with pytest.raises(WorkloadError):
            BimodalFanout(p_large=0.0)


class TestSizeSpecs:
    def test_fixed(self, rng):
        spec = FixedSize(size=2048)
        assert spec.build(rng).sample() == 2048
        assert spec.mean() == 2048.0

    def test_uniform(self, rng):
        spec = UniformSize(lo=100, hi=200)
        draws = [spec.build(rng).sample() for _ in range(100)]
        assert all(100 <= d <= 200 for d in draws)

    def test_lognormal_mean_matches_analytic(self, rng):
        spec = LognormalSize(median=1000.0, sigma=1.0, cap=1 << 20)
        assert empirical_mean(spec.build(rng)) == pytest.approx(spec.mean(), rel=0.05)

    def test_lognormal_cap_accounted_in_mean(self, rng):
        uncapped = LognormalSize(median=1000.0, sigma=1.5, cap=1 << 30)
        capped = LognormalSize(median=1000.0, sigma=1.5, cap=4096)
        assert capped.mean() < uncapped.mean()
        assert empirical_mean(capped.build(rng)) == pytest.approx(
            capped.mean(), rel=0.05
        )

    def test_lognormal_invalid(self):
        with pytest.raises(WorkloadError):
            LognormalSize(median=0)
        with pytest.raises(WorkloadError):
            LognormalSize(sigma=0)
        with pytest.raises(WorkloadError):
            LognormalSize(median=1000, cap=100)

    def test_pareto_mean_matches_analytic(self, rng):
        spec = ParetoSize(lo=256.0, alpha=2.5, cap=1 << 20)
        assert empirical_mean(spec.build(rng), n=100000) == pytest.approx(
            spec.mean(), rel=0.05
        )

    def test_pareto_respects_bounds(self, rng):
        spec = ParetoSize(lo=256.0, alpha=1.5, cap=10000)
        draws = [spec.build(rng).sample() for _ in range(200)]
        assert all(256 <= d <= 10000 for d in draws)

    def test_pareto_invalid(self):
        with pytest.raises(WorkloadError):
            ParetoSize(alpha=0.0)
        with pytest.raises(WorkloadError):
            ParetoSize(alpha=-1.5)
        with pytest.raises(WorkloadError):
            ParetoSize(lo=0)
        with pytest.raises(WorkloadError):
            ParetoSize(lo=1000, cap=500)

    def test_pareto_heavy_tail_mean_matches_analytic(self, rng):
        # alpha <= 1 has an infinite untruncated mean; the cap keeps the
        # truncated mean finite and the analytic piecewise form must
        # match the empirical average (the ParetoSize bugfix regression).
        spec = ParetoSize(lo=256.0, alpha=0.9, cap=1 << 22)
        # Block draw: the truncated tail is so variable that a loop-sized
        # sample would need rel tolerances too loose to catch the bug.
        empirical = spec.build(rng).sample_block(2_000_000).mean()
        assert empirical == pytest.approx(spec.mean(), rel=0.05)

    def test_pareto_alpha_one_log_case(self, rng):
        spec = ParetoSize(lo=256.0, alpha=1.0, cap=1 << 22)
        assert spec.mean() == pytest.approx(
            256.0 * (1.0 + np.log((1 << 22) / 256.0))
        )
        empirical = spec.build(rng).sample_block(2_000_000).mean()
        assert empirical == pytest.approx(spec.mean(), rel=0.05)

    def test_pareto_alpha_continuity_at_one(self):
        # The piecewise mean() must be continuous across the log case.
        near = ParetoSize(lo=256.0, alpha=1.0 + 1e-9, cap=1 << 22).mean()
        at = ParetoSize(lo=256.0, alpha=1.0, cap=1 << 22).mean()
        assert near == pytest.approx(at, rel=1e-4)

    def test_bimodal_size(self, rng):
        spec = BimodalSize(small=100, large=10000, p_large=0.5)
        draws = {spec.build(rng).sample() for _ in range(200)}
        assert draws == {100, 10000}
        assert spec.mean() == pytest.approx(5050.0)

    def test_bimodal_size_invalid(self):
        with pytest.raises(WorkloadError):
            BimodalSize(small=100, large=100)
