"""Tests for the scheduler interfaces and registry."""

import pytest

from repro.errors import SchedulerError, UnknownSchedulerError
from repro.schedulers.base import NullTagger, SchedulingPolicy
from repro.schedulers.registry import (
    available_schedulers,
    create_policy,
    register_policy,
)

from tests.schedulers.helpers import drain, make_context, make_op


class TestBookkeeping:
    def test_length_tracks_push_pop(self):
        queue = create_policy("fcfs").make_queue(make_context())
        assert len(queue) == 0
        queue.push(make_op(), 0.0)
        queue.push(make_op(), 0.0)
        assert len(queue) == 2
        queue.pop(0.0)
        assert len(queue) == 1

    def test_queued_demand_tracks_contents(self):
        queue = create_policy("fcfs").make_queue(make_context())
        queue.push(make_op(demand=1.5), 0.0)
        queue.push(make_op(demand=2.5), 0.0)
        assert queue.queued_demand == pytest.approx(4.0)
        queue.pop(0.0)
        assert queue.queued_demand == pytest.approx(2.5)
        queue.pop(0.0)
        assert queue.queued_demand == pytest.approx(0.0)

    def test_pop_empty_raises(self):
        queue = create_policy("fcfs").make_queue(make_context())
        with pytest.raises(SchedulerError):
            queue.pop(0.0)

    def test_push_stamps_enqueue_time(self):
        queue = create_policy("fcfs").make_queue(make_context())
        op = make_op()
        queue.push(op, 3.5)
        assert op.enqueue_time == 3.5


class TestRegistry:
    def test_known_schedulers_present(self):
        names = available_schedulers()
        for expected in ("fcfs", "sbf", "das", "rein-ml", "sjf-op", "sjf-req",
                         "lrpt-last", "edf", "random"):
            assert expected in names

    def test_unknown_scheduler_error_lists_known(self):
        with pytest.raises(UnknownSchedulerError) as info:
            create_policy("mystery")
        assert "fcfs" in str(info.value)

    def test_create_with_params(self):
        policy = create_policy("das", k_min=2.0)
        assert policy.k_min == 2.0

    def test_duplicate_registration_rejected(self):
        class Fake(SchedulingPolicy):
            name = "fcfs"

        with pytest.raises(SchedulerError):
            register_policy(Fake)

    def test_unnamed_policy_rejected(self):
        class NoName(SchedulingPolicy):
            pass

        with pytest.raises(SchedulerError):
            register_policy(NoName)

    def test_describe(self):
        assert create_policy("fcfs").describe() == "fcfs"
        text = create_policy("das", k_min=2.0).describe()
        assert text.startswith("das(")
        assert "k_min=2.0" in text

    def test_default_tagger_is_null(self):
        tagger = create_policy("fcfs").make_tagger()
        assert isinstance(tagger, NullTagger)
        # NullTagger must be a no-op.
        op = make_op()
        tagger.tag_request(op.request, 0.0, None)
        assert op.tag == {}


class TestWorkConservation:
    """Every policy must return exactly the pushed operations."""

    @pytest.mark.parametrize("name", ["fcfs", "random", "sjf-op", "sjf-req",
                                      "lrpt-last", "edf", "sbf", "rein-ml", "das"])
    def test_push_n_pop_n(self, name):
        queue = create_policy(name).make_queue(make_context())
        ops = [make_op(demand=d, request_id=i) for i, d in
               enumerate([3.0, 1.0, 2.0, 5.0, 4.0])]
        for op in ops:
            queue.push(op, 0.0)
        served = drain(queue, now=1.0)
        assert sorted(id(o) for o in served) == sorted(id(o) for o in ops)
        assert len(queue) == 0
        assert queue.queued_demand == pytest.approx(0.0)
