"""Tests for the start-time fair queueing baseline."""

import pytest

from repro.errors import ConfigError
from repro.kvstore.items import OpKind, Operation, Request
from repro.schedulers.registry import create_policy
from repro.schedulers.sfq import SfqPolicy

from tests.schedulers.helpers import drain, make_context


def client_op(client_id: int, demand: float, request_id: int = 0) -> Operation:
    request = Request(request_id=request_id, client_id=client_id, arrival_time=0.0)
    op = Operation(
        request=request,
        key=f"c{client_id}-r{request_id}",
        kind=OpKind.GET,
        value_size=int(demand * 1e6),
        server_id=0,
        demand=demand,
    )
    request.operations.append(op)
    return op


class TestSfq:
    def test_registered(self):
        assert create_policy("sfq").name == "sfq"

    def test_interleaves_clients_fairly(self):
        """Client 0 floods the queue; client 1's single op is served after
        at most one of client 0's ops, not after the whole flood."""
        queue = create_policy("sfq").make_queue(make_context())
        for i in range(5):
            queue.push(client_op(0, demand=1.0, request_id=i), 0.0)
        queue.push(client_op(1, demand=1.0, request_id=99), 0.0)
        order = [(op.request.client_id, op.request_id) for op in drain(queue)]
        position = order.index((1, 99))
        assert position <= 1  # near the front despite arriving last

    def test_round_robin_between_equal_flows(self):
        queue = create_policy("sfq").make_queue(make_context())
        for i in range(3):
            queue.push(client_op(0, demand=1.0, request_id=i), 0.0)
            queue.push(client_op(1, demand=1.0, request_id=i), 0.0)
        clients = [op.request.client_id for op in drain(queue)]
        # Perfect alternation for equal weights and demands.
        assert clients == [0, 1, 0, 1, 0, 1]

    def test_small_demand_flow_gets_more_ops(self):
        """A flow of small ops progresses through more operations per unit
        of virtual time than a flow of big ops (fair in *work*, not ops)."""
        queue = create_policy("sfq").make_queue(make_context())
        for i in range(4):
            queue.push(client_op(0, demand=1.0, request_id=i), 0.0)
            queue.push(client_op(1, demand=4.0, request_id=i), 0.0)
        order = [op.request.client_id for op in drain(queue)]
        # In the first six served ops, the small-demand client got more.
        head = order[:6]
        assert head.count(0) > head.count(1)

    def test_virtual_time_monotone(self):
        queue = create_policy("sfq").make_queue(make_context())
        seen = []
        for i in range(4):
            queue.push(client_op(i % 2, demand=2.0, request_id=i), 0.0)
        while len(queue):
            queue.pop(0.0)
            seen.append(queue.virtual_time)
        assert seen == sorted(seen)

    def test_invalid_weight(self):
        with pytest.raises(ConfigError):
            SfqPolicy(default_weight=0).make_queue(make_context())

    def test_runs_in_cluster(self):
        from repro.kvstore.cluster import run_cluster
        from repro.kvstore.config import SimulationConfig

        from tests.conftest import small_config

        result = run_cluster(
            small_config(scheduler="sfq"), SimulationConfig(max_requests=200)
        )
        assert result.requests_completed == 200
