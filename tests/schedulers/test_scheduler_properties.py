"""Property-based tests: invariants every scheduling policy must hold."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedulers.registry import available_schedulers, create_policy

from tests.schedulers.helpers import make_context, make_op

ALL_POLICIES = sorted(set(available_schedulers()))


@st.composite
def op_script(draw):
    """A random interleaving of pushes and pops (pops never exceed pushes)."""
    events = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["push", "pop"]),
                st.floats(min_value=1e-6, max_value=100.0),
            ),
            min_size=1,
            max_size=60,
        )
    )
    script = []
    balance = 0
    for kind, demand in events:
        if kind == "pop" and balance == 0:
            continue
        balance += 1 if kind == "push" else -1
        script.append((kind, demand))
    return script


@pytest.mark.parametrize("policy_name", ALL_POLICIES)
@given(script=op_script())
@settings(max_examples=40, deadline=None)
def test_no_loss_no_invention(policy_name, script):
    """Ops popped are exactly ops pushed (no loss, no duplication)."""
    queue = create_policy(policy_name).make_queue(make_context())
    pushed = []
    popped = []
    now = 0.0
    for i, (kind, demand) in enumerate(script):
        now += 0.5
        if kind == "push":
            op = make_op(demand=demand, request_id=i, tag={"rpt": demand,
                                                           "bottleneck": demand,
                                                           "total_demand": demand,
                                                           "deadline": now + demand})
            pushed.append(op)
            queue.push(op, now)
        else:
            popped.append(queue.pop(now))
    while len(queue):
        now += 0.5
        popped.append(queue.pop(now))
    assert sorted(id(o) for o in popped) == sorted(id(o) for o in pushed)


@pytest.mark.parametrize("policy_name", ALL_POLICIES)
@given(demands=st.lists(st.floats(min_value=1e-6, max_value=10.0), min_size=1, max_size=30))
@settings(max_examples=40, deadline=None)
def test_queued_demand_is_sum_of_contents(policy_name, demands):
    queue = create_policy(policy_name).make_queue(make_context())
    total = 0.0
    for i, demand in enumerate(demands):
        queue.push(make_op(demand=demand, request_id=i, tag={"rpt": demand}), 0.0)
        total += demand
    assert queue.queued_demand == pytest.approx(total)
    while len(queue):
        op = queue.pop(1.0)
        total -= op.demand
        assert queue.queued_demand == pytest.approx(total, abs=1e-9)


@given(demands=st.lists(st.floats(min_value=0.001, max_value=10.0), min_size=2, max_size=30))
@settings(max_examples=60, deadline=None)
def test_sjf_op_pops_in_nondecreasing_demand(demands):
    queue = create_policy("sjf-op").make_queue(make_context())
    for i, demand in enumerate(demands):
        queue.push(make_op(demand=demand, request_id=i), 0.0)
    served = []
    while len(queue):
        served.append(queue.pop(0.0).demand)
    assert served == sorted(served)


@given(demands=st.lists(st.floats(min_value=0.001, max_value=10.0), min_size=2, max_size=30))
@settings(max_examples=60, deadline=None)
def test_das_without_estimates_matches_sbf_order(demands):
    """With identical tags and no feedback, DAS front band == SBF order."""
    das = create_policy("das", last_band=False).make_queue(make_context())
    sbf = create_policy("sbf").make_queue(make_context())
    for i, demand in enumerate(demands):
        tag = {"rpt": demand, "bottleneck": demand}
        das.push(make_op(demand=demand, request_id=i, tag=dict(tag)), 0.0)
        sbf.push(make_op(demand=demand, request_id=i, tag=dict(tag)), 0.0)
    das_order = []
    sbf_order = []
    while len(das):
        das_order.append(das.pop(0.0).request_id)
        sbf_order.append(sbf.pop(0.0).request_id)
    assert das_order == sbf_order
