"""Shared helpers for scheduler unit tests."""

from __future__ import annotations

import numpy as np

from repro.kvstore.items import OpKind, Operation, Request
from repro.schedulers.base import QueueContext


def make_context(server_id: int = 0, seed: int = 0) -> QueueContext:
    return QueueContext(server_id=server_id, rng=np.random.default_rng(seed))


def make_op(
    demand: float = 1.0,
    key: str = "k",
    server_id: int = 0,
    request_id: int = 0,
    arrival: float = 0.0,
    tag: dict | None = None,
) -> Operation:
    """A standalone operation with its own single-op request."""
    request = Request(request_id=request_id, client_id=0, arrival_time=arrival)
    op = Operation(
        request=request,
        key=key,
        kind=OpKind.GET,
        value_size=int(demand * 1e6),
        server_id=server_id,
        demand=demand,
    )
    request.operations.append(op)
    if tag:
        op.tag.update(tag)
    return op


def make_multiget(slices, request_id: int = 0, arrival: float = 0.0) -> Request:
    """A request with one op per (server_id, demand) slice."""
    request = Request(request_id=request_id, client_id=0, arrival_time=arrival)
    for i, (server_id, demand) in enumerate(slices):
        request.operations.append(
            Operation(
                request=request,
                key=f"r{request_id}-k{i}",
                kind=OpKind.GET,
                value_size=int(demand * 1e6),
                server_id=server_id,
                demand=demand,
                index=i,
            )
        )
    return request


def drain(queue, now: float = 0.0) -> list:
    """Pop everything and return the operations in service order."""
    out = []
    while len(queue):
        out.append(queue.pop(now))
    return out
