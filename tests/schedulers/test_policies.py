"""Ordering-semantics tests for each baseline scheduling policy."""

import pytest

from repro.errors import ConfigError
from repro.schedulers.edf import TAG_DEADLINE, DeadlineTagger, EdfPolicy
from repro.schedulers.lrpt import LrptLastPolicy
from repro.schedulers.rein import TAG_BOTTLENECK, BottleneckTagger, ReinMlPolicy
from repro.schedulers.registry import create_policy
from repro.schedulers.sjf import TAG_TOTAL_DEMAND, TotalDemandTagger

from tests.schedulers.helpers import drain, make_context, make_multiget, make_op


class TestFcfs:
    def test_serves_in_arrival_order(self):
        queue = create_policy("fcfs").make_queue(make_context())
        ops = [make_op(demand=d, request_id=i) for i, d in enumerate([5, 1, 3])]
        for i, op in enumerate(ops):
            queue.push(op, float(i))
        assert drain(queue) == ops


class TestRandom:
    def test_deterministic_given_seed(self):
        def run(seed):
            queue = create_policy("random").make_queue(make_context(seed=seed))
            ops = [make_op(request_id=i) for i in range(10)]
            for op in ops:
                queue.push(op, 0.0)
            return [o.request_id for o in drain(queue)]

        assert run(1) == run(1)
        assert run(1) != run(2)  # overwhelmingly likely

    def test_not_always_fifo(self):
        queue = create_policy("random").make_queue(make_context(seed=3))
        ops = [make_op(request_id=i) for i in range(20)]
        for op in ops:
            queue.push(op, 0.0)
        assert [o.request_id for o in drain(queue)] != list(range(20))


class TestSjfOp:
    def test_smallest_operation_first(self):
        queue = create_policy("sjf-op").make_queue(make_context())
        for demand in (3.0, 1.0, 2.0):
            queue.push(make_op(demand=demand), 0.0)
        assert [o.demand for o in drain(queue)] == [1.0, 2.0, 3.0]

    def test_fifo_among_equal_demands(self):
        queue = create_policy("sjf-op").make_queue(make_context())
        ops = [make_op(demand=1.0, request_id=i) for i in range(3)]
        for op in ops:
            queue.push(op, 0.0)
        assert [o.request_id for o in drain(queue)] == [0, 1, 2]


class TestSjfReq:
    def test_orders_by_request_total_demand(self):
        queue = create_policy("sjf-req").make_queue(make_context())
        tagger = TotalDemandTagger()
        big = make_multiget([(0, 1.0), (1, 9.0)], request_id=1)  # total 10
        small = make_multiget([(0, 2.0)], request_id=2)  # total 2
        for request in (big, small):
            tagger.tag_request(request, 0.0, None)
        queue.push(big.operations[0], 0.0)  # the op itself is small (1.0)
        queue.push(small.operations[0], 0.0)
        served = drain(queue)
        assert served[0].request_id == 2  # smaller *request* first

    def test_tagger_stamps_all_ops(self):
        request = make_multiget([(0, 1.0), (1, 2.0)])
        TotalDemandTagger().tag_request(request, 0.0, None)
        assert all(
            op.tag[TAG_TOTAL_DEMAND] == pytest.approx(3.0)
            for op in request.operations
        )


class TestSbf:
    def test_orders_by_bottleneck(self):
        queue = create_policy("sbf").make_queue(make_context())
        tagger = BottleneckTagger()
        # Request A: large total (4.0) but small bottleneck (2.0 per server).
        a = make_multiget([(0, 2.0), (1, 2.0)], request_id=1)
        # Request B: small total (3.0) but one big slice (bottleneck 3.0).
        b = make_multiget([(0, 3.0)], request_id=2)
        for request in (a, b):
            tagger.tag_request(request, 0.0, None)
        queue.push(b.operations[0], 0.0)
        queue.push(a.operations[0], 0.0)
        assert [o.request_id for o in drain(queue)] == [1, 2]

    def test_bottleneck_tag_value(self):
        request = make_multiget([(0, 1.0), (0, 2.0), (1, 2.5)])
        BottleneckTagger().tag_request(request, 0.0, None)
        assert request.operations[0].tag[TAG_BOTTLENECK] == pytest.approx(3.0)


class TestLrptLast:
    def test_oversized_requests_served_last(self):
        policy = LrptLastPolicy(threshold_k=2.0, ewma_alpha=1.0)
        queue = policy.make_queue(make_context())
        tagger = policy.make_tagger()
        normal = [make_multiget([(0, 1.0)], request_id=i) for i in range(3)]
        giant = make_multiget([(0, 50.0)], request_id=99)
        for request in normal[:2] + [giant] + normal[2:]:
            tagger.tag_request(request, 0.0, None)
            queue.push(request.operations[0], 0.0)
        order = [o.request_id for o in drain(queue)]
        assert order[-1] == 99

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            LrptLastPolicy(threshold_k=0).make_queue(make_context())
        with pytest.raises(ConfigError):
            LrptLastPolicy(ewma_alpha=0).make_queue(make_context())


class TestEdf:
    def test_earliest_deadline_first(self):
        queue = create_policy("edf").make_queue(make_context())
        tagger = DeadlineTagger(slack_factor=10.0, base_slack=0.0)
        late = make_multiget([(0, 5.0)], request_id=1, arrival=0.0)  # ddl 50
        soon = make_multiget([(0, 1.0)], request_id=2, arrival=0.0)  # ddl 10
        for request in (late, soon):
            tagger.tag_request(request, 0.0, None)
        queue.push(late.operations[0], 0.0)
        queue.push(soon.operations[0], 0.0)
        assert [o.request_id for o in drain(queue)] == [2, 1]

    def test_deadline_includes_arrival(self):
        tagger = DeadlineTagger(slack_factor=1.0, base_slack=0.5)
        request = make_multiget([(0, 2.0)], arrival=10.0)
        tagger.tag_request(request, 10.0, None)
        assert request.operations[0].tag[TAG_DEADLINE] == pytest.approx(12.5)

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            EdfPolicy(slack_factor=-1)


class TestReinMl:
    def test_small_bottlenecks_before_large(self):
        policy = ReinMlPolicy(split_k=2.0, aging_limit=1e9, ewma_alpha=1.0)
        queue = policy.make_queue(make_context())
        tagger = policy.make_tagger()
        small = [make_multiget([(0, 1.0)], request_id=i) for i in range(2)]
        large = make_multiget([(0, 40.0)], request_id=77)
        for request in small[:1] + [large] + small[1:]:
            tagger.tag_request(request, 0.0, None)
            queue.push(request.operations[0], 0.0)
        order = [o.request_id for o in drain(queue)]
        assert order[-1] == 77

    def test_aging_promotes_starving_op(self):
        policy = ReinMlPolicy(split_k=2.0, aging_limit=3.0, ewma_alpha=0.5)
        queue = policy.make_queue(make_context())
        tagger = policy.make_tagger()
        # Seed the mean with a small request so the giant classifies low.
        seed = make_multiget([(0, 1.0)], request_id=1)
        tagger.tag_request(seed, 0.0, None)
        queue.push(seed.operations[0], 0.0)
        large = make_multiget([(0, 40.0)], request_id=77)
        tagger.tag_request(large, 0.0, None)
        queue.push(large.operations[0], 0.0)
        small = make_multiget([(0, 1.0)], request_id=2)
        tagger.tag_request(small, 0.0, None)
        queue.push(small.operations[0], 0.0)
        # Far in the future the large op has aged past its budget and is
        # promoted ahead of both small ones.
        served = queue.pop(now=1e6)
        assert served.request_id == 77
        assert queue.promotions == 1

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            ReinMlPolicy(split_k=0).make_queue(make_context())
        with pytest.raises(ConfigError):
            ReinMlPolicy(aging_limit=0).make_queue(make_context())
