"""Property-based end-to-end invariants over random cluster configurations.

Whatever the (small) configuration, a finished run must conserve work:
every generated request completes exactly once, operation counts match
request fan-outs, completion times are causal, and the same seed replays
bit-for-bit.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvstore.cluster import Cluster
from repro.kvstore.config import ClusterConfig, ServiceConfig, SimulationConfig
from repro.workload.arrivals import PoissonArrivals
from repro.workload.fanout import UniformFanout
from repro.workload.popularity import UniformPopularity
from repro.workload.sizes import UniformSize


@st.composite
def cluster_configs(draw):
    n_servers = draw(st.integers(1, 6))
    scheduler = draw(
        st.sampled_from(["fcfs", "sbf", "das", "sjf-req", "rein-ml", "edf"])
    )
    max_fanout = draw(st.integers(1, 6))
    seed = draw(st.integers(0, 10_000))
    replication = draw(st.integers(1, min(2, n_servers)))
    service = ServiceConfig(per_op_overhead=1e-4, byte_rate=10e6, noise_cv=0.0)
    return ClusterConfig(
        n_servers=n_servers,
        n_clients=draw(st.integers(1, 3)),
        seed=seed,
        scheduler=scheduler,
        keyspace_size=50,
        arrivals=PoissonArrivals(rate=2000.0),
        fanout=UniformFanout(lo=1, hi=max_fanout),
        sizes=UniformSize(lo=100, hi=2000),
        popularity=UniformPopularity(),
        service=service,
        replication_factor=replication,
    )


@given(config=cluster_configs())
@settings(max_examples=25, deadline=None)
def test_run_conserves_requests_and_operations(config):
    cluster = Cluster(config)
    result = cluster.run(SimulationConfig(max_requests=60, warmup_fraction=0.0))

    # Every request generated completed exactly once.
    assert result.requests_sent == 60
    assert result.requests_completed == 60
    records = result.collector.records
    assert len(records) == 60
    assert len({r.request_id for r in records}) == 60

    # Operation conservation: completions+failures == total fan-out.
    total_ops = sum(r.fanout for r in records)
    assert result.collector.ops_completed + result.collector.ops_failed == total_ops
    assert result.collector.ops_failed == 0  # preloaded keyspace: no misses

    # Causality: completion after arrival, positive RCT.
    for record in records:
        assert record.completion_time > record.arrival_time

    # Server-side accounting agrees.
    served = sum(s.ops_served for s in cluster.servers.values())
    assert served == total_ops


@given(config=cluster_configs())
@settings(max_examples=10, deadline=None)
def test_same_config_replays_identically(config):
    def run_once():
        return list(
            Cluster(config)
            .run(SimulationConfig(max_requests=40, warmup_fraction=0.0))
            .rcts()
        )

    assert run_once() == run_once()
