"""Acceptance tests for the observability layer.

Both halves of the system — the simulator's experiment runner and the
asyncio runtime under chaos — must produce metrics snapshots (JSON and
Prometheus text) whose DAS gauges equal the queues' internal truth at
snapshot time, plus sampled request traces whose tag → enqueue →
service → reply timestamps are monotone.
"""

import asyncio
import dataclasses
import json

import pytest

from repro.experiments.runner import run_scenario, write_observability_artifacts
from repro.experiments.scenarios import get_scenario
from repro.kvstore.cluster import Cluster
from repro.kvstore.config import ClusterConfig, SimulationConfig
from repro.obs import RequestTrace, Tracer
from repro.runtime import DelayReplies, LocalCluster


def _das_gauge(snapshot, name, server):
    return snapshot["metrics"]["gauges"][f'{name}{{server="{server}"}}']


class TestSimulatorObservability:
    def run_cluster(self, **cfg_kwargs):
        cfg = ClusterConfig(scheduler="das", n_servers=4, **cfg_kwargs)
        cluster = Cluster(cfg, tracer=Tracer(sample_rate=1.0))
        result = cluster.run(SimulationConfig(max_requests=300))
        return cluster, result

    def test_das_gauges_match_queue_internal_truth(self):
        cluster, result = self.run_cluster()
        snap = result.metrics_snapshot()
        for sid, server in cluster.servers.items():
            queue = server.queue
            assert _das_gauge(snap, "das_k", sid) == queue.controller.k
            assert _das_gauge(snap, "das_front_length", sid) == queue.front_length
            assert _das_gauge(snap, "das_last_length", sid) == queue.last_length
            assert _das_gauge(snap, "das_demotions_total", sid) == queue.demotions
            assert _das_gauge(snap, "das_promotions_total", sid) == queue.promotions
            assert _das_gauge(snap, "das_threshold", sid) == pytest.approx(
                queue.threshold
            )

    def test_traces_cover_request_lifecycle_monotonically(self):
        cluster, result = self.run_cluster()
        traces = cluster.tracer.traces
        assert traces, "sample_rate=1 run must trace every request"
        for trace in traces:
            assert trace.ops, "every multiget has at least one operation"
            assert trace.monotone(), (
                f"non-monotone trace for request {trace.request_id}"
            )
        # Spans carry the scheduler's band decision.
        bands = {span.band for t in traces for span in t.ops}
        assert bands <= {"front", "last"}
        assert "front" in bands

    def test_experiment_artifacts_written_next_to_results(self, tmp_path):
        scenario = get_scenario("E1", scale=0.02)
        das = [s for s in scenario.schedulers if s.label == "DAS"]
        scenario = dataclasses.replace(
            scenario, points=scenario.points[:1], schedulers=tuple(das)
        )
        result = run_scenario(scenario)
        paths = write_observability_artifacts(result, tmp_path)
        assert sorted(p.name for p in paths) == [
            "E1.metrics.json",
            "E1.metrics.prom",
        ]
        data = json.loads((tmp_path / "E1.metrics.json").read_text())
        assert data["experiment_id"] == "E1"
        cell = data["cells"][0]
        assert cell["scheduler"] == "DAS"
        assert any(k.startswith("das_k{") for k in cell["metrics"]["gauges"])
        prom = (tmp_path / "E1.metrics.prom").read_text()
        assert prom.count("# TYPE das_k gauge") == 1
        assert 'scheduler="DAS"' in prom


class TestRuntimeObservability:
    def test_chaos_run_snapshot_matches_queue_truth(self):
        async def scenario():
            async with LocalCluster(
                n_servers=2, scheduler="das", trace_sample_rate=1.0
            ) as cluster:
                await cluster.preload(
                    {f"key{i}": bytes(64) for i in range(16)}
                )
                # Chaos: one server delays replies while the other takes
                # a crash/restart, with traffic continuing throughout.
                cluster.inject(1, DelayReplies(delay=0.01, count=4))
                for i in range(12):
                    await cluster.client.multiget([f"key{i}", f"key{i + 4}"])
                await cluster.crash(0)
                await cluster.restart(0)
                await cluster.client.multiget(["key0", "key1"])

                snap = cluster.metrics_snapshot()
                text = cluster.metrics_text()
                for server in cluster.servers:
                    queue = server.executor.queue
                    sid = server.server_id
                    assert _das_gauge(snap, "das_k", sid) == queue.controller.k
                    assert (
                        _das_gauge(snap, "das_front_length", sid)
                        == queue.front_length
                    )
                    assert (
                        _das_gauge(snap, "das_last_length", sid)
                        == queue.last_length
                    )
                    assert (
                        _das_gauge(snap, "das_demotions_total", sid)
                        == queue.demotions
                    )
                # Counters survived the crash/restart (shared registry).
                assert snap["metrics"]["counters"][
                    'server_crashes_total{server="0"}'
                ] == 1.0
                # Prometheus text is one valid scrape: a single TYPE line
                # per metric name even with two servers' label sets.
                assert text.count("# TYPE das_k gauge") == 1
                assert text.count("# TYPE executor_ops_total counter") == 1
                json.dumps(snap)  # JSON-able end to end
                return snap

        snap = asyncio.run(scenario())
        assert snap["trace_sampled"] > 0

    def test_runtime_trace_spans_are_monotone(self):
        async def scenario():
            async with LocalCluster(
                n_servers=2, scheduler="das", trace_sample_rate=1.0
            ) as cluster:
                await cluster.client.put("a", b"x" * 32)
                await cluster.client.put("b", b"y" * 32)
                for _ in range(5):
                    await cluster.client.multiget(["a", "b"])
                traces = cluster.tracer.traces
                assert traces
                with_spans = [t for t in traces if t.ops]
                assert with_spans, "sampled requests must carry server spans"
                for trace in with_spans:
                    assert isinstance(trace, RequestTrace)
                    assert trace.monotone()
                    for span in trace.ops:
                        assert span.band in {"front", "last"}

        asyncio.run(scenario())

    def test_stats_wire_message(self):
        async def scenario():
            async with LocalCluster(n_servers=2, scheduler="das") as cluster:
                await cluster.client.put("k", b"v")
                stats = await cluster.client.server_stats(0)
                assert stats["ops_served"] >= 1
                assert "metrics" in stats
                assert any(
                    name.startswith("das_k{")
                    for name in stats["metrics"]["gauges"]
                )

        asyncio.run(scenario())
