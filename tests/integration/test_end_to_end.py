"""End-to-end assertions of the paper's claims (at reduced scale).

These tests run real (small) simulations and check the *shape* of the
results the paper reports — who wins and roughly by how much — not exact
numbers.  They are the repository's regression net for the scientific
result itself.
"""


import pytest

from repro import ClusterConfig, ServiceConfig, SimulationConfig, run_cluster
from repro.kvstore.service import DegradationEvent
from repro.workload import BimodalFanout, GeometricFanout, PoissonArrivals
from repro.workload.requests import arrival_rate_for_load
from repro.workload.sizes import LognormalSize
from repro.workload.popularity import UniformPopularity


def paper_config(scheduler: str, load: float = 0.8, **overrides) -> ClusterConfig:
    """A scaled-down version of the paper's evaluation setup."""
    service = ServiceConfig()
    fanout = overrides.pop("fanout", GeometricFanout(mean_target=5.0, cap=64))
    sizes = overrides.pop("sizes", LognormalSize(median=1024.0, sigma=1.0, cap=1 << 18))
    mean_speed = overrides.pop("mean_speed", 1.0)
    n_servers = overrides.pop("n_servers", 8)
    rate = arrival_rate_for_load(
        load, fanout.mean(), service.mean_demand(sizes.mean()), n_servers,
        mean_speed=mean_speed,
    )
    return ClusterConfig(
        n_servers=n_servers,
        n_clients=2,
        seed=21,
        scheduler=scheduler,
        keyspace_size=4000,
        arrivals=overrides.pop("arrivals", PoissonArrivals(rate=rate)),
        fanout=fanout,
        sizes=sizes,
        # Uniform popularity keeps per-server load at the calibrated
        # target; Zipf skew overloads the hot key's owner and swamps the
        # scheduler effect (see E6 for the skew axis).
        popularity=UniformPopularity(),
        service=service,
        **overrides,
    )


def mean_rct(scheduler: str, requests: int = 6000, **overrides) -> float:
    config = paper_config(scheduler, **overrides)
    return run_cluster(config, SimulationConfig(max_requests=requests)).mean_rct


class TestHeadlineClaims:
    """Abstract: 'DAS reduces mean RCT by more than 15~50% vs FCFS'."""

    def test_das_beats_fcfs_by_paper_margin_at_heavy_load(self):
        fcfs = mean_rct("fcfs", load=0.8)
        das = mean_rct("das", load=0.8)
        reduction = 1.0 - das / fcfs
        assert reduction > 0.30  # paper: 15~50%+

    def test_das_beats_fcfs_at_moderate_load(self):
        fcfs = mean_rct("fcfs", load=0.6)
        das = mean_rct("das", load=0.6)
        assert das < fcfs

    def test_sbf_also_beats_fcfs(self):
        """Sanity: the comparator must itself be strong, else beating it
        means nothing."""
        fcfs = mean_rct("fcfs", load=0.8)
        sbf = mean_rct("sbf", load=0.8)
        assert 1.0 - sbf / fcfs > 0.25

    def test_das_close_to_or_better_than_sbf_on_uniform_cluster(self):
        """On a homogeneous, healthy cluster DAS degrades gracefully to
        SBF-like ordering (within a few percent)."""
        sbf = mean_rct("sbf", load=0.8)
        das = mean_rct("das", load=0.8)
        assert das < sbf * 1.10


class TestAdaptivityClaims:
    """Abstract: 'adaptive to the time-varying server load and performance'."""

    def test_das_beats_sbf_under_degradation(self):
        # Degrade to a *stable* slow point (local load 0.55/0.6 < 1): an
        # overloaded queue's unbounded drift would swamp the comparison.
        duration = 3.0
        degradations = {
            0: (DegradationEvent(duration * 0.2, 0.6),),
            1: (DegradationEvent(duration * 0.2, 0.6),),
        }
        sim = SimulationConfig(duration=duration, warmup_fraction=0.25)
        results = {}
        for scheduler in ("sbf", "das"):
            config = paper_config(
                scheduler, load=0.55, n_servers=16, degradations=degradations
            )
            results[scheduler] = run_cluster(config, sim).mean_rct
        assert results["das"] < results["sbf"] * 0.95  # >=5% better

    def test_das_beats_sbf_with_heterogeneous_speeds(self):
        speeds = tuple([0.5, 0.75] + [1.0] * 12 + [1.25, 1.5])
        kwargs = dict(
            n_servers=16, server_speeds=speeds,
            mean_speed=sum(speeds) / len(speeds), load=0.7,
        )
        sbf = mean_rct("sbf", **kwargs)
        das = mean_rct("das", **kwargs)
        assert das < sbf * 0.88  # >=12% better (measured: ~21-26%)

    def test_das_rate_estimates_track_degradation(self):
        from repro.kvstore.cluster import Cluster

        duration = 2.0
        config = paper_config(
            "das",
            load=0.5,
            degradations={0: (DegradationEvent(0.3, 0.5),)},
        )
        cluster = Cluster(config)
        cluster.run(SimulationConfig(duration=duration, warmup_fraction=0.1))
        estimates = cluster.clients[0].estimates
        assert estimates.rate(0) == pytest.approx(0.5, abs=0.15)
        assert estimates.rate(2) == pytest.approx(1.0, abs=0.15)


class TestMultigetStructure:
    def test_rct_grows_with_fanout(self):
        """The max-structure: more keys -> later last completion."""
        from repro.workload.fanout import FixedFanout

        small = mean_rct("fcfs", load=0.5, fanout=FixedFanout(k=2))
        large = mean_rct("fcfs", load=0.5, fanout=FixedFanout(k=12))
        assert large > small

    def test_single_get_neutralizes_multiget_schedulers(self):
        """At fan-out 1, SBF == SJF == per-op size order; the gap to FCFS
        shrinks but size-based ordering still wins on mean."""
        from repro.workload.fanout import FixedFanout

        fcfs = mean_rct("fcfs", load=0.8, fanout=FixedFanout(k=1))
        sbf = mean_rct("sbf", load=0.8, fanout=FixedFanout(k=1))
        assert sbf < fcfs

    def test_bimodal_mix_amplifies_gains(self):
        fanout = BimodalFanout(small=2, large=32, p_large=0.1)
        fcfs = mean_rct("fcfs", load=0.8, fanout=fanout)
        das = mean_rct("das", load=0.8, fanout=fanout)
        assert 1.0 - das / fcfs > 0.4


class TestFairness:
    def test_das_tail_not_catastrophically_worse_than_fcfs_median_regime(self):
        """Size-based schedulers trade tail for mean; DAS's aging bounds
        the damage: p999 stays within two orders of magnitude of FCFS."""
        config_fcfs = paper_config("fcfs", load=0.8)
        config_das = paper_config("das", load=0.8)
        sim = SimulationConfig(max_requests=6000)
        fcfs = run_cluster(config_fcfs, sim).summary()
        das = run_cluster(config_das, sim).summary()
        assert das.p999 < fcfs.p999 * 100


class TestDeterminism:
    def test_full_run_bitwise_reproducible(self):
        a = run_cluster(paper_config("das"), SimulationConfig(max_requests=2000))
        b = run_cluster(paper_config("das"), SimulationConfig(max_requests=2000))
        assert list(a.rcts()) == list(b.rcts())

    def test_scheduler_change_keeps_workload_fixed(self):
        """Same seed, different scheduler: identical request populations."""
        a = run_cluster(paper_config("fcfs"), SimulationConfig(max_requests=2000))
        b = run_cluster(paper_config("das"), SimulationConfig(max_requests=2000))
        ids_a = sorted(r.request_id for r in a.collector.records)
        ids_b = sorted(r.request_id for r in b.collector.records)
        assert ids_a == ids_b
        arrivals_a = sorted(r.arrival_time for r in a.collector.records)
        arrivals_b = sorted(r.arrival_time for r in b.collector.records)
        assert arrivals_a == arrivals_b
