"""Lane routing, the weighted-fair dispatcher, and the laned policy."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.kvstore.cluster import run_cluster
from repro.kvstore.config import SimulationConfig
from repro.runtime.scheduling import QueuedOp
from repro.schedulers.base import QueueContext
from repro.schedulers.registry import create_policy
from repro.sharding import LARGE, SMALL, SizeLaneQueue

from tests.conftest import small_config


def make_queue(**params) -> SizeLaneQueue:
    policy = create_policy("laned", inner="fcfs", **params)
    return policy.make_queue(QueueContext(server_id=0, rng=np.random.default_rng(0)))


def op(size: int, demand: float = 1.0) -> QueuedOp:
    return QueuedOp(key=f"k{size}", demand=demand, size=size)


SMALL_OP = 512          # below every cutoff used here
LARGE_OP = 1 << 20      # above every cutoff used here


class TestRouting:
    def test_routes_by_size_and_stamps_lane(self):
        queue = make_queue(cutoff_initial=8192.0, adaptive_cutoff=False)
        small, large = op(SMALL_OP), op(LARGE_OP)
        queue.push(small, 0.0)
        queue.push(large, 0.0)
        assert small.tag["lane"] == SMALL
        assert large.tag["lane"] == LARGE
        assert queue.lane_length(SMALL) == 1
        assert queue.lane_length(LARGE) == 1
        assert queue.routed == {SMALL: 1, LARGE: 1}
        assert len(queue) == 2
        assert queue.queued_demand == pytest.approx(2.0)

    def test_small_lane_never_holds_a_large_op(self):
        # The structural form of the routing invariant: a small op can
        # never be queued behind a large one because no large op is ever
        # in the small lane's queue.
        queue = make_queue(cutoff_initial=8192.0, adaptive_cutoff=False)
        rng = np.random.default_rng(3)
        for _ in range(500):
            queue.push(op(LARGE_OP if rng.random() < 0.3 else SMALL_OP), 0.0)
        small_n, large_n = queue.lane_length(SMALL), queue.lane_length(LARGE)
        assert small_n + large_n == len(queue)
        drained = [queue.pop(0.0) for _ in range(len(queue))]
        assert sum(1 for o in drained if o.tag["lane"] == SMALL) == small_n
        assert all(
            (o.size <= 8192.0) == (o.tag["lane"] == SMALL) for o in drained
        )

    def test_cutoff_adapts_from_pushed_sizes(self):
        queue = make_queue(
            cutoff_quantile=0.97,
            cutoff_min_samples=64,
            cutoff_refresh=64,
            cutoff_initial=1 << 30,
        )
        rng = np.random.default_rng(5)
        for _ in range(512):
            pushed = op(LARGE_OP if rng.random() < 0.02 else SMALL_OP)
            queue.push(pushed, 0.0)
            queue.pop(0.0)
        assert queue.cutoff == SMALL_OP
        probe = op(LARGE_OP)
        queue.push(probe, 0.0)
        assert probe.tag["lane"] == LARGE

    def test_invalid_share_rejected(self):
        for share in (0.0, 1.0, -0.2, 1.7):
            with pytest.raises(ConfigError):
                make_queue(small_share=share)


class TestWeightedFairDispatch:
    def test_work_conserving_single_lane(self):
        # Only larges queued: they are served back to back — a lane
        # share is a weight, not a throttle.
        queue = make_queue(cutoff_initial=8192.0, adaptive_cutoff=False)
        for _ in range(10):
            queue.push(op(LARGE_OP, demand=10.0), 0.0)
        lanes = [queue.pop(0.0).tag["lane"] for _ in range(10)]
        assert lanes == [LARGE] * 10

    def test_share_bounds_large_interference(self):
        # Both lanes backlogged at small_share=0.9: larges may take at
        # most ~10% of dispatched demand, so the first large comes out
        # almost immediately (work conservation / no starvation) and the
        # second must wait out ~9x its demand in smalls.
        queue = make_queue(
            small_share=0.9, cutoff_initial=8192.0, adaptive_cutoff=False
        )
        for _ in range(200):
            queue.push(op(SMALL_OP, demand=1.0), 0.0)
        for _ in range(5):
            queue.push(op(LARGE_OP, demand=10.0), 0.0)
        order = [queue.pop(0.0).tag["lane"] for _ in range(205)]
        first_large = order.index(LARGE)
        second_large = order.index(LARGE, first_large + 1)
        assert first_large <= 2
        # Credit catch-up: 10 demand at share 0.1 costs ~100 normalized,
        # small ops at share 0.9 repay ~1.11 each -> ~90 smalls between
        # consecutive larges.
        assert second_large - first_large >= 80
        # Fairness bound over any backlogged prefix: large demand stays
        # within its share (+ one op of slack per WFQ).
        small_demand = large_demand = 0.0
        for lane in order[:180]:  # both lanes backlogged throughout
            if lane == SMALL:
                small_demand += 1.0
            else:
                large_demand += 10.0
            assert large_demand <= (1.0 / 9.0) * small_demand + 10.0

    def test_idle_credit_is_not_banked(self):
        # A long small-only stretch must not let a later large burst
        # monopolize the server: the waking lane's credit is clamped
        # forward to the busy lane's progress.
        queue = make_queue(
            small_share=0.5, cutoff_initial=8192.0, adaptive_cutoff=False
        )
        for _ in range(100):
            queue.push(op(SMALL_OP, demand=1.0), 0.0)
            queue.pop(0.0)
        # Large lane was idle the whole time; now both arrive together.
        for _ in range(10):
            queue.push(op(LARGE_OP, demand=1.0), 0.0)
        for _ in range(10):
            queue.push(op(SMALL_OP, demand=1.0), 0.0)
        first_four = [queue.pop(0.0).tag["lane"] for _ in range(4)]
        # 50/50 split over equal demands: strict alternation, not a
        # large burst repaying 100 ops of banked idle time.
        assert first_four == [SMALL, LARGE, SMALL, LARGE]

    def test_ledger_tracks_dispatch(self):
        queue = make_queue(
            small_share=0.5, cutoff_initial=8192.0, adaptive_cutoff=False
        )
        queue.push(op(SMALL_OP, demand=2.0), 0.0)
        queue.push(op(LARGE_OP, demand=3.0), 0.0)
        while len(queue):
            queue.pop(0.0)
        assert queue.served == {SMALL: 1, LARGE: 1}
        assert queue.consumed[SMALL] == pytest.approx(2.0)
        assert queue.consumed[LARGE] == pytest.approx(3.0)


class TestClusterIntegration:
    def test_laned_cluster_runs_and_reports_lane_stats(self):
        config = small_config(
            scheduler="laned",
            load=0.6,
            value_size=1024,
            scheduler_params={
                "inner": "das",
                "small_share": 0.8,
                "cutoff_initial": 4096.0,
                "adaptive_cutoff": False,
            },
        )
        result = run_cluster(config, SimulationConfig(max_requests=400))
        assert result.requests_completed == 400
        assert result.lanes, "laned run must export per-server lane stats"
        for stats in result.lanes.values():
            assert stats["cutoff"] == 4096.0
            shares = {
                lane: block["share"] for lane, block in stats["lanes"].items()
            }
            assert shares == {SMALL: pytest.approx(0.8), LARGE: pytest.approx(0.2)}
        # Fixed 1 KiB values sit below the cutoff: everything routes small.
        assert all(
            s["lanes"][LARGE]["routed"] == 0 for s in result.lanes.values()
        )
        served = sum(s["lanes"][SMALL]["served"] for s in result.lanes.values())
        assert served > 0
        assert "lanes" in result.metrics_snapshot()

    def test_unlaned_cluster_has_empty_lane_stats(self):
        result = run_cluster(
            small_config(scheduler="das"), SimulationConfig(max_requests=200)
        )
        assert result.lanes == {}
