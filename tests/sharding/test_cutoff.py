"""Cutoff adaptation: the windowed quantile must track the size stream."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sharding import WindowedQuantileCutoff


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(quantile=0.0),
        dict(quantile=1.0),
        dict(window=1),
        dict(min_samples=0),
        dict(min_samples=600, window=512),
        dict(refresh=0),
        dict(initial=0.0),
    ])
    def test_bad_params_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            WindowedQuantileCutoff(**kwargs)


class TestAdaptation:
    def test_holds_initial_until_min_samples(self):
        est = WindowedQuantileCutoff(min_samples=64, refresh=1, initial=4096.0)
        for _ in range(63):
            est.observe(100.0)
        assert est.cutoff == 4096.0
        assert est.updates == 0
        est.observe(100.0)
        assert est.updates == 1
        assert est.cutoff == 100.0

    def test_converges_to_stream_quantile(self):
        # A deterministic shuffle of 1..window: nearest-rank q=0.9 over
        # the full window is exactly the 90th percentile of the support.
        est = WindowedQuantileCutoff(
            quantile=0.9, window=500, min_samples=100, refresh=50
        )
        rng = np.random.default_rng(7)
        for size in rng.permutation(np.arange(1, 501)):
            est.observe(float(size))
        ordered = np.arange(1, 501)
        assert est.cutoff == ordered[int(0.9 * 499)]

    def test_window_ages_out_old_regime(self):
        # Drift: after a full window of the new regime, the old sizes
        # must have no influence on the cutoff.
        est = WindowedQuantileCutoff(
            quantile=0.5, window=128, min_samples=16, refresh=16
        )
        for _ in range(256):
            est.observe(100.0)
        assert est.cutoff == 100.0
        for _ in range(256):
            est.observe(100000.0)
        assert est.cutoff == 100000.0

    def test_bimodal_cutoff_separates_modes(self):
        # 98% small / 2% large at q=0.97: the cutoff sits on the small
        # mode, so routing splits exactly along the modes.
        est = WindowedQuantileCutoff(quantile=0.97, window=512, min_samples=64)
        rng = np.random.default_rng(11)
        for _ in range(4096):
            est.observe(262144.0 if rng.random() < 0.02 else 512.0)
        assert est.cutoff == 512.0
        assert est.is_small(512.0)
        assert not est.is_small(262144.0)

    def test_disabled_never_moves(self):
        est = WindowedQuantileCutoff(
            initial=8192.0, enabled=False, min_samples=1, refresh=1
        )
        for size in (1.0, 1e9, 50.0, 1e9):
            est.observe(size)
        assert est.cutoff == 8192.0
        assert est.updates == 0
        assert est.observed == 4
        assert est.is_small(8192.0)
        assert not est.is_small(8193.0)

    def test_refresh_amortizes_updates(self):
        est = WindowedQuantileCutoff(min_samples=10, refresh=10)
        for i in range(100):
            est.observe(float(i))
        assert est.updates == 10
