"""X4 lane cells must be deterministic under the parallel engine.

The lane layer adds per-server state (cutoff window, WFQ credits) on the
hot dispatch path; a laned cell run in a worker process must stay
byte-identical to the same cell run sequentially.
"""

import dataclasses

import pytest

from repro.experiments.parallel import run_scenario_parallel
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import get_scenario

SCALE = 0.02


def lane_subset(scale=SCALE):
    """X4 narrowed to the headline comparison plus one ablation arm."""
    scenario = get_scenario("X4", scale=scale)
    keep = {"DAS", "Lanes+DAS", "Lanes+DAS static cutoff"}
    return dataclasses.replace(
        scenario,
        schedulers=tuple(s for s in scenario.schedulers if s.label in keep),
    )


@pytest.fixture(scope="module")
def sequential_result():
    return run_scenario(lane_subset())


class TestX4Determinism:
    def test_parallel_matches_sequential(self, sequential_result):
        parallel = run_scenario_parallel(lane_subset(), workers=2)
        assert set(parallel.cells) == set(sequential_result.cells)
        for key, seq_cell in sequential_result.cells.items():
            par_cell = parallel.cells[key]
            assert par_cell.summary == seq_cell.summary
            assert par_cell.requests == seq_cell.requests
            assert par_cell.metrics == seq_cell.metrics
            assert par_cell.traces == seq_cell.traces

    def test_repeated_sequential_runs_identical(self, sequential_result):
        again = run_scenario(lane_subset())
        for key, cell in sequential_result.cells.items():
            assert again.cells[key].summary == cell.summary
            assert again.cells[key].metrics == cell.metrics

    def test_lane_gauges_exported(self, sequential_result):
        for (x, label), cell in sequential_result.cells.items():
            names = {
                key.split("{", 1)[0] for key in cell.metrics["gauges"]
            }
            if label.startswith("Lanes"):
                assert "lane_size_cutoff" in names
                assert "lane_queue_length" in names
                assert "lane_routed_total" in names
                assert "lane_served_demand" in names
            else:
                assert "lane_size_cutoff" not in names
