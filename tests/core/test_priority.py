"""Unit tests for DAS priority computations."""

import pytest

from repro.core.estimator import ServerEstimates
from repro.core.priority import (
    completion_horizon,
    remaining_processing_time,
    residual_processing_time,
)
from repro.kvstore.items import Feedback

from tests.schedulers.helpers import make_multiget


def estimates_with(rates=None, work=None):
    view = ServerEstimates(alpha_work=1.0, alpha_rate=1.0, drain=False)
    for server_id, rate in (rates or {}).items():
        view.observe(
            Feedback(server_id, queued_work=(work or {}).get(server_id, 0.0),
                     queue_length=0, rate_sample=rate, timestamp=0.0)
        )
    return view


class TestRemainingProcessingTime:
    def test_without_estimates_is_bottleneck(self):
        request = make_multiget([(0, 1.0), (0, 2.0), (1, 2.5)])
        assert remaining_processing_time(request, 0.0, None) == pytest.approx(3.0)

    def test_slow_server_inflates_rpt(self):
        request = make_multiget([(0, 2.0), (1, 2.0)])
        view = estimates_with(rates={0: 0.5, 1: 1.0})
        # Server 0's slice takes 2.0/0.5 = 4.0 at its estimated speed.
        assert remaining_processing_time(request, 0.0, view) == pytest.approx(4.0)

    def test_fast_server_deflates_rpt(self):
        request = make_multiget([(0, 2.0)])
        view = estimates_with(rates={0: 2.0})
        assert remaining_processing_time(request, 0.0, view) == pytest.approx(1.0)

    def test_unknown_servers_use_default_rate(self):
        request = make_multiget([(5, 3.0)])
        view = estimates_with(rates={})
        assert remaining_processing_time(request, 0.0, view) == pytest.approx(3.0)

    def test_empty_request(self):
        request = make_multiget([])
        assert remaining_processing_time(request, 0.0, None) == 0.0


class TestCompletionHorizon:
    def test_includes_queued_work(self):
        request = make_multiget([(0, 1.0)])
        view = estimates_with(rates={0: 1.0}, work={0: 5.0})
        assert completion_horizon(request, 0.0, view) == pytest.approx(6.0)

    def test_max_over_servers(self):
        request = make_multiget([(0, 1.0), (1, 1.0)])
        view = estimates_with(rates={0: 1.0, 1: 1.0}, work={0: 0.0, 1: 9.0})
        assert completion_horizon(request, 0.0, view) == pytest.approx(10.0)

    def test_without_estimates_equals_rpt(self):
        request = make_multiget([(0, 2.0), (1, 3.0)])
        assert completion_horizon(request, 0.0, None) == pytest.approx(
            remaining_processing_time(request, 0.0, None)
        )


class TestResidual:
    def test_equals_rpt_before_any_completion(self):
        request = make_multiget([(0, 1.0), (1, 2.0)])
        assert residual_processing_time(request, 0.0, None) == pytest.approx(
            remaining_processing_time(request, 0.0, None)
        )

    def test_drops_finished_operations(self):
        request = make_multiget([(0, 1.0), (1, 2.0)])
        request.operations[1].finish_time = 5.0  # the bottleneck finished
        assert residual_processing_time(request, 5.0, None) == pytest.approx(1.0)

    def test_zero_when_all_done(self):
        request = make_multiget([(0, 1.0)])
        request.operations[0].finish_time = 1.0
        assert residual_processing_time(request, 1.0, None) == 0.0
