"""Unit tests for EWMA estimators and per-server estimates."""

import pytest

from repro.core.estimator import EwmaEstimator, ServerEstimates
from repro.errors import ConfigError
from repro.kvstore.items import Feedback


def feedback(server_id=0, queued_work=1.0, queue_length=5, rate=1.0, t=0.0):
    return Feedback(
        server_id=server_id,
        queued_work=queued_work,
        queue_length=queue_length,
        rate_sample=rate,
        timestamp=t,
    )


class TestEwma:
    def test_first_sample_initializes(self):
        ewma = EwmaEstimator(alpha=0.1)
        assert ewma.value is None
        ewma.update(10.0)
        assert ewma.value == 10.0

    def test_smoothing_math(self):
        ewma = EwmaEstimator(alpha=0.5)
        ewma.update(10.0)
        ewma.update(20.0)
        assert ewma.value == pytest.approx(15.0)
        ewma.update(15.0)
        assert ewma.value == pytest.approx(15.0)

    def test_alpha_one_tracks_last(self):
        ewma = EwmaEstimator(alpha=1.0)
        ewma.update(1.0)
        ewma.update(99.0)
        assert ewma.value == 99.0

    def test_invalid_alpha(self):
        with pytest.raises(ConfigError):
            EwmaEstimator(alpha=0.0)
        with pytest.raises(ConfigError):
            EwmaEstimator(alpha=1.5)

    def test_value_or_default(self):
        ewma = EwmaEstimator(alpha=0.5)
        assert ewma.value_or(7.0) == 7.0
        ewma.update(3.0)
        assert ewma.value_or(7.0) == 3.0

    def test_reset(self):
        ewma = EwmaEstimator(alpha=0.5)
        ewma.update(3.0)
        ewma.reset()
        assert ewma.value is None
        assert ewma.samples == 0

    def test_initial_value(self):
        ewma = EwmaEstimator(alpha=0.5, initial=2.0)
        assert ewma.value == 2.0
        ewma.update(4.0)
        assert ewma.value == pytest.approx(3.0)


class TestServerEstimates:
    def test_unknown_server_defaults(self):
        estimates = ServerEstimates(default_rate=1.5)
        assert estimates.rate(9) == 1.5
        assert estimates.queued_work(9, now=100.0) == 0.0

    def test_observe_updates_rate_and_work(self):
        estimates = ServerEstimates(alpha_work=1.0, alpha_rate=1.0, drain=False)
        estimates.observe(feedback(server_id=2, queued_work=3.0, rate=0.5, t=1.0))
        assert estimates.rate(2) == 0.5
        assert estimates.queued_work(2, now=1.0) == 3.0

    def test_drain_decays_work_between_observations(self):
        estimates = ServerEstimates(alpha_work=1.0, drain=True)
        estimates.observe(feedback(queued_work=2.0, t=10.0))
        assert estimates.queued_work(0, now=10.0) == pytest.approx(2.0)
        assert estimates.queued_work(0, now=11.0) == pytest.approx(1.0)
        assert estimates.queued_work(0, now=20.0) == 0.0  # floored

    def test_drain_disabled_keeps_work(self):
        estimates = ServerEstimates(alpha_work=1.0, drain=False)
        estimates.observe(feedback(queued_work=2.0, t=10.0))
        assert estimates.queued_work(0, now=100.0) == 2.0

    def test_negative_queued_work_clamped(self):
        estimates = ServerEstimates(alpha_work=1.0)
        estimates.observe(feedback(queued_work=-5.0, t=0.0))
        assert estimates.queued_work(0, now=0.0) == 0.0

    def test_zero_rate_sample_ignored(self):
        estimates = ServerEstimates(alpha_rate=1.0)
        estimates.observe(feedback(rate=0.8, t=0.0))
        estimates.observe(feedback(rate=0.0, t=1.0))
        assert estimates.rate(0) == 0.8

    def test_observation_counters(self):
        estimates = ServerEstimates()
        estimates.observe(feedback(server_id=1))
        estimates.observe(feedback(server_id=1))
        estimates.observe(feedback(server_id=2))
        assert estimates.observations(1) == 2
        assert estimates.observations(3) == 0
        assert estimates.feedback_count == 3
        assert estimates.known_servers() == [1, 2]

    def test_invalid_default_rate(self):
        with pytest.raises(ConfigError):
            ServerEstimates(default_rate=0)

    def test_wait_estimate_mirrors_queued_work(self):
        estimates = ServerEstimates(alpha_work=1.0, drain=False)
        estimates.observe(feedback(queued_work=4.0, t=0.0))
        assert estimates.wait_estimate(0, now=0.0) == pytest.approx(4.0)
