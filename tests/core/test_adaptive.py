"""Unit tests for the adaptive demotion-threshold controller."""

import pytest

from repro.core.adaptive import AdaptiveThreshold
from repro.errors import ConfigError


def controller(**kwargs):
    defaults = dict(
        k_init=4.0, k_min=1.0, k_max=16.0, q_low=2.0, q_high=8.0,
        gain=0.1, alpha=1.0, adapt_interval=0.0,
    )
    defaults.update(kwargs)
    return AdaptiveThreshold(**defaults)


class TestAdjustment:
    def test_high_pressure_shrinks_k(self):
        ctrl = controller()
        for t in range(10):
            ctrl.observe(20, now=float(t))
        assert ctrl.k < 4.0
        assert ctrl.adjustments > 0

    def test_low_pressure_grows_k(self):
        ctrl = controller()
        for t in range(10):
            ctrl.observe(0, now=float(t))
        assert ctrl.k > 4.0

    def test_comfort_band_is_stable(self):
        ctrl = controller()
        for t in range(10):
            ctrl.observe(5, now=float(t))  # inside [2, 8]
        assert ctrl.k == 4.0
        assert ctrl.adjustments == 0

    def test_k_clamped_at_min(self):
        ctrl = controller(k_min=2.0)
        for t in range(1000):
            ctrl.observe(100, now=float(t))
        assert ctrl.k == pytest.approx(2.0)

    def test_k_clamped_at_max(self):
        ctrl = controller(k_max=8.0)
        for t in range(1000):
            ctrl.observe(0, now=float(t))
        assert ctrl.k == pytest.approx(8.0)

    def test_disabled_controller_never_moves(self):
        ctrl = controller(enabled=False)
        for t in range(100):
            ctrl.observe(100, now=float(t))
        assert ctrl.k == 4.0
        assert ctrl.adjustments == 0

    def test_adapt_interval_gates_adjustments(self):
        ctrl = controller(adapt_interval=10.0)
        ctrl.observe(100, now=0.0)
        ctrl.observe(100, now=1.0)  # within the interval: no adjustment
        assert ctrl.adjustments == 1
        ctrl.observe(100, now=10.0)
        assert ctrl.adjustments == 2

    def test_pressure_is_smoothed(self):
        ctrl = controller(alpha=0.5, adapt_interval=1e9)  # no adjustments
        ctrl.observe(0, now=0.0)
        ctrl.observe(10, now=1.0)
        assert ctrl.queue_pressure == pytest.approx(5.0)


class TestThreshold:
    def test_threshold_scales(self):
        ctrl = controller()
        assert ctrl.threshold(2.0) == pytest.approx(8.0)

    def test_repr(self):
        assert "k=" in repr(controller())


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"k_min": 0.0},
            {"k_init": 0.5, "k_min": 1.0},
            {"k_init": 99.0},  # above k_max
            {"q_low": 9.0},  # above q_high
            {"gain": 0.0},
            {"gain": 1.0},
            {"adapt_interval": -1.0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            controller(**kwargs)
