"""Unit tests for the DAS queue and tagger."""

import pytest

from repro.core.adaptive import AdaptiveThreshold
from repro.core.das import TAG_HORIZON, TAG_RPT, DasPolicy, DasQueue, DasTagger
from repro.core.estimator import ServerEstimates
from repro.errors import ConfigError
from repro.kvstore.items import Feedback

from tests.schedulers.helpers import drain, make_context, make_multiget, make_op


def das_queue(**kwargs) -> DasQueue:
    controller = AdaptiveThreshold(
        k_init=kwargs.pop("k_init", 2.0),
        k_min=kwargs.pop("k_min", 2.0),
        k_max=kwargs.pop("k_max", 2.0),
        enabled=kwargs.pop("adaptive", False),
    )
    return DasQueue(
        make_context(),
        controller,
        scale_alpha=kwargs.pop("scale_alpha", 1.0),
        starvation_factor=kwargs.pop("starvation_factor", 1e9),
        **kwargs,
    )


def push_tagged(queue, rpt, request_id=0, now=0.0):
    op = make_op(demand=rpt, request_id=request_id, tag={TAG_RPT: rpt})
    queue.push(op, now)
    return op


class TestTagger:
    def test_stamps_rpt_and_horizon(self):
        request = make_multiget([(0, 1.0), (1, 2.0)])
        DasTagger().tag_request(request, 0.0, None)
        for op in request.operations:
            assert op.tag[TAG_RPT] == pytest.approx(2.0)
            assert op.tag[TAG_HORIZON] == pytest.approx(2.0)

    def test_rpt_uses_rate_estimates(self):
        request = make_multiget([(0, 1.0), (1, 2.0)])
        view = ServerEstimates(alpha_rate=1.0, drain=False)
        view.observe(Feedback(0, 0.0, 0, 0.25, 0.0))  # server 0 at 25% speed
        DasTagger().tag_request(request, 0.0, view)
        assert request.operations[0].tag[TAG_RPT] == pytest.approx(4.0)


class TestFrontOrdering:
    def test_srpt_order_within_front_band(self):
        queue = das_queue()
        for i, rpt in enumerate([3.0, 1.0, 2.0]):
            push_tagged(queue, rpt, request_id=i)
        assert [o.tag[TAG_RPT] for o in drain(queue)] == [1.0, 2.0, 3.0]

    def test_fifo_front_when_srpt_disabled(self):
        queue = das_queue(srpt_front=False)
        ops = [push_tagged(queue, rpt, request_id=i, now=float(i))
               for i, rpt in enumerate([3.0, 1.0, 2.0])]
        assert drain(queue, now=10.0) == ops

    def test_untagged_op_falls_back_to_demand(self):
        queue = das_queue()
        op_small = make_op(demand=1.0, request_id=1)
        op_large = make_op(demand=5.0, request_id=2)
        queue.push(op_large, 0.0)
        queue.push(op_small, 0.0)
        assert queue.pop(0.0) is op_small


class TestDemotion:
    def test_outlier_goes_to_last_band(self):
        queue = das_queue()  # fixed k=2, alpha=1
        push_tagged(queue, 1.0, request_id=0)  # seeds the scale
        giant = push_tagged(queue, 10.0, request_id=1)  # 10 > 2*1
        tiny = push_tagged(queue, 1.0, request_id=2)
        assert queue.demotions == 1
        assert queue.last_length == 1
        order = drain(queue)
        assert order[-1] is giant
        assert order[0].request_id == 0 or order[0] is tiny

    def test_first_op_never_demoted(self):
        queue = das_queue()
        push_tagged(queue, 100.0)
        assert queue.demotions == 0

    def test_no_demotion_when_last_band_disabled(self):
        queue = das_queue(last_band=False)
        push_tagged(queue, 1.0)
        push_tagged(queue, 100.0)
        assert queue.demotions == 0
        assert queue.last_length == 0

    def test_last_band_keeps_rpt_order(self):
        # Small scale_alpha keeps the threshold anchored near the seed op
        # even as outliers fold into the EWMA.
        queue = das_queue(scale_alpha=0.01)
        push_tagged(queue, 1.0, request_id=0)
        a = push_tagged(queue, 50.0, request_id=1)
        b = push_tagged(queue, 10.0, request_id=2)
        assert queue.demotions == 2
        queue.pop(0.0)  # the small front op
        assert queue.pop(0.0) is b  # smaller demoted RPT first
        assert queue.pop(0.0) is a

    def test_threshold_follows_scale(self):
        queue = das_queue()
        push_tagged(queue, 4.0)
        assert queue.rpt_scale == pytest.approx(4.0)
        assert queue.threshold == pytest.approx(8.0)


class TestStarvationBound:
    def test_aged_op_promoted_to_front(self):
        queue = das_queue(starvation_factor=5.0)
        push_tagged(queue, 1.0, request_id=0, now=0.0)
        giant = push_tagged(queue, 10.0, request_id=1, now=0.0)
        assert queue.demotions == 1
        # Keep feeding small ops; far enough in the future the giant's wait
        # exceeds 5 * threshold and it jumps the queue.
        push_tagged(queue, 1.0, request_id=2, now=100.0)
        served = queue.pop(now=100.0)
        assert served is giant
        assert queue.promotions == 1

    def test_no_promotion_before_budget(self):
        queue = das_queue(starvation_factor=1e9)
        push_tagged(queue, 1.0, request_id=0)
        push_tagged(queue, 10.0, request_id=1)
        assert queue.pop(now=50.0).request_id == 0
        assert queue.promotions == 0


class TestPromotionTombstones:
    """Promotions tombstone heap entries; band accounting must see through.

    Regression: the old implementation tracked promoted ops in an id()
    set, so ``last_length`` kept counting tombstones and draining a
    pure-tombstone last band raised IndexError.
    """

    def _promote_all(self, n_giants=4):
        queue = das_queue(starvation_factor=1.0, scale_alpha=0.01)
        push_tagged(queue, 1.0, request_id=0, now=0.0)  # seeds the scale
        giants = [
            push_tagged(queue, 10.0 + i, request_id=i + 1, now=0.0)
            for i in range(n_giants)
        ]
        assert queue.demotions == n_giants
        assert queue.last_length == n_giants
        return queue, giants

    def test_band_lengths_exclude_tombstones(self):
        queue, giants = self._promote_all()
        # Far in the future every giant is past its starvation budget;
        # one pop promotes all of them and serves the first.
        first = queue.pop(now=1e6)
        assert first in giants
        assert queue.promotions == len(giants)
        assert queue.last_length == 0  # all tombstones, none live
        assert queue.front_length == len(giants) - 1 + 1  # rest + seed op

    def test_drain_after_promoting_every_last_band_op(self):
        queue, giants = self._promote_all()
        served = [queue.pop(now=1e6) for _ in range(len(queue))]
        # No IndexError on the pure-tombstone heap, nothing lost, nothing
        # served twice: the seed op plus every giant, exactly once each.
        assert len(queue) == 0
        assert queue.last_length == 0 and queue.front_length == 0
        assert sorted(op.request_id for op in served) == list(
            range(len(giants) + 1)
        )

    def test_promoted_op_annotated(self):
        queue, giants = self._promote_all(n_giants=1)
        served = queue.pop(now=1e6)
        assert served is giants[0]
        from repro.obs import OBS_PROMOTED

        assert served.tag[OBS_PROMOTED] is True

    def test_mixed_serve_and_promote_keeps_counts_consistent(self):
        queue = das_queue(starvation_factor=1.0, scale_alpha=0.01)
        push_tagged(queue, 1.0, request_id=0, now=0.0)
        push_tagged(queue, 10.0, request_id=1, now=0.0)
        push_tagged(queue, 20.0, request_id=2, now=0.0)
        queue.pop(now=0.0)  # seed op from the front
        queue.pop(now=0.0)  # smallest giant via _pop_last
        assert queue.last_length == 1
        queue.pop(now=1e6)  # remaining giant, via promotion
        assert queue.promotions == 1
        assert queue.last_length == 0
        assert len(queue) == 0

    def test_band_annotations_written_at_enqueue(self):
        from repro.obs import OBS_BAND, OBS_THRESHOLD

        queue = das_queue(scale_alpha=0.01)
        seed = push_tagged(queue, 1.0, request_id=0)
        giant = push_tagged(queue, 50.0, request_id=1)
        assert seed.tag[OBS_BAND] == "front"
        assert giant.tag[OBS_BAND] == "last"
        assert giant.tag[OBS_THRESHOLD] == pytest.approx(2.0)  # k=2 * scale 1


class TestPolicy:
    def test_policy_builds_working_queue(self):
        queue = DasPolicy().make_queue(make_context())
        assert isinstance(queue, DasQueue)

    def test_needs_feedback_flag(self):
        assert DasPolicy.needs_feedback is True

    def test_ablation_flags_propagate(self):
        policy = DasPolicy(adaptive=False, last_band=False, srpt_front=False)
        queue = policy.make_queue(make_context())
        assert queue.controller.enabled is False
        assert queue._last_band_enabled is False
        assert queue._srpt_front is False

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            DasQueue(make_context(), AdaptiveThreshold(), scale_alpha=0.0)
        with pytest.raises(ConfigError):
            DasQueue(make_context(), AdaptiveThreshold(), starvation_factor=0.0)

    def test_adaptive_demotes_more_under_pressure(self):
        policy = DasPolicy(
            k_init=8.0, k_min=1.5, k_max=8.0, q_low=1.0, q_high=4.0,
            gain=0.2, ctrl_alpha=1.0, adapt_interval=0.0, scale_alpha=0.1,
        )
        queue = policy.make_queue(make_context())
        # Build sustained pressure with a long queue of small ops.
        now = 0.0
        for i in range(50):
            push_tagged(queue, 1.0, request_id=i, now=now)
            now += 0.01
        assert queue.controller.k < 8.0  # shrank under pressure
