"""Tests for experiment scenario definitions."""

import pytest

from repro.errors import ConfigError
from repro.experiments.scenarios import SCENARIOS, get_scenario


class TestScenarioFactories:
    @pytest.mark.parametrize("experiment_id", sorted(SCENARIOS))
    def test_every_scenario_builds(self, experiment_id):
        scenario = get_scenario(experiment_id, scale=0.1)
        assert scenario.experiment_id == experiment_id
        assert scenario.points
        assert scenario.schedulers
        assert scenario.title
        assert scenario.metric

    @pytest.mark.parametrize("experiment_id", sorted(SCENARIOS))
    def test_scenario_points_have_valid_configs(self, experiment_id):
        scenario = get_scenario(experiment_id, scale=0.1)
        for point in scenario.points:
            # ClusterConfig/SimulationConfig validate in __post_init__;
            # reaching here means every point is self-consistent.
            assert point.config.n_servers >= 1
            assert (point.sim.duration is None) != (point.sim.max_requests is None)

    def test_unknown_id_rejected(self):
        with pytest.raises(ConfigError, match="E1"):
            get_scenario("E99")

    def test_scale_shrinks_requests(self):
        small = get_scenario("E1", scale=0.1)
        full = get_scenario("E1", scale=1.0)
        assert small.points[0].sim.max_requests < full.points[0].sim.max_requests

    def test_invalid_scale(self):
        with pytest.raises(ConfigError):
            get_scenario("E1", scale=0)

    def test_e1_sweeps_loads(self):
        scenario = get_scenario("E1", scale=0.1)
        assert [p.x for p in scenario.points] == [0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]

    def test_e5_points_differ_in_degradations(self):
        scenario = get_scenario("E5", scale=0.1)
        degraded_counts = [len(p.config.degradations) for p in scenario.points]
        assert degraded_counts == [0, 1, 2, 4]

    def test_e7_has_das_fcfs_sbf(self):
        scenario = get_scenario("E7", scale=0.1)
        labels = {s.label for s in scenario.schedulers}
        assert {"FCFS", "Rein-SBF", "DAS"} <= labels

    def test_a1_has_ablation_variants(self):
        scenario = get_scenario("A1", scale=0.1)
        labels = [s.label for s in scenario.schedulers]
        assert any("adapt" in label for label in labels)
        assert any("last band" in label for label in labels)

    def test_a2_feedback_modes_differ(self):
        scenario = get_scenario("A2", scale=0.1)
        modes = {p.config.feedback.mode for p in scenario.points}
        assert len(modes) == 3  # piggyback, periodic, none

    def test_identical_seeds_across_schedulers(self):
        """All cells of one point must see the same workload."""
        scenario = get_scenario("E1", scale=0.1)
        seeds = {p.config.seed for p in scenario.points}
        assert len(seeds) == 1
