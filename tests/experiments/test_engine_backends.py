"""Full-cell trace equality between the heap and array event cores.

The strongest statement of determinism guarantee #7: complete experiment
cells (E2 tail-vs-load and the X6 chaos matrix), run end to end under
``REPRO_ENGINE=heap`` and ``REPRO_ENGINE=array``, must produce identical
summaries, metrics snapshots, and request traces — with pooled timeouts
on *and* off — and the parallel engine must stay cell-identical with the
array backend as the default.
"""

import dataclasses

import pytest

from repro.experiments.parallel import run_scenario_parallel
from repro.experiments.runner import run_cell, run_scenario
from repro.experiments.scenarios import get_scenario
from repro.sim.core import Environment

SCALE = 0.05


def _cell_payload(cell):
    """Everything a cell reports except wall-clock time."""
    return {
        "summary": dataclasses.asdict(cell.summary),
        "mean_slowdown": cell.mean_slowdown,
        "p99_slowdown": cell.p99_slowdown,
        "utilization": cell.utilization,
        "requests": cell.requests,
        "metrics": cell.metrics,
        "traces": cell.traces,
        "prometheus": cell.prometheus,
    }


def _run_one_cell(monkeypatch, engine, experiment_id, pooled):
    monkeypatch.setenv("REPRO_ENGINE", engine)
    if not pooled:
        monkeypatch.setattr(Environment, "pooled_timeout", Environment.timeout)
    scenario = get_scenario(experiment_id, scale=SCALE)
    cell = run_cell(scenario.points[0], scenario.schedulers[-1])
    return _cell_payload(cell)


@pytest.mark.parametrize("experiment_id", ["E2", "X6"])
@pytest.mark.parametrize("pooled", [True, False], ids=["pooled", "unpooled"])
def test_full_cell_trace_identical_across_backends(
    monkeypatch, experiment_id, pooled
):
    heap = _run_one_cell(monkeypatch, "heap", experiment_id, pooled)
    array = _run_one_cell(monkeypatch, "array", experiment_id, pooled)
    assert array == heap


def _tiny_e2():
    scenario = get_scenario("E2", scale=SCALE)
    return dataclasses.replace(
        scenario,
        points=scenario.points[:2],
        schedulers=scenario.schedulers[-2:],
    )


def test_parallel_cells_identical_with_array_default(monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    scenario = _tiny_e2()
    sequential = run_scenario(scenario)
    parallel = run_scenario_parallel(scenario, workers=2)
    assert set(parallel.cells) == set(sequential.cells)
    for key, seq_cell in sequential.cells.items():
        assert _cell_payload(parallel.cells[key]) == _cell_payload(seq_cell)


def test_parallel_heap_matches_parallel_array(monkeypatch):
    scenario = _tiny_e2()
    monkeypatch.setenv("REPRO_ENGINE", "heap")
    heap = run_scenario_parallel(scenario, workers=2)
    monkeypatch.setenv("REPRO_ENGINE", "array")
    array = run_scenario_parallel(_tiny_e2(), workers=2)
    for key, heap_cell in heap.cells.items():
        assert _cell_payload(array.cells[key]) == _cell_payload(heap_cell)
