"""Tests for the scenario runner, reporting, and CLI plumbing."""

import pytest

from repro.errors import ConfigError
from repro.experiments.cli import build_parser, main
from repro.experiments.report import (
    format_reduction_table,
    format_scenario_table,
    scenario_markdown,
)
from repro.experiments.runner import run_cell, run_scenario
from repro.experiments.scenarios import (
    RunPoint,
    Scenario,
    SchedulerSpec,
)
from repro.kvstore.config import SimulationConfig

from tests.conftest import small_config


def tiny_scenario(metric="mean"):
    points = tuple(
        RunPoint(
            x=load,
            config=small_config(load=load),
            sim=SimulationConfig(max_requests=200),
        )
        for load in (0.3, 0.6)
    )
    return Scenario(
        experiment_id="T1",
        title="tiny test scenario",
        x_label="load",
        metric=metric,
        points=points,
        schedulers=(
            SchedulerSpec("FCFS", "fcfs"),
            SchedulerSpec("DAS", "das"),
        ),
        notes="test only",
    )


@pytest.fixture(scope="module")
def tiny_result():
    return run_scenario(tiny_scenario())


class TestRunner:
    def test_all_cells_present(self, tiny_result):
        assert len(tiny_result.cells) == 4
        cell = tiny_result.cell(0.3, "FCFS")
        assert cell.requests > 0
        assert cell.summary.mean > 0

    def test_series_ordering(self, tiny_result):
        series = tiny_result.series("FCFS")
        assert len(series) == 2
        assert series[0] < series[1]  # higher load -> higher mean RCT

    def test_metric_lookup(self, tiny_result):
        cell = tiny_result.cell(0.3, "DAS")
        assert cell.metric("p99") == cell.summary.p99
        assert cell.metric("mean_slowdown") == cell.mean_slowdown
        with pytest.raises(ConfigError):
            cell.metric("nonsense")

    def test_reduction_vs(self, tiny_result):
        reductions = tiny_result.reduction_vs("FCFS", "DAS")
        assert len(reductions) == 2
        assert all(-1.0 < r < 1.0 for r in reductions)

    def test_missing_cell_raises(self, tiny_result):
        with pytest.raises(ConfigError):
            tiny_result.cell(0.99, "FCFS")

    def test_progress_callback_called(self):
        messages = []
        run_scenario(tiny_scenario(), progress=messages.append)
        assert len(messages) == 4
        assert "T1" in messages[0]

    def test_run_cell_injects_scheduler(self):
        point = tiny_scenario().points[0]
        cell = run_cell(point, SchedulerSpec("SBF", "sbf"))
        assert cell.scheduler == "SBF"


class TestReport:
    def test_scenario_table_contains_all_labels(self, tiny_result):
        text = format_scenario_table(tiny_result)
        assert "T1" in text
        assert "FCFS" in text and "DAS" in text
        assert "0.3" in text and "0.6" in text
        assert "note: test only" in text

    def test_metric_override(self, tiny_result):
        text = format_scenario_table(tiny_result, metric="p99")
        assert "p99 (ms)" in text

    def test_reduction_table(self, tiny_result):
        text = format_reduction_table(
            tiny_result, baseline_label="FCFS",
            comparator_label="FCFS", treatment_label="DAS",
        )
        assert "vs FCFS (%)" in text

    def test_markdown_rendering(self, tiny_result):
        md = scenario_markdown(tiny_result)
        assert md.startswith("| load |")
        assert "| FCFS (ms) |" in md


class TestCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["E1", "--scale", "0.5"])
        assert args.experiments == ["E1"]
        assert args.scale == 0.5

    def test_unknown_experiment_exits_2(self, capsys):
        assert main(["E99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_no_args_prints_help(self, capsys):
        assert main([]) == 2
        assert "repro-experiments" in capsys.readouterr().out
