"""Tests for the parallel experiment engine (determinism, checkpoint/resume)."""

import json

import pytest

from repro.errors import ConfigError
from repro.experiments.parallel import (
    CellTask,
    EngineProgress,
    cell_fingerprint,
    cell_from_jsonable,
    cell_tasks,
    cell_to_jsonable,
    checkpoint_path,
    derive_seed,
    run_scenario_parallel,
)
from repro.experiments.report import format_scenario_table
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import (
    RunPoint,
    Scenario,
    SchedulerSpec,
)
from repro.kvstore.config import SimulationConfig
from repro.obs import MetricsRegistry

from tests.conftest import small_config


def tiny_scenario():
    points = tuple(
        RunPoint(
            x=load,
            config=small_config(load=load),
            sim=SimulationConfig(max_requests=150),
        )
        for load in (0.3, 0.6)
    )
    return Scenario(
        experiment_id="TP1",
        title="tiny parallel test scenario",
        x_label="load",
        metric="mean",
        points=points,
        schedulers=(
            SchedulerSpec("FCFS", "fcfs"),
            SchedulerSpec("DAS", "das"),
        ),
        notes="test only",
    )


@pytest.fixture(scope="module")
def sequential_result():
    return run_scenario(tiny_scenario())


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, 3, 7) == derive_seed(42, 3, 7)

    def test_sensitive_to_key_and_root(self):
        seeds = {
            derive_seed(42, 0),
            derive_seed(42, 1),
            derive_seed(43, 0),
            derive_seed(42, 0, 0),
        }
        assert len(seeds) == 4

    def test_non_negative_int(self):
        for i in range(16):
            seed = derive_seed(42, i)
            assert isinstance(seed, int)
            assert seed >= 0


class TestCellTasks:
    def test_grid_expansion_order(self):
        tasks = cell_tasks(tiny_scenario())
        assert [(t.point_index, t.scheduler_index) for t in tasks] == [
            (0, 0), (0, 1), (1, 0), (1, 1),
        ]

    def test_default_keeps_scenario_seeds(self):
        scenario = tiny_scenario()
        tasks = cell_tasks(scenario)
        assert all(
            t.point.config.seed == scenario.points[t.point_index].config.seed
            for t in tasks
        )

    def test_reseed_points_derives_per_point_paired_seeds(self):
        scenario = tiny_scenario()
        tasks = cell_tasks(scenario, reseed_points=True)
        seeds_by_point = {}
        for t in tasks:
            seeds_by_point.setdefault(t.point_index, set()).add(t.point.config.seed)
        # Schedulers at the same point stay paired (same workload seed) ...
        assert all(len(seeds) == 1 for seeds in seeds_by_point.values())
        # ... while distinct points get distinct derived seeds.
        flat = {seeds.pop() for seeds in seeds_by_point.values()}
        assert len(flat) == len(scenario.points)
        # And the derivation is identity-based, hence repeatable.
        again = cell_tasks(scenario, reseed_points=True)
        assert [t.point.config.seed for t in again] == [
            t.point.config.seed
            for t in cell_tasks(tiny_scenario(), reseed_points=True)
        ]


class TestDeterminism:
    def test_parallel_matches_sequential(self, sequential_result):
        parallel = run_scenario_parallel(tiny_scenario(), workers=4)
        assert set(parallel.cells) == set(sequential_result.cells)
        for key, seq_cell in sequential_result.cells.items():
            par_cell = parallel.cells[key]
            assert par_cell.summary == seq_cell.summary
            assert par_cell.mean_slowdown == seq_cell.mean_slowdown
            assert par_cell.p99_slowdown == seq_cell.p99_slowdown
            assert par_cell.requests == seq_cell.requests
            assert par_cell.metrics == seq_cell.metrics
            assert par_cell.traces == seq_cell.traces

    def test_single_worker_matches_sequential(self, sequential_result):
        inline = run_scenario_parallel(tiny_scenario(), workers=1)
        for key, seq_cell in sequential_result.cells.items():
            assert inline.cells[key].summary == seq_cell.summary

    def test_report_table_identical(self, sequential_result):
        parallel = run_scenario_parallel(tiny_scenario(), workers=2)
        assert format_scenario_table(parallel) == format_scenario_table(
            sequential_result
        )

    def test_invalid_worker_count(self):
        with pytest.raises(ConfigError):
            run_scenario_parallel(tiny_scenario(), workers=0)


class TestCheckpointResume:
    def test_checkpoints_written(self, tmp_path, sequential_result):
        scenario = tiny_scenario()
        run_scenario_parallel(scenario, workers=1, checkpoint_dir=tmp_path)
        files = sorted(p.name for p in (tmp_path / "TP1").glob("*.json"))
        assert files == [
            "p000_s00_FCFS.json",
            "p000_s01_DAS.json",
            "p001_s00_FCFS.json",
            "p001_s01_DAS.json",
        ]

    def test_resume_skips_completed_cells(self, tmp_path, sequential_result):
        scenario = tiny_scenario()
        run_scenario_parallel(scenario, workers=1, checkpoint_dir=tmp_path)

        registry = MetricsRegistry()
        resumed = run_scenario_parallel(
            tiny_scenario(), workers=1, checkpoint_dir=tmp_path, registry=registry
        )
        assert registry.value("engine_cells_resumed_total") == 4
        assert registry.value("engine_cells_completed_total") == 4
        for key, seq_cell in sequential_result.cells.items():
            assert resumed.cells[key].summary == seq_cell.summary
        assert format_scenario_table(resumed) == format_scenario_table(
            sequential_result
        )

    def test_no_resume_reruns(self, tmp_path):
        scenario = tiny_scenario()
        run_scenario_parallel(scenario, workers=1, checkpoint_dir=tmp_path)
        registry = MetricsRegistry()
        run_scenario_parallel(
            tiny_scenario(),
            workers=1,
            checkpoint_dir=tmp_path,
            resume=False,
            registry=registry,
        )
        assert registry.value("engine_cells_resumed_total") == 0

    def test_changed_config_invalidates_checkpoint(self, tmp_path):
        run_scenario_parallel(tiny_scenario(), workers=1, checkpoint_dir=tmp_path)

        changed = tiny_scenario()
        points = tuple(
            RunPoint(x=p.x, config=p.config, sim=SimulationConfig(max_requests=120))
            for p in changed.points
        )
        changed = Scenario(
            experiment_id=changed.experiment_id,
            title=changed.title,
            x_label=changed.x_label,
            metric=changed.metric,
            points=points,
            schedulers=changed.schedulers,
            notes=changed.notes,
        )
        registry = MetricsRegistry()
        run_scenario_parallel(
            changed, workers=1, checkpoint_dir=tmp_path, registry=registry
        )
        assert registry.value("engine_cells_resumed_total") == 0

    def test_corrupt_checkpoint_ignored(self, tmp_path):
        scenario = tiny_scenario()
        run_scenario_parallel(scenario, workers=1, checkpoint_dir=tmp_path)
        task = cell_tasks(scenario)[0]
        path = checkpoint_path(tmp_path, scenario, task)
        path.write_text("{not json", encoding="utf-8")
        registry = MetricsRegistry()
        run_scenario_parallel(
            tiny_scenario(), workers=1, checkpoint_dir=tmp_path, registry=registry
        )
        assert registry.value("engine_cells_resumed_total") == 3

    def test_cell_roundtrip(self, sequential_result):
        cell = next(iter(sequential_result.cells.values()))
        data = json.loads(json.dumps(cell_to_jsonable(cell), default=str))
        back = cell_from_jsonable(data, cell.x)
        assert back.summary == cell.summary
        assert back.x == cell.x
        assert back.metrics == cell.metrics

    def test_fingerprint_tracks_config(self):
        scenario = tiny_scenario()
        a, b = cell_tasks(scenario)[:2]
        assert cell_fingerprint(a) != cell_fingerprint(b)
        again = cell_tasks(tiny_scenario())[0]
        assert cell_fingerprint(a) == cell_fingerprint(again)


class TestEngineProgress:
    def test_metrics_and_line(self):
        registry = MetricsRegistry()
        progress = EngineProgress(registry, total=4, workers=2)
        assert registry.value("engine_cells_total") == 4
        assert registry.value("engine_workers") == 2
        progress.mark()
        progress.mark(resumed=True)
        line = progress.line("TP1", "done point=0.3 scheduler=DAS")
        assert line.startswith("[TP1] 2/4 cells")
        assert "1 resumed" in line
        assert "done point=0.3 scheduler=DAS" in line
        assert registry.value("engine_cells_completed_total") == 2
        assert registry.value("engine_cells_resumed_total") == 1
        assert registry.value("engine_cells_per_second") >= 0


class TestTaskLabel:
    def test_label_mentions_coordinates(self):
        task = cell_tasks(tiny_scenario())[1]
        assert isinstance(task, CellTask)
        assert task.label == "point=0.3 scheduler=DAS"
