"""Tests for spec-named scenario cells: determinism, checkpoints, CLI."""

import pytest

from repro.errors import WorkloadError
from repro.experiments.cli import main as cli_main
from repro.experiments.parallel import cell_fingerprint, cell_tasks, run_scenario_parallel
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import workload_scenario
from repro.obs import MetricsRegistry

SCALE = 0.02


class TestScenarioShape:
    def test_grid_and_metadata(self):
        scenario = workload_scenario("mmpp-burst", scale=SCALE)
        assert scenario.experiment_id == "W:mmpp-burst"
        assert len(scenario.points) == 1
        assert scenario.points[0].config.workload == "mmpp-burst"
        assert {s.label for s in scenario.schedulers} == {"FCFS", "Rein-SBF", "DAS"}

    def test_unknown_ref_fails_fast(self):
        with pytest.raises(WorkloadError, match="unknown workload"):
            workload_scenario("no-such-spec", scale=SCALE)

    def test_spec_file_path_accepted(self, tmp_path):
        path = tmp_path / "mine.toml"
        path.write_text('name = "mine"\nload = 0.4\n')
        scenario = workload_scenario(str(path), scale=SCALE)
        assert scenario.experiment_id == "W:mine"


class TestDeterminism:
    def test_parallel_matches_sequential(self):
        """An X-series-style cell named by spec must be bit-identical
        between the sequential and the worker-process engine."""
        scenario = workload_scenario("x4-large-values", scale=SCALE)
        seq = run_scenario(scenario)
        par = run_scenario_parallel(workload_scenario("x4-large-values", scale=SCALE), workers=2)
        assert set(par.cells) == set(seq.cells)
        for key, seq_cell in seq.cells.items():
            assert par.cells[key].summary == seq_cell.summary
            assert par.cells[key].requests == seq_cell.requests

    def test_trace_spec_parallel_matches_sequential(self):
        scenario = workload_scenario("trace-sample", scale=SCALE)
        seq = run_scenario(scenario)
        par = run_scenario_parallel(workload_scenario("trace-sample", scale=SCALE), workers=2)
        for key, seq_cell in seq.cells.items():
            assert par.cells[key].summary == seq_cell.summary


class TestCheckpointFingerprint:
    def test_spec_content_joins_fingerprint(self, tmp_path):
        """Editing a spec file must change the cell fingerprint, so stale
        checkpoints never resume against a changed workload."""
        path = tmp_path / "w.toml"
        path.write_text('name = "w"\nload = 0.4\n')
        before = cell_fingerprint(cell_tasks(workload_scenario(str(path), scale=SCALE))[0])
        path.write_text('name = "w"\nload = 0.5\n')
        after = cell_fingerprint(cell_tasks(workload_scenario(str(path), scale=SCALE))[0])
        assert before != after

    def test_resume_hits_for_unchanged_spec(self, tmp_path):
        scenario = workload_scenario("single-get", scale=SCALE)
        run_scenario_parallel(scenario, workers=1, checkpoint_dir=tmp_path)
        registry = MetricsRegistry()
        run_scenario_parallel(
            workload_scenario("single-get", scale=SCALE),
            workers=1,
            checkpoint_dir=tmp_path,
            registry=registry,
        )
        assert registry.value("engine_cells_resumed_total") == 3


class TestCli:
    def test_workload_flag_runs(self, capsys):
        assert cli_main(["--workload", "uniform", "--scale", "0.02", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "W:uniform" in out
        assert "DAS" in out

    def test_workload_flag_with_bad_name_errors(self, capsys):
        with pytest.raises(WorkloadError, match="unknown workload"):
            cli_main(["--workload", "nope", "--scale", "0.02", "--quiet"])
