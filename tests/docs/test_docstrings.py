"""Scoped docstring presence check (pydocstyle D1xx equivalent).

CI runs ``ruff check --select D1`` over the same scope; this test keeps
the guarantee enforceable locally without ruff installed: the modules
documentation points readers at must carry docstrings on the module
itself and on every public class and function.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: The documented-surface scope (see docs/architecture.md references).
SCOPED_MODULES = [
    SRC / "experiments" / "runner.py",
    SRC / "experiments" / "parallel.py",
    SRC / "experiments" / "fullrun.py",
    SRC / "sim" / "events.py",
    SRC / "sim" / "core.py",
    SRC / "core" / "das.py",
    SRC / "workload" / "spec.py",
    SRC / "workload" / "registry.py",
]


def _public_defs(body):
    """Top-level and class-level public defs (nested closures excluded)."""
    for node in body:
        if isinstance(node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name.startswith("_"):
                continue
            yield node
            if isinstance(node, ast.ClassDef):
                yield from _public_defs(node.body)


def _missing_docstrings(path: Path):
    tree = ast.parse(path.read_text(encoding="utf-8"))
    missing = []
    if not ast.get_docstring(tree):
        missing.append(f"{path.name}: module docstring")
    for node in _public_defs(tree.body):
        if not ast.get_docstring(node):
            missing.append(f"{path.name}:{node.lineno}: {node.name}")
    return missing


@pytest.mark.parametrize("module", SCOPED_MODULES, ids=lambda p: p.name)
def test_public_api_is_documented(module):
    assert module.exists(), f"scoped module moved: {module}"
    missing = _missing_docstrings(module)
    assert not missing, "missing docstrings:\n" + "\n".join(missing)
