"""Documentation checks: intra-repo markdown links must resolve.

Scans every tracked markdown file at the repository root and under
``docs/`` for inline links and verifies that relative targets exist on
disk, so a renamed file or a typo'd path fails CI instead of shipping a
dead link.  External (``http(s)://``, ``mailto:``) and pure-anchor
(``#section``) targets are out of scope.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Inline markdown link: [text](target); target captured up to ) or space.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_FENCE = re.compile(r"^(```|~~~)")


def markdown_files():
    files = sorted(REPO_ROOT.glob("*.md")) + sorted(REPO_ROOT.glob("docs/*.md"))
    assert files, "no markdown files found — wrong repo root?"
    return files


def extract_links(path: Path):
    """Yield (line_number, target) for inline links outside code fences."""
    in_fence = False
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        # Drop inline code spans so `[x](y)` inside backticks is ignored.
        stripped = re.sub(r"`[^`]*`", "", line)
        for match in _LINK.finditer(stripped):
            yield lineno, match.group(1)


def is_internal(target: str) -> bool:
    if target.startswith(("http://", "https://", "mailto:", "#")):
        return False
    return True


@pytest.mark.parametrize("md", markdown_files(), ids=lambda p: str(p.relative_to(REPO_ROOT)))
def test_intra_repo_links_resolve(md):
    broken = []
    for lineno, target in extract_links(md):
        if not is_internal(target):
            continue
        path_part = target.split("#", 1)[0]
        if not path_part:
            continue
        resolved = (md.parent / path_part).resolve()
        if not resolved.exists():
            broken.append(f"{md.name}:{lineno}: {target}")
    assert not broken, "broken intra-repo links:\n" + "\n".join(broken)


def test_readme_links_both_guides():
    """README must point readers at the experiments and benchmarking docs."""
    text = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "docs/experiments.md" in text
    assert "docs/benchmarking.md" in text
    assert "docs/workloads.md" in text


def test_bundled_spec_referenced_paths_resolve():
    """Trace paths inside bundled workload specs must exist on disk."""
    from repro.workload.registry import list_workloads, workload

    missing = []
    for name in list_workloads():
        spec = workload(name)
        if spec.trace is not None and not spec.trace.resolved_path().exists():
            missing.append(f"{name}: {spec.trace.path}")
    assert not missing, "dangling trace paths in bundled specs:\n" + "\n".join(missing)


def test_workloads_doc_tables_every_bundled_spec():
    """docs/workloads.md's registry table must stay in sync with specs/."""
    from repro.workload.registry import list_workloads

    text = (REPO_ROOT / "docs" / "workloads.md").read_text(encoding="utf-8")
    undocumented = [n for n in list_workloads() if f"`{n}`" not in text]
    assert not undocumented, f"bundled specs missing from docs/workloads.md: {undocumented}"
