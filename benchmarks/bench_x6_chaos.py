"""X6 — extension (ours): chaos plans vs client resilience.

Expected shape: under the crash plan, the hedged + breaker-protected
client keeps p99 RCT within a small multiple of the healthy cell, while
the timeout-only client pays at least one full 20 ms op-timeout on every
request that touched the dead server — a >5x p99 gap at every scale
(roughly 2.3 ms vs 40 ms at the default bench scale).  The remaining
plans (partition, packet loss, slow node) must stay survivable: the run
completes and hedging keeps their p99 below the timeout-only crash cell.

A second (non-grid) pass re-runs the crash cell directly through
:class:`~repro.kvstore.cluster.Cluster` to exercise the chaos report:
the fault timeline must match the plan, dropped ops must be accounted,
and time-to-recover after ``Recover`` must be measured and small.
"""

import dataclasses
import math

from benchmarks._common import assert_cells_identical, smoke_grid

from repro.experiments.scenarios import get_scenario
from repro.faults.report import chaos_report
from repro.kvstore.cluster import Cluster

PLANS = ("crash", "partition", "flaky", "slownode")


def bench_x6_chaos(benchmark, results_dir):
    result = smoke_grid(benchmark, results_dir, "X6")
    assert_cells_identical(result)

    p99 = {
        x: result.cell(x, "DAS").metric("p99")
        for x in (
            "healthy",
            "crash/timeout-only",
            "crash/hedge+cb",
            "partition/hedge+cb",
            "flaky/hedge+cb",
            "slownode/hedge+cb",
        )
    }
    assert p99["crash/hedge+cb"] < p99["crash/timeout-only"], (
        f"hedge+breaker p99 {p99['crash/hedge+cb']:.6f}s not below "
        f"timeout-only p99 {p99['crash/timeout-only']:.6f}s under the crash plan"
    )
    # The timeout-only client eats >= one 20 ms timeout on affected
    # requests; hedged cells must stay well clear of that regime.
    for plan in PLANS:
        cell = f"{plan}/hedge+cb"
        assert p99[cell] < p99["crash/timeout-only"], (
            f"{cell} p99 {p99[cell]:.6f}s not below the timeout-only "
            f"crash cell {p99['crash/timeout-only']:.6f}s"
        )


def bench_x6_recovery(results_dir):
    """Direct crash-cell run: timeline, loss accounting, time-to-recover."""
    scenario = get_scenario("X6", scale=0.05)
    point = next(p for p in scenario.points if p.x == "crash/hedge+cb")
    config = dataclasses.replace(
        point.config, scheduler="das", scheduler_params={}
    )
    cluster = Cluster(config)
    result = cluster.run(point.sim)

    plan = config.fault_plan
    applied = [e["event"] for e in result.faults["applied"]]
    assert applied == [e["event"] for e in plan.timeline()]
    assert result.server_ops_dropped[0] > 0, "crash dropped nothing"
    assert not cluster.servers[0].crashed, "server 0 still down after Recover"

    rep = chaos_report(result, plan)
    ttr = rep["time_to_recover"]
    assert not math.isnan(ttr), "no requests arrived during the fault window"
    assert ttr < 0.5, f"time-to-recover {ttr:.3f}s unexpectedly large"
    lines = [
        "crash/hedge+cb (DAS) chaos report:",
        f"  p99 during fault : {rep['phases']['during']['p99_rct'] * 1e3:.2f} ms",
        f"  p99 after fault  : {rep['phases']['after']['p99_rct'] * 1e3:.2f} ms",
        f"  time-to-recover  : {ttr * 1e3:.2f} ms",
        f"  requests lost    : {rep['requests_lost']}",
    ]
    text = "\n".join(lines)
    (results_dir / "X6_recovery.txt").write_text(text + "\n", encoding="utf-8")
    print()
    print(text)
