"""X5 — extension (ours): fleet-scale selection vs control-plane cost.

Expected shape (asserted on a pinned full-scale headline pass at 256
servers): the Dodoor-style load cache — d-choices over bounded-stale
periodic server reports — keeps p99 RCT within a 15% guard band of
probe-per-request Prequal while sending at least 10x fewer control-plane
messages per request, and beats blind power-of-d on p99 outright.  The
asymmetry is structural: Prequal pays two probe round-trips (four
messages) per request, so its control cost scales with the request rate;
Dodoor pays one broadcast per server per refresh interval, so its cost
scales with fleet size over interval and *amortizes* as traffic grows.
A refresh-interval sweep at 256 servers traces the freshness-vs-overhead
curve.

The grid itself (128/256/512 servers x four adaptive policies plus the
interval sweep) runs at the bench ``--scale`` like every other module,
gated by the parallel-engine determinism check.  Both the gate and the
headline numbers land in ``benchmarks/results/X5_scaleout.json``.
"""

import dataclasses

from benchmarks._common import (
    assert_cells_identical,
    smoke_grid,
    write_json_artifact,
)
from benchmarks import conftest

from repro.experiments.scenarios import get_scenario
from repro.kvstore.cluster import Cluster

#: Scale of the pinned headline comparison (12 000 requests per cell).
HEADLINE_SCALE = 1.0
#: Fleet size the acceptance numbers are measured at.
HEADLINE_FLEET = 256
#: Dodoor must send at least this many times fewer control messages
#: per request than prequal.
MESSAGE_RATIO_FLOOR = 10.0
#: ... while staying within this relative p99 guard band of prequal.
P99_GUARD = 1.15


def _run_cell(point) -> dict:
    """One direct cluster run with control-plane accounting attached."""
    config = dataclasses.replace(
        point.config, scheduler="das", scheduler_params={}
    )
    cluster = Cluster(config)
    result = cluster.run(point.sim)
    summary = result.summary()
    per_client = cluster.selection_stats().values()
    messages = sum(s["control_plane"]["messages_total"] for s in per_client)
    payload_bytes = sum(
        sum(s["control_plane"]["bytes_sent"].values()) for s in per_client
    )
    return {
        "requests": result.requests_completed,
        "control_messages": messages,
        "messages_per_request": messages / result.requests_completed,
        "control_bytes": payload_bytes,
        "mean": summary.mean,
        "p99": summary.p99,
        "p999": summary.p999,
    }


def bench_x5_scaleout(benchmark, results_dir):
    result = smoke_grid(benchmark, results_dir, "X5")
    cells_identical = assert_cells_identical(result)

    # Headline at pinned full scale: deterministic, so exact assertions.
    scenario = get_scenario("X5", scale=HEADLINE_SCALE)
    headline = {}
    for selection in ("prequal", "power_of_d", "dodoor"):
        point = next(
            p for p in scenario.points
            if p.x == f"{HEADLINE_FLEET}s/{selection}"
        )
        headline[selection] = _run_cell(point)
    sweep = {
        point.x.split("/", 1)[1]: _run_cell(point)
        for point in scenario.points
        if point.x.startswith(f"{HEADLINE_FLEET}s/dodoor@")
    }

    dodoor, prequal = headline["dodoor"], headline["prequal"]
    message_ratio = (
        prequal["messages_per_request"] / dodoor["messages_per_request"]
    )
    assert message_ratio >= MESSAGE_RATIO_FLOOR, (
        f"dodoor sends only {message_ratio:.1f}x fewer control messages "
        f"per request than prequal (floor {MESSAGE_RATIO_FLOOR:.0f}x) at "
        f"{HEADLINE_FLEET} servers"
    )
    assert dodoor["p99"] <= prequal["p99"] * P99_GUARD, (
        f"dodoor p99 {dodoor['p99']:.6f}s outside the {P99_GUARD:.0%} "
        f"guard band of prequal {prequal['p99']:.6f}s"
    )
    assert dodoor["p99"] < headline["power_of_d"]["p99"], (
        f"dodoor p99 {dodoor['p99']:.6f}s not below blind power-of-d "
        f"{headline['power_of_d']['p99']:.6f}s"
    )

    artifact = {
        "grid_scale": conftest.SCALE,
        "headline_scale": HEADLINE_SCALE,
        "headline_fleet": HEADLINE_FLEET,
        "cells_identical": cells_identical,
        "message_ratio_floor": MESSAGE_RATIO_FLOOR,
        "p99_guard": P99_GUARD,
        "message_ratio": message_ratio,
        "headline": headline,
        "refresh_sweep": sweep,
    }
    write_json_artifact(results_dir, "X5_scaleout.json", artifact)
    lines = [
        f"X5 headline ({HEADLINE_FLEET} servers, scale {HEADLINE_SCALE}):",
        f"  prequal    {prequal['messages_per_request']:.3f} msg/req  "
        f"p99 {prequal['p99'] * 1e3:.3f} ms",
        f"  dodoor     {dodoor['messages_per_request']:.3f} msg/req  "
        f"p99 {dodoor['p99'] * 1e3:.3f} ms  ({message_ratio:.1f}x fewer msgs)",
        f"  power_of_d {headline['power_of_d']['messages_per_request']:.3f} "
        f"msg/req  p99 {headline['power_of_d']['p99'] * 1e3:.3f} ms",
    ]
    for label, row in sorted(sweep.items()):
        lines.append(
            f"  {label:14s} {row['messages_per_request']:.3f} msg/req  "
            f"p99 {row['p99'] * 1e3:.3f} ms"
        )
    text = "\n".join(lines)
    print()
    print(text)
