"""E10 — fairness: P99 slowdown under the bimodal mix.

Expected shape: FCFS is the fairness gold standard (low slowdown spread);
pure size-based ordering starves large multigets; DAS's aging promotion
keeps its P99 slowdown within a bounded factor of FCFS while preserving
the mean-RCT win.
"""

from benchmarks.conftest import execute_scenario, report


def bench_e10_fairness(benchmark, results_dir):
    result = execute_scenario(benchmark, "E10")
    report(result, results_dir)

    for load in result.xs():
        fcfs = result.cell(load, "FCFS")
        das = result.cell(load, "DAS")
        # DAS still wins the mean...
        assert das.summary.mean < fcfs.summary.mean
        # ...without unbounded starvation: p99 slowdown within 50x of FCFS
        # (pure SBF can be orders of magnitude worse at heavy load).
        assert das.p99_slowdown < fcfs.p99_slowdown * 50
