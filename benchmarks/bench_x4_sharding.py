"""X4 — extension (ours): size-aware two-lane service tier (Minos-style).

Expected shape (asserted on a pinned full-scale headline run, where the
p999 estimator has enough tail samples to be meaningful): Lanes+DAS
beats plain DAS on p99 *and* p999 under every mix — the bimodal
small/large split and both ``alpha <= 1.5`` truncated-Pareto tails —
without degrading mean RCT.  At fan-out 8 a sub-1% large-op class
touches ``1-(1-p)^8`` of requests, so DAS's last-band starvation of the
large class lands squarely on the request tail; the weighted-fair lane
dispatcher caps that starvation at the configured capacity split.

The grid itself (all six scheduler columns, including the Lanes+FCFS,
static-cutoff, and 50/50-split ablations) runs at the bench ``--scale``
like every other module, and a determinism gate re-runs it through the
parallel engine: every cell must be byte-identical to its sequential
twin (``cells_identical``).  Both the gate and the headline comparison
are recorded in ``benchmarks/results/X4_sharding.json``.
"""

import dataclasses

from benchmarks import conftest
from benchmarks._common import (
    assert_cells_identical,
    smoke_grid,
    write_json_artifact,
)

from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import get_scenario

#: Scale of the pinned headline comparison (12 000 requests per cell).
HEADLINE_SCALE = 1.0

#: Mean-RCT guard band: "not degraded" allows this relative slack.
MEAN_SLACK = 1.02


def _headline_scenario():
    scenario = get_scenario("X4", scale=HEADLINE_SCALE)
    keep = {"DAS", "Lanes+DAS"}
    return dataclasses.replace(
        scenario,
        schedulers=tuple(s for s in scenario.schedulers if s.label in keep),
    )


def bench_x4_sharding(benchmark, results_dir):
    result = smoke_grid(benchmark, results_dir, "X4")

    # Determinism gate: the laned cells must be byte-identical under the
    # parallel engine at the very scale this bench just ran.
    cells_identical = assert_cells_identical(result)

    # Headline shape at pinned full scale: deterministic, so these are
    # exact assertions, not flaky statistics.
    headline = run_scenario(_headline_scenario())
    comparisons = {}
    for point in headline.scenario.points:
        x = point.x
        das = headline.cell(x, "DAS").summary
        lanes = headline.cell(x, "Lanes+DAS").summary
        comparisons[x] = {
            "das": {"mean": das.mean, "p99": das.p99, "p999": das.p999},
            "lanes_das": {
                "mean": lanes.mean,
                "p99": lanes.p99,
                "p999": lanes.p999,
            },
            "p99_improvement": 1.0 - lanes.p99 / das.p99,
            "p999_improvement": 1.0 - lanes.p999 / das.p999,
            "mean_ratio": lanes.mean / das.mean,
        }
        assert lanes.p99 < das.p99, (
            f"{x}: Lanes+DAS p99 {lanes.p99:.6f}s not below "
            f"plain DAS {das.p99:.6f}s"
        )
        assert lanes.p999 < das.p999, (
            f"{x}: Lanes+DAS p999 {lanes.p999:.6f}s not below "
            f"plain DAS {das.p999:.6f}s"
        )
        assert lanes.mean <= das.mean * MEAN_SLACK, (
            f"{x}: Lanes+DAS mean {lanes.mean:.6f}s degrades plain DAS "
            f"{das.mean:.6f}s beyond the {MEAN_SLACK:.0%} guard band"
        )

    artifact = {
        "grid_scale": conftest.SCALE,
        "headline_scale": HEADLINE_SCALE,
        "cells_identical": cells_identical,
        "mean_slack": MEAN_SLACK,
        "comparisons": comparisons,
    }
    write_json_artifact(results_dir, "X4_sharding.json", artifact)
    lines = ["X4 headline (scale 1.0, Lanes+DAS vs DAS):"]
    for x, row in comparisons.items():
        lines.append(
            f"  {x:11s} p99 -{row['p99_improvement']:.0%}  "
            f"p999 -{row['p999_improvement']:.0%}  "
            f"mean x{row['mean_ratio']:.2f}"
        )
    text = "\n".join(lines)
    print()
    print(text)
