"""E6 — mean RCT across traffic patterns at load 0.7.

Expected shape: DAS <= FCFS on every pattern; the largest wins appear on
the mixes with wide request-size spread (bimodal, heavytail); single-get
shows the smallest multiget-specific gain.
"""

from benchmarks.conftest import execute_scenario, report


def bench_e6_traffic_patterns(benchmark, results_dir):
    result = execute_scenario(benchmark, "E6")
    report(result, results_dir)

    xs = result.xs()
    fcfs = result.series("FCFS")
    das = result.series("DAS")
    reductions = {
        x: 1.0 - d / f for x, d, f in zip(xs, das, fcfs)
    }
    # DAS never loses badly on any pattern...
    for x, r in reductions.items():
        assert r > -0.10, f"DAS lost on pattern {x}: {r:.2%}"
    # ...and wins clearly on the wide-spread mixes.
    assert reductions["bimodal"] > 0.2
    assert reductions["baseline"] > 0.1
