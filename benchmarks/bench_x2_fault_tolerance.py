"""X2 — extension (ours): outage survival via op timeout + replica retry.

Expected shape: unprotected, the p999 RCT is dominated by requests that
waited out the outage (hundreds of milliseconds to seconds); with 2-way
replication and timeout-driven retries the p999 collapses back to within
a small factor of the healthy cluster's.
"""

from benchmarks.conftest import execute_scenario, report


def bench_x2_fault_tolerance(benchmark, results_dir):
    result = execute_scenario(benchmark, "X2", scale=0.25)
    report(result, results_dir)

    no_retry = result.cell("no-retry", "DAS").metric("p999")
    with_retry = result.cell("retry-r2", "DAS").metric("p999")
    healthy = result.cell("healthy", "DAS").metric("p999")
    # The outage wrecks the unprotected tail...
    assert no_retry > healthy * 20
    # ...and retries claw most of it back.
    assert with_retry < no_retry * 0.2
