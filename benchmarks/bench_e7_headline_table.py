"""E7 — the headline reduction table.

Expected shape (the abstract's claims, verbatim):
* "DAS reduces the mean request completion time by more than 15~50%
  compared to the default first come first served algorithm" — at the
  moderate/heavy points;
* "outperforms the existing Rein-SBF algorithm under various scenarios" —
  DAS >= Rein-SBF on the scenario mix, with clear wins where server
  performance varies.
"""

from benchmarks.conftest import execute_scenario, report


def bench_e7_headline_table(benchmark, results_dir):
    result = execute_scenario(benchmark, "E7")
    report(result, results_dir)

    vs_fcfs = dict(zip(result.xs(), result.reduction_vs("FCFS", "DAS")))
    vs_sbf = dict(zip(result.xs(), result.reduction_vs("Rein-SBF", "DAS")))

    # Paper: ">15~50%" vs FCFS at moderate and heavy load.
    assert vs_fcfs["baseline@0.7"] > 0.15
    assert vs_fcfs["baseline@0.9"] > 0.30
    assert vs_fcfs["bimodal@0.8"] > 0.30
    assert vs_fcfs["degraded@0.55"] > 0.30
    # vs Rein-SBF: never materially worse, clearly better under degradation.
    for x, r in vs_sbf.items():
        assert r > -0.08, f"DAS lost to Rein-SBF on {x}: {r:.2%}"
    assert vs_sbf["degraded@0.55"] > 0.05
