"""Experiment-engine benchmark: emits the ``BENCH_engine.json`` perf record.

Measures the two numbers that bound experiment throughput (see
``docs/benchmarking.md``):

* **sim events/sec** — raw kernel throughput (timeout schedule/fire
  cycles) plus an end-to-end cell rate (simulated requests/sec through a
  full cluster), the quantities the hot-path work in ``repro.sim`` /
  ``repro.kvstore.items`` targets;
* **cells/sec, sequential vs N workers** — the parallel engine's fan-out
  gain on a multi-cell scenario, with a cell-for-cell equality check
  against the sequential runner (the determinism guarantee).

Run from the repository root::

    python benchmarks/bench_engine.py                 # writes BENCH_engine.json
    python benchmarks/bench_engine.py --workers 8     # different pool size
    python benchmarks/bench_engine.py --out other.json --scale 0.05

Compare two commits by running the script on each and diffing the JSON
records; fields are flat numbers on purpose.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

from repro._version import __version__
from repro.experiments.parallel import run_scenario_parallel
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import get_scenario
from repro.sim.core import Environment

#: Experiment the cells/sec comparison runs (small grid, mixed schedulers).
SCENARIO_ID = "E2"


def measure_kernel_events(n: int = 200_000, repeats: int = 3) -> float:
    """Timeout schedule/fire cycles per second of the DES kernel (best of N)."""
    best = 0.0
    for _ in range(repeats):
        env = Environment()

        def proc():
            for _ in range(n):
                yield env.timeout(1.0)

        env.process(proc())
        t0 = time.perf_counter()
        env.run()
        best = max(best, n / (time.perf_counter() - t0))
    return best


def measure_cell_requests(scale: float) -> dict:
    """Simulated requests/sec through one full cluster cell."""
    scenario = get_scenario("E1", scale=scale)
    point, scheduler = scenario.points[0], scenario.schedulers[-1]
    from repro.experiments.runner import run_cell

    t0 = time.perf_counter()
    cell = run_cell(point, scheduler)
    wall = time.perf_counter() - t0
    return {
        "requests": cell.requests,
        "wall_seconds": wall,
        "requests_per_second": cell.requests / wall,
    }


def measure_scenario(scale: float, workers: int) -> dict:
    """Cells/sec sequential vs parallel on the comparison scenario."""
    scenario = get_scenario(SCENARIO_ID, scale=scale)
    n_cells = len(scenario.points) * len(scenario.schedulers)

    t0 = time.perf_counter()
    seq = run_scenario(scenario)
    seq_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    par = run_scenario_parallel(scenario, workers=workers)
    par_wall = time.perf_counter() - t0

    identical = all(
        seq.cells[key].summary == par.cells[key].summary
        and seq.cells[key].metrics == par.cells[key].metrics
        for key in seq.cells
    )
    return {
        "scenario": SCENARIO_ID,
        "cells": n_cells,
        "sequential_wall_seconds": seq_wall,
        "sequential_cells_per_second": n_cells / seq_wall,
        "parallel_workers": workers,
        "parallel_wall_seconds": par_wall,
        "parallel_cells_per_second": n_cells / par_wall,
        "speedup": seq_wall / par_wall,
        "cells_identical": identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=Path("BENCH_engine.json"))
    parser.add_argument("--scale", type=float, default=0.08,
                        help="scenario scale for the cells/sec comparison")
    parser.add_argument("--workers", type=int, default=0,
                        help="pool size for the parallel leg (0 = one per CPU)")
    args = parser.parse_args(argv)
    workers = args.workers or os.cpu_count() or 1

    print(f"[bench_engine] kernel events/sec ...", flush=True)
    events_per_second = measure_kernel_events()
    print(f"[bench_engine]   {events_per_second:,.0f} events/s", flush=True)

    print(f"[bench_engine] end-to-end cell (E1 point, DAS) ...", flush=True)
    cell = measure_cell_requests(args.scale)
    print(f"[bench_engine]   {cell['requests_per_second']:,.0f} requests/s",
          flush=True)

    print(f"[bench_engine] {SCENARIO_ID} sequential vs {workers} workers ...",
          flush=True)
    scenario = measure_scenario(args.scale, workers)
    print(
        f"[bench_engine]   {scenario['sequential_cells_per_second']:.2f} -> "
        f"{scenario['parallel_cells_per_second']:.2f} cells/s "
        f"(speedup {scenario['speedup']:.2f}x, "
        f"identical={scenario['cells_identical']})",
        flush=True,
    )

    record = {
        "benchmark": "engine",
        "repro_version": __version__,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "sim_events_per_second": events_per_second,
        "cell_end_to_end": cell,
        "scenario_throughput": scenario,
    }
    args.out.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"[bench_engine] wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
