"""Experiment-engine benchmark: emits the ``BENCH_engine.json`` perf record.

Measures the numbers that bound experiment throughput (see
``docs/benchmarking.md``):

* **event_core** — raw pending-set throughput, heap vs array backend,
  scalar one-event-per-call and bulk ``schedule_many``/``pop_many``
  lanes, with the calendar-queue counters (bucket resizes, slot-reuse
  hit rate) alongside;
* **sim events/sec** — kernel throughput through the ``Environment``
  facade (timeout schedule/fire cycles) plus an end-to-end cell rate
  (simulated requests/sec through a full cluster), the quantities the
  hot-path work in ``repro.sim`` / ``repro.kvstore.items`` targets;
* **cells/sec, sequential vs N workers** — the parallel engine's fan-out
  gain on a multi-cell scenario, with a cell-for-cell equality check
  against the sequential runner (the determinism guarantee).  The whole
  record carries a top-level ``backend`` field (``$REPRO_ENGINE``).

Run from the repository root::

    python benchmarks/bench_engine.py                 # writes BENCH_engine.json
    python benchmarks/bench_engine.py --workers 8     # different pool size
    python benchmarks/bench_engine.py --out other.json --scale 0.05

Compare two commits by running the script on each and diffing the JSON
records; fields are flat numbers on purpose.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro._version import __version__
from repro.experiments.parallel import run_scenario_parallel
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import get_scenario
from repro.sim.core import Environment
from repro.sim.eventcore import NORMAL, ArrayEventCore, HeapEventCore, resolve_engine
from repro.sim.rand import BatchedStream

#: Experiment the cells/sec comparison runs (small grid, mixed schedulers).
SCENARIO_ID = "E2"


def measure_event_core(
    n: int = 200_000, hold: int = 1024, bulk_batch: int = 8192, repeats: int = 3
) -> dict:
    """Raw event-core throughput: heap vs array, scalar vs bulk (best of N).

    All legs run the classic *hold model* (pop the next event, schedule
    its successor one time unit later, at a steady ``hold`` pending
    events) so the numbers isolate the pending-set data structure from
    everything the :class:`Environment` layers on top.  The scalar legs
    drive one event per call — the facade's hot path; the bulk leg
    drives :meth:`ArrayEventCore.schedule_many` / ``pop_many`` in
    ``bulk_batch``-sized rounds, which is the ≥5M events/s lane (per-call
    Python overhead cannot reach that figure, vectorized columns can).
    """

    def scalar_rate(make_core) -> float:
        best = 0.0
        for _ in range(repeats):
            core = make_core()
            seq = 0
            for i in range(hold):
                core.schedule(float(i), NORMAL, seq, None)
                seq += 1
            pop, schedule = core.pop, core.schedule
            t0 = time.perf_counter()
            for _ in range(n):
                when, _prio, _seq, _payload = pop()
                schedule(when + float(hold), NORMAL, seq, None)
                seq += 1
            best = max(best, n / (time.perf_counter() - t0))
        return best

    heap_rate = scalar_rate(HeapEventCore)
    array_rate = scalar_rate(ArrayEventCore)

    bulk_best = 0.0
    bulk_stats: dict = {}
    rounds = max(1, n // bulk_batch)
    for _ in range(repeats):
        core = ArrayEventCore()
        rng = np.random.default_rng(5)
        times = np.sort(rng.random(bulk_batch))
        core.schedule_many(times, NORMAL, np.arange(bulk_batch, dtype=np.int64))
        next_seq = bulk_batch
        t0 = time.perf_counter()
        for _ in range(rounds):
            popped, _slots, _ = core.pop_many(bulk_batch)
            k = popped.shape[0]
            core.schedule_many(
                popped + 1.0,
                NORMAL,
                np.arange(next_seq, next_seq + k, dtype=np.int64),
            )
            next_seq += k
        rate = rounds * bulk_batch / (time.perf_counter() - t0)
        if rate > bulk_best:
            bulk_best = rate
            bulk_stats = core.stats()
    return {
        "hold": hold,
        "cycles": n,
        "heap_events_per_second": heap_rate,
        "array_events_per_second": array_rate,
        "array_speedup": array_rate / heap_rate,
        "bulk_batch": bulk_batch,
        "array_bulk_events_per_second": bulk_best,
        "bucket_resizes": bulk_stats.get("bucket_resizes", 0),
        "array_grows": bulk_stats.get("array_grows", 0),
        "slot_reuse_hits": bulk_stats.get("slot_reuse_hits", 0),
        "slot_reuse_misses": bulk_stats.get("slot_reuse_misses", 0),
        "slot_reuse_hit_rate": bulk_stats.get("slot_reuse_hit_rate", 0.0),
    }


def measure_kernel_events(n: int = 200_000, repeats: int = 3) -> float:
    """Timeout schedule/fire cycles per second of the DES kernel (best of N).

    Uses :meth:`Environment.pooled_timeout` — the factory every internal
    hot path (network delivery, service waits, interarrival gaps) goes
    through — so the number reflects the simulator's real event cost.
    """
    best = 0.0
    for _ in range(repeats):
        env = Environment()

        def proc():
            for _ in range(n):
                yield env.pooled_timeout(1.0)

        env.process(proc())
        t0 = time.perf_counter()
        env.run()
        best = max(best, n / (time.perf_counter() - t0))
    return best


def measure_sampling(n: int = 500_000, repeats: int = 3) -> dict:
    """Scalar vs batched draw throughput of the sampling layer (best of N).

    Both legs draw from the same distribution (unit exponential) with the
    same bit stream, so the ratio isolates the per-call overhead the
    :class:`~repro.sim.rand.BatchedStream` prefetch removes.
    """
    scalar_best = 0.0
    for _ in range(repeats):
        rng = np.random.default_rng(7)
        t0 = time.perf_counter()
        for _ in range(n):
            rng.exponential(1.0)
        scalar_best = max(scalar_best, n / (time.perf_counter() - t0))
    batched_best = 0.0
    for _ in range(repeats):
        stream = BatchedStream(np.random.default_rng(7))
        t0 = time.perf_counter()
        for _ in range(n):
            stream.exponential(1.0)
        batched_best = max(batched_best, n / (time.perf_counter() - t0))
    return {
        "draws": n,
        "scalar_draws_per_second": scalar_best,
        "batched_draws_per_second": batched_best,
        "batched_speedup": batched_best / scalar_best,
    }


def measure_cell_requests(scale: float, repeats: int = 3) -> dict:
    """Simulated requests/sec through one full cluster cell (best of N).

    Builds the cluster directly (rather than via ``run_cell``) so the
    record can include the environment's timeout-pool hit rate.  Best-of
    like the kernel number: a cell is a sub-second run, so a single shot
    mostly measures scheduler noise on a shared machine.
    """
    from repro.kvstore.cluster import Cluster

    scenario = get_scenario("E1", scale=scale)
    point, scheduler = scenario.points[0], scenario.schedulers[-1]
    config = dataclasses.replace(
        point.config, scheduler=scheduler.name, scheduler_params=dict(scheduler.params)
    )
    best: dict = {}
    for _ in range(repeats):
        t0 = time.perf_counter()
        cluster = Cluster(config)
        result = cluster.run(point.sim)
        wall = time.perf_counter() - t0
        record = {
            "requests": result.requests_completed,
            "wall_seconds": wall,
            "requests_per_second": result.requests_completed / wall,
        }
        record.update(cluster.env.pool_stats())
        if not best or record["requests_per_second"] > best["requests_per_second"]:
            best = record
    return best


def measure_scenario(scale: float, workers: int) -> dict:
    """Cells/sec sequential vs parallel on the comparison scenario."""
    scenario = get_scenario(SCENARIO_ID, scale=scale)
    n_cells = len(scenario.points) * len(scenario.schedulers)
    # The pool never uses more workers than there are cells; record what
    # actually ran so the speedup number is interpretable.
    effective_workers = min(workers, n_cells)
    timing_skipped = effective_workers <= 1

    t0 = time.perf_counter()
    seq = run_scenario(scenario)
    seq_wall = time.perf_counter() - t0

    if timing_skipped:
        # A one-worker pool cannot beat the sequential runner, so a timed
        # parallel pass would only publish a slower-than-sequential number
        # that misreads as a regression.  Run the parallel engine untimed
        # purely for the determinism check.
        par = run_scenario_parallel(scenario, workers=workers)
        par_wall = None
    else:
        t0 = time.perf_counter()
        par = run_scenario_parallel(scenario, workers=workers)
        par_wall = time.perf_counter() - t0

    identical = all(
        seq.cells[key].summary == par.cells[key].summary
        and seq.cells[key].metrics == par.cells[key].metrics
        for key in seq.cells
    )
    record = {
        "scenario": SCENARIO_ID,
        "cells": n_cells,
        "sequential_wall_seconds": seq_wall,
        "sequential_cells_per_second": n_cells / seq_wall,
        "parallel_workers": effective_workers,
        "parallel_workers_requested": workers,
        "parallel_timing_skipped": timing_skipped,
        "cells_identical": identical,
    }
    if not timing_skipped:
        record["parallel_wall_seconds"] = par_wall
        record["parallel_cells_per_second"] = n_cells / par_wall
        record["speedup"] = seq_wall / par_wall
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=Path("BENCH_engine.json"))
    parser.add_argument("--scale", type=float, default=0.08,
                        help="scenario scale for the cells/sec comparison")
    parser.add_argument("--workers", type=int, default=0,
                        help="pool size for the parallel leg (0 = one per CPU)")
    args = parser.parse_args(argv)
    workers = args.workers or os.cpu_count() or 1

    backend = resolve_engine()
    print(f"[bench_engine] backend: {backend}", flush=True)

    print(f"[bench_engine] event core (heap vs array, scalar vs bulk) ...",
          flush=True)
    event_core = measure_event_core()
    print(
        f"[bench_engine]   scalar {event_core['heap_events_per_second']:,.0f} "
        f"(heap) -> {event_core['array_events_per_second']:,.0f} (array) "
        f"events/s; bulk {event_core['array_bulk_events_per_second']:,.0f} "
        f"events/s (resizes {event_core['bucket_resizes']}, "
        f"slot reuse {event_core['slot_reuse_hit_rate']:.3f})",
        flush=True,
    )

    print(f"[bench_engine] kernel events/sec ...", flush=True)
    events_per_second = measure_kernel_events()
    print(f"[bench_engine]   {events_per_second:,.0f} events/s", flush=True)

    print(f"[bench_engine] sampling layer (scalar vs batched) ...", flush=True)
    sampling = measure_sampling()
    print(
        f"[bench_engine]   {sampling['scalar_draws_per_second']:,.0f} -> "
        f"{sampling['batched_draws_per_second']:,.0f} draws/s "
        f"({sampling['batched_speedup']:.2f}x)",
        flush=True,
    )

    print(f"[bench_engine] end-to-end cell (E1 point, DAS) ...", flush=True)
    cell = measure_cell_requests(args.scale)
    print(
        f"[bench_engine]   {cell['requests_per_second']:,.0f} requests/s "
        f"(timeout pool hit rate {cell['timeout_pool_hit_rate']:.3f})",
        flush=True,
    )

    print(f"[bench_engine] {SCENARIO_ID} sequential vs {workers} workers ...",
          flush=True)
    scenario = measure_scenario(args.scale, workers)
    if scenario["parallel_timing_skipped"]:
        print(
            f"[bench_engine]   {scenario['sequential_cells_per_second']:.2f} "
            f"cells/s sequential; parallel timing skipped (1 worker), "
            f"identical={scenario['cells_identical']}",
            flush=True,
        )
    else:
        print(
            f"[bench_engine]   {scenario['sequential_cells_per_second']:.2f} -> "
            f"{scenario['parallel_cells_per_second']:.2f} cells/s "
            f"(speedup {scenario['speedup']:.2f}x, "
            f"identical={scenario['cells_identical']})",
            flush=True,
        )

    record = {
        "benchmark": "engine",
        "repro_version": __version__,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "backend": backend,
        "sim_events_per_second": events_per_second,
        "event_core": event_core,
        "sampling": sampling,
        "cell_end_to_end": cell,
        "scenario_throughput": scenario,
    }
    args.out.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"[bench_engine] wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
