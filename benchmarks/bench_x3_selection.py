"""X3 — extension (ours): replica-selection shoot-out on a degraded fleet.

Expected shape: on a heterogeneous fleet with mid-run degradations, the
load-oblivious policies (``primary``, ``random``, ``round_robin``) keep
sending reads to the slow servers while the adaptive ones — estimate-
driven (``least_estimated_work``, ``power_of_d``, ``c3``, ``tars``) and
probe-fed (``prequal``) — shed them, cutting both the mean and the tail.

The assertions only require each adaptive policy to beat *both*
load-oblivious baselines (``primary`` and ``random``) outright on mean
and p99 RCT.  No relative ordering among the adaptive policies is
asserted: their spread is well inside run-to-run noise at bench scale,
while the adaptive-vs-oblivious gap is a multiple (roughly 1.4x on mean
and 2-8x on p99 at the default bench scale) and stable down to the CI
smoke scale (0.02), where the scenario sits on its duration floor.
"""

from benchmarks._common import assert_cells_identical, smoke_grid

ADAPTIVE = ("least_estimated_work", "power_of_d", "c3", "tars", "prequal")
OBLIVIOUS = ("primary", "random")


def bench_x3_selection(benchmark, results_dir):
    result = smoke_grid(benchmark, results_dir, "X3")
    assert_cells_identical(result)

    mean = {x: result.cell(x, "DAS").metric("mean") for x in ADAPTIVE + OBLIVIOUS}
    p99 = {x: result.cell(x, "DAS").metric("p99") for x in ADAPTIVE + OBLIVIOUS}
    worst_oblivious_mean = min(mean[x] for x in OBLIVIOUS)
    worst_oblivious_p99 = min(p99[x] for x in OBLIVIOUS)
    for policy in ADAPTIVE:
        assert mean[policy] < worst_oblivious_mean, (
            f"{policy} mean {mean[policy]:.6f}s not below "
            f"best oblivious mean {worst_oblivious_mean:.6f}s"
        )
        assert p99[policy] < worst_oblivious_p99, (
            f"{policy} p99 {p99[policy]:.6f}s not below "
            f"best oblivious p99 {worst_oblivious_p99:.6f}s"
        )
