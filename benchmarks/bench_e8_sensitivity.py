"""E8 — DAS parameter sensitivity on the degradation scenario.

Expected shape: DAS's win over Rein-SBF is robust across the demotion
floor ``k_min`` and the rate-EWMA ``alpha_rate`` — no cliff where a wrong
constant erases the result.
"""

from benchmarks.conftest import execute_scenario, report


def bench_e8_sensitivity(benchmark, results_dir):
    result = execute_scenario(benchmark, "E8")
    report(result, results_dir)

    scenario = result.scenario
    sbf_label = "Rein-SBF"
    das_labels = [s.label for s in scenario.schedulers if s.label != sbf_label]
    for point in scenario.points:
        sbf_mean = result.cell(point.x, sbf_label).metric("mean")
        for label in das_labels:
            das_mean = result.cell(point.x, label).metric("mean")
            # Every DAS configuration stays competitive with Rein-SBF.
            assert das_mean < sbf_mean * 1.15, (
                f"{label} at {point.x} fell off a sensitivity cliff"
            )
