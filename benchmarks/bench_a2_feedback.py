"""A2 — feedback freshness: piggyback vs periodic vs none.

Expected shape: DAS with piggybacked feedback matches (or beats) periodic
broadcasting at zero message cost; with *no* feedback DAS degrades to
static SBF ordering, so its advantage over Rein-SBF disappears at the
no-feedback point — demonstrating the feedback path is what buys the
adaptivity.
"""

from benchmarks.conftest import execute_scenario, report


def bench_a2_feedback(benchmark, results_dir):
    result = execute_scenario(benchmark, "A2")
    report(result, results_dir)

    das_piggy = result.cell("piggyback", "DAS").metric("mean")
    das_none = result.cell("none", "DAS").metric("mean")
    sbf_none = result.cell("none", "Rein-SBF").metric("mean")
    sbf_piggy = result.cell("piggyback", "Rein-SBF").metric("mean")

    # With feedback, DAS beats SBF on the degradation scenario.
    assert das_piggy < sbf_piggy
    # Without feedback, DAS collapses to SBF-like behaviour (within 10%).
    assert abs(das_none - sbf_none) / sbf_none < 0.10
    # Piggyback feedback is at least as good as losing feedback entirely.
    assert das_piggy < das_none * 1.05
