"""Shared skeleton for the X-family bench modules.

Every extension bench follows the same shape: run the scenario grid at
the bench ``--scale``, render and persist the table, re-run the grid
through the parallel engine and require cell-for-cell identity with the
sequential run (the determinism gate), then assert the experiment's
acceptance shape — usually on a separate pinned-scale headline pass.
This module holds the shared pieces; the per-experiment assertions stay
in the bench modules where their rationale is documented.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional

from benchmarks.conftest import execute_scenario, report

from repro.experiments.parallel import run_scenario_parallel
from repro.experiments.runner import ScenarioResult


def smoke_grid(
    benchmark, results_dir: Path, experiment_id: str, scale: Optional[float] = None
) -> ScenarioResult:
    """Run one scenario grid at the bench scale and persist its table."""
    result = execute_scenario(benchmark, experiment_id, scale=scale)
    report(result, results_dir)
    return result


def assert_cells_identical(result: ScenarioResult, workers: int = 4) -> bool:
    """Determinism gate: a parallel re-run must match cell for cell.

    Re-runs ``result``'s scenario through the worker-pool engine at the
    very scale the sequential grid just ran and compares every cell's
    summary and metrics snapshot.  Returns True (for recording in a JSON
    artifact) or raises with the offending experiment id.
    """
    parallel = run_scenario_parallel(result.scenario, workers=workers)
    identical = set(parallel.cells) == set(result.cells) and all(
        parallel.cells[key].summary == result.cells[key].summary
        and parallel.cells[key].metrics == result.cells[key].metrics
        for key in result.cells
    )
    assert identical, (
        f"{result.scenario.experiment_id} parallel cells diverged "
        f"from sequential"
    )
    return identical


def write_json_artifact(
    results_dir: Path, name: str, payload: Dict[str, Any]
) -> Path:
    """Write one bench's machine-readable record under ``results/``."""
    out = results_dir / name
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return out
