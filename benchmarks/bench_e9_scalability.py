"""E9 — scalability: mean RCT vs cluster size at per-server load 0.7.

Expected shape: DAS is fully distributed, so its advantage over FCFS
persists (or grows — larger clusters mean larger fan-out spread) as the
cluster scales; no coordination bottleneck appears.
"""

from benchmarks.conftest import execute_scenario, report


def bench_e9_scalability(benchmark, results_dir):
    result = execute_scenario(benchmark, "E9")
    report(result, results_dir)

    fcfs = result.series("FCFS")
    das = result.series("DAS")
    for n, d, f in zip(result.xs(), das, fcfs):
        assert 1.0 - d / f > 0.10, f"DAS advantage vanished at {n} servers"
