"""Micro-benchmarks of the performance-critical substrates.

These are true microbenchmarks (pytest-benchmark's statistical mode):
simulation-kernel event throughput, scheduler queue push/pop cost, ring
lookups, and storage operations — the knobs that bound how large a
simulated cluster the harness can drive.
"""

import numpy as np

from repro.core.adaptive import AdaptiveThreshold
from repro.core.das import TAG_RPT
from repro.kvstore.items import OpKind, Operation, Request
from repro.kvstore.partitioning import ConsistentHashRing
from repro.kvstore.storage import StorageEngine
from repro.schedulers.base import QueueContext
from repro.schedulers.registry import create_policy
from repro.sim.core import Environment

N_OPS = 2000


def _make_ops(n: int) -> list:
    ops = []
    for i in range(n):
        request = Request(request_id=i, client_id=0, arrival_time=0.0)
        op = Operation(
            request=request,
            key=f"k{i}",
            kind=OpKind.GET,
            value_size=1000,
            server_id=0,
            demand=(i % 17 + 1) * 1e-4,
        )
        op.tag[TAG_RPT] = op.demand
        op.tag["bottleneck"] = op.demand
        request.operations.append(op)
        ops.append(op)
    return ops


def bench_sim_kernel_event_throughput(benchmark):
    """Timeout schedule/fire cycles per second of the DES kernel."""

    def run():
        env = Environment()

        def proc():
            for _ in range(N_OPS):
                yield env.timeout(1.0)

        env.process(proc())
        env.run()
        return env.now

    result = benchmark(run)
    assert result == N_OPS


def bench_fcfs_queue_cycle(benchmark):
    ops = _make_ops(N_OPS)

    def run():
        queue = create_policy("fcfs").make_queue(
            QueueContext(0, np.random.default_rng(0))
        )
        for op in ops:
            queue.push(op, 0.0)
        while len(queue):
            queue.pop(1.0)

    benchmark(run)


def bench_sbf_queue_cycle(benchmark):
    ops = _make_ops(N_OPS)

    def run():
        queue = create_policy("sbf").make_queue(
            QueueContext(0, np.random.default_rng(0))
        )
        for op in ops:
            queue.push(op, 0.0)
        while len(queue):
            queue.pop(1.0)

    benchmark(run)


def bench_das_queue_cycle(benchmark):
    """DAS adds EWMA + controller work per push; quantify the overhead."""
    ops = _make_ops(N_OPS)

    def run():
        queue = create_policy("das").make_queue(
            QueueContext(0, np.random.default_rng(0))
        )
        for op in ops:
            queue.push(op, 0.0)
        while len(queue):
            queue.pop(1.0)

    benchmark(run)


def bench_ring_lookup(benchmark):
    ring = ConsistentHashRing(range(64), vnodes=128)
    keys = [f"key:{i:08d}" for i in range(1000)]

    def run():
        return [ring.owner(k) for k in keys]

    owners = benchmark(run)
    assert len(owners) == 1000


def bench_storage_get(benchmark):
    store = StorageEngine()
    for i in range(10000):
        store.put(f"k{i}", 100)

    def run():
        for i in range(0, 10000, 7):
            store.get(f"k{i}")

    benchmark(run)


def bench_adaptive_controller_observe(benchmark):
    ctrl = AdaptiveThreshold(adapt_interval=0.0)

    def run():
        for t in range(5000):
            ctrl.observe(t % 20, float(t))

    benchmark(run)
