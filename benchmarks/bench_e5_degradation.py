"""E5 — server performance degradation (0/1/2/4 of 16 servers at 50%).

Expected shape: all policies degrade as more servers slow down; DAS's
piggybacked rate estimates let it deprioritize requests bound for slow
servers, so its curve rises the least — this is a scenario where DAS
clearly beats Rein-SBF (which cannot tell a slow server from a fast one).
"""

from benchmarks.conftest import execute_scenario, report


def bench_e5_degradation(benchmark, results_dir):
    result = execute_scenario(benchmark, "E5")
    report(result, results_dir)

    das = result.series("DAS")
    sbf = result.series("Rein-SBF")
    fcfs = result.series("FCFS")
    # Degradation hurts everyone: the 4-degraded point is worse than the
    # healthy point for FCFS.
    assert fcfs[-1] > fcfs[0]
    # With degraded servers present DAS beats both baselines.
    assert das[-1] < fcfs[-1]
    assert das[-1] < sbf[-1]
