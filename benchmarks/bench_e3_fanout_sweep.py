"""E3 — mean RCT vs multiget fan-out at fixed load 0.7.

Expected shape: RCT grows with fan-out (the max-structure: more parallel
operations, later last completion) for every policy; the DAS/SBF advantage
over FCFS is present across fan-outs and absent only at fan-out where
queueing vanishes.
"""

from benchmarks.conftest import execute_scenario, report


def bench_e3_fanout_sweep(benchmark, results_dir):
    result = execute_scenario(benchmark, "E3")
    report(result, results_dir)

    fcfs = result.series("FCFS")
    das = result.series("DAS")
    # Max-structure: larger mean fan-out completes later under FCFS.
    assert fcfs[-1] > fcfs[0]
    # DAS never loses to FCFS at any fan-out mix, and wins at every point
    # where queueing matters.
    for d, f in zip(das, fcfs):
        assert d < f * 1.05
    assert das[-1] < fcfs[-1]
