"""E4 — time-varying load (MMPP alternating 0.4 <-> 0.95).

Expected shape: FCFS suffers most during spikes; DAS (and SBF) absorb them
via size-aware ordering, and DAS with adaptation disabled is no better
than full DAS.
"""

from benchmarks.conftest import execute_scenario, report


def bench_e4_time_varying(benchmark, results_dir):
    result = execute_scenario(benchmark, "E4")
    report(result, results_dir)

    fcfs = result.series("FCFS")
    das = result.series("DAS")
    noadapt = result.series("DAS-noadapt")
    # DAS beats FCFS clearly at every dwell setting (fast spikes hurt
    # FCFS the most; at long dwells the system is near-stationary and the
    # gap narrows toward the steady-state one).
    for d, f in zip(das, fcfs):
        assert 1.0 - d / f > 0.18
    # Adaptation never hurts materially.
    for d, n in zip(das, noadapt):
        assert d < n * 1.10
