"""E2 — P99 RCT vs offered load.

Expected shape: size-based policies (SBF/DAS) trade some tail for mean at
heavy load; DAS's aging keeps its P99 in the same decade as FCFS's.
"""

from benchmarks.conftest import execute_scenario, report


def bench_e2_tail_latency(benchmark, results_dir):
    result = execute_scenario(benchmark, "E2")
    report(result, results_dir)

    fcfs = result.series("FCFS", "p99")
    das = result.series("DAS", "p99")
    # Tails grow with load for every policy.
    assert fcfs[-1] > fcfs[0]
    assert das[-1] > das[0]
    # DAS's p99 stays within one order of magnitude of FCFS's at every load.
    for d, f in zip(das, fcfs):
        assert d < f * 10
