"""Shared plumbing for the benchmark suite.

Each ``bench_*`` module regenerates one reconstructed table/figure (see
DESIGN.md §4) at ``SCALE`` of the full experiment size, asserts the
paper's qualitative shape, and writes the rendered table to
``benchmarks/results/<id>.txt`` (and stdout, visible with ``pytest -s``).

Run the full-size experiments with ``repro-experiments --all``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

import pytest

from repro.experiments.report import format_reduction_table, format_scenario_table
from repro.experiments.runner import ScenarioResult, run_scenario
from repro.experiments.scenarios import get_scenario

#: Fraction of the full experiment size benches run at.  Overridable per
#: invocation with ``pytest benchmarks/... --scale 0.02`` (the CI
#: smoke matrix job uses the smoke scale; modules that pass an
#: explicit ``scale=`` to :func:`execute_scenario` are unaffected).
SCALE = 0.08

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def pytest_addoption(parser):
    """Register ``--scale`` (only active when benchmarks/ is a test root)."""
    parser.addoption(
        "--scale",
        type=float,
        default=None,
        help=f"Scenario scale for the bench suite (default {SCALE}).",
    )


def pytest_configure(config):
    """Apply a ``--scale`` override to the module default."""
    override = config.getoption("--scale", default=None)
    if override is not None:
        if override <= 0:
            raise pytest.UsageError("--scale must be positive")
        global SCALE
        SCALE = override


def execute_scenario(
    benchmark, experiment_id: str, scale: Optional[float] = None
) -> ScenarioResult:
    """Benchmark one full scenario run (single round — it's a simulation,
    not a microbenchmark) and return its results."""
    scenario = get_scenario(experiment_id, scale=SCALE if scale is None else scale)
    return benchmark.pedantic(
        lambda: run_scenario(scenario), rounds=1, iterations=1
    )


def report(result: ScenarioResult, results_dir: Path, extra: str = "") -> None:
    """Render, persist, and print the scenario's table."""
    text = format_scenario_table(result)
    if result.scenario.experiment_id == "E7":
        text += "\n\n" + format_reduction_table(result)
    if extra:
        text += "\n" + extra
    out = results_dir / f"{result.scenario.experiment_id}.txt"
    out.write_text(text + "\n", encoding="utf-8")
    print()
    print(text)
