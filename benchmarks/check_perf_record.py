"""Structural check on a ``bench_engine.py`` perf record.

Usage: ``python benchmarks/check_perf_record.py /path/to/bench.json``

Asserts the record carries every schema field and passed its
parallel==sequential determinism check.  Deliberately NO wall-clock
assertions — CI runners are too noisy for timing gates; numbers are
compared by hand per docs/benchmarking.md.  (Named ``check_*`` rather
than ``bench_*`` on purpose: pytest collects ``bench_*.py`` modules.)
"""

import json
import sys


def main(path: str) -> None:
    with open(path, encoding="utf-8") as handle:
        record = json.load(handle)
    for key in (
        "backend",
        "sim_events_per_second",
        "event_core",
        "sampling",
        "cell_end_to_end",
        "scenario_throughput",
    ):
        assert key in record, f"missing record key: {key}"
    assert record["backend"] in ("heap", "array"), record["backend"]
    core = record["event_core"]
    for key in (
        "heap_events_per_second",
        "array_events_per_second",
        "array_bulk_events_per_second",
        "bucket_resizes",
        "slot_reuse_hits",
        "slot_reuse_misses",
        "slot_reuse_hit_rate",
    ):
        assert key in core, f"missing event_core key: {key}"
    for key in (
        "scalar_draws_per_second",
        "batched_draws_per_second",
        "batched_speedup",
    ):
        assert key in record["sampling"], f"missing sampling key: {key}"
    cell = record["cell_end_to_end"]
    for key in ("requests_per_second", "timeout_pool_hit_rate"):
        assert key in cell, f"missing cell key: {key}"
    scen = record["scenario_throughput"]
    for key in (
        "sequential_cells_per_second",
        "parallel_workers",
        "parallel_workers_requested",
        "parallel_timing_skipped",
        "cells_identical",
    ):
        assert key in scen, f"missing scenario key: {key}"
    if not scen["parallel_timing_skipped"]:
        # Timing keys exist only when a real multi-worker pool ran;
        # single-worker runs skip the parallel timing pass entirely.
        for key in ("parallel_cells_per_second", "speedup"):
            assert key in scen, f"missing scenario key: {key}"
    assert scen["cells_identical"] is True, "parallel != sequential"
    print("perf record schema OK; cells_identical =", scen["cells_identical"])


if __name__ == "__main__":
    main(sys.argv[1])
