"""A1 — DAS ablation: adaptation / last band / SRPT front.

Expected shape: the SRPT front ordering carries most of the mean-RCT win
(removing it is the most damaging ablation); the last band and adaptation
are protective mechanisms whose removal never helps much.
"""

from benchmarks.conftest import execute_scenario, report


def bench_a1_ablation(benchmark, results_dir):
    result = execute_scenario(benchmark, "A1")
    report(result, results_dir)

    for point in result.scenario.points:
        full = result.cell(point.x, "DAS").metric("mean")
        no_srpt = result.cell(point.x, "DAS w/o SRPT front").metric("mean")
        # Removing the SRPT ordering costs the most.
        assert no_srpt > full, f"SRPT front did not matter at {point.x}"
        # The other ablations stay in DAS's neighbourhood.
        for label in ("DAS w/o adapt", "DAS w/o last band"):
            ablated = result.cell(point.x, label).metric("mean")
            assert ablated < full * 1.5
