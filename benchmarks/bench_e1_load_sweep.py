"""E1 — mean RCT vs offered load (the paper's headline figure).

Expected shape (paper): DAS cuts mean RCT vs FCFS increasingly with load,
exceeding 15% from moderate load and reaching ~50%+ when the system is
hot; DAS tracks or beats Rein-SBF at every point.
"""

from benchmarks.conftest import execute_scenario, report


def bench_e1_load_sweep(benchmark, results_dir):
    result = execute_scenario(benchmark, "E1")
    report(result, results_dir)

    fcfs = result.series("FCFS")
    das = result.series("DAS")
    sbf = result.series("Rein-SBF")
    # Mean RCT is monotone-ish in load for FCFS (allow sampling wiggle at
    # the light-load end, where queueing is negligible).
    assert fcfs[-1] > fcfs[0]
    # DAS beats FCFS clearly at the heavy-load points (paper: 15~50%).
    for i in (-1, -2):
        assert 1.0 - das[i] / fcfs[i] > 0.15
    # DAS stays within a whisker of (or beats) Rein-SBF everywhere.
    for d, s in zip(das, sbf):
        assert d < s * 1.10
