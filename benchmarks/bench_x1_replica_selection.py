"""X1 — extension (ours): DAS estimates driving replica selection.

Expected shape: under Zipf skew with 3-way replication, spreading reads
over replicas beats primary-only, and estimate-driven selection
(``least_estimated_work``, powered by the same feedback DAS already
collects) is at least as good as blind round-robin.
"""

from benchmarks.conftest import execute_scenario, report


def bench_x1_replica_selection(benchmark, results_dir):
    result = execute_scenario(benchmark, "X1")
    report(result, results_dir)

    das_primary = result.cell("primary", "DAS").metric("mean")
    das_rr = result.cell("round_robin", "DAS").metric("mean")
    das_lw = result.cell("least_estimated_work", "DAS").metric("mean")
    # Spreading the hot key over replicas is a large win under skew.
    assert das_rr < das_primary * 0.8
    # Estimate-driven selection does not lose to blind rotation.
    assert das_lw < das_rr * 1.15
