"""X1 — extension (ours): DAS estimates driving replica selection.

Expected shape: under Zipf skew with 3-way replication, spreading reads
over replicas beats primary-only by a wide margin, and timeliness-aware
selection (``tars``, scored from the same feedback estimates DAS already
collects) holds the mean while cutting the tail relative to blind
round-robin.

Tolerances: round-robin's win over primary is a multiple at every scale,
so 0.8x is loose.  On the mean, ``tars`` and round-robin are within
noise of each other at small scales (rotation is already near-optimal
for the mean when all replicas are healthy), hence the 1.2x band; the
p99 check is where the estimate-driven policy genuinely separates, and
1.1x holds from the CI smoke scale (0.02) up.  The degraded-fleet
scenario where adaptive policies dominate outright is X3
(``bench_x3_selection``).
"""

from benchmarks.conftest import execute_scenario, report


def bench_x1_replica_selection(benchmark, results_dir):
    result = execute_scenario(benchmark, "X1")
    report(result, results_dir)

    das_primary = result.cell("primary", "DAS").metric("mean")
    das_rr = result.cell("round_robin", "DAS").metric("mean")
    das_tars = result.cell("tars", "DAS").metric("mean")
    # Spreading the hot key over replicas is a large win under skew.
    assert das_rr < das_primary * 0.8
    # Estimate-driven selection does not lose the mean to blind rotation...
    assert das_tars < das_rr * 1.2
    # ...and wins the tail, where stale-queue routing hurts most.
    rr_p99 = result.cell("round_robin", "DAS").metric("p99")
    tars_p99 = result.cell("tars", "DAS").metric("p99")
    assert tars_p99 < rr_p99 * 1.1
