"""Analytic cross-checks: queueing-theory predictions for the simulator.

A simulation result is only as credible as the simulator; this package
computes closed-form M/M/1 and M/G/1 (Pollaczek–Khinchine) predictions for
configurations where they apply (single-key traffic, FCFS, uniform keys)
so the test suite can validate the discrete-event engine against theory.
"""

from repro.analysis.theory import (
    SingleQueuePrediction,
    mg1_mean_wait,
    mm1_mean_wait,
    predict_single_key_fcfs,
    service_moments_from_keyspace,
)

__all__ = [
    "SingleQueuePrediction",
    "mg1_mean_wait",
    "mm1_mean_wait",
    "predict_single_key_fcfs",
    "service_moments_from_keyspace",
]
