"""Closed-form queueing predictions (M/M/1, M/G/1) for validation.

Applicability: fan-out 1 (each request is one operation), FCFS service,
uniform key popularity (so per-server arrivals are Poisson-split), no
service noise, and stable load.  Under those conditions each server is an
independent M/G/1 queue and the mean request completion time is

    E[RCT] = Wq + E[S] + 2 * network_delay

with ``Wq`` from the Pollaczek–Khinchine formula
``Wq = lambda * E[S^2] / (2 * (1 - rho))``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ConfigError
from repro.kvstore.config import ClusterConfig
from repro.workload.requests import Keyspace


def mm1_mean_wait(lam: float, mu: float) -> float:
    """Mean queueing delay (excluding service) of an M/M/1 queue."""
    if mu <= 0:
        raise ConfigError("service rate must be positive")
    rho = lam / mu
    if not 0 <= rho < 1:
        raise ConfigError(f"M/M/1 unstable or invalid: rho={rho:.3f}")
    return rho / (mu - lam)


def mg1_mean_wait(lam: float, es: float, es2: float) -> float:
    """Pollaczek–Khinchine mean queueing delay of an M/G/1 queue.

    Parameters
    ----------
    lam:
        Arrival rate.
    es, es2:
        First and second moments of the service-time distribution.
    """
    if es <= 0 or es2 <= 0:
        raise ConfigError("service moments must be positive")
    if es2 < es * es:
        raise ConfigError("E[S^2] must be >= E[S]^2")
    rho = lam * es
    if not 0 <= rho < 1:
        raise ConfigError(f"M/G/1 unstable or invalid: rho={rho:.3f}")
    return lam * es2 / (2.0 * (1.0 - rho))


def service_moments_from_keyspace(
    keyspace: Keyspace, per_op_overhead: float, byte_rate: float
) -> Tuple[float, float]:
    """Exact (E[S], E[S^2]) over the materialized keyspace, uniform keys.

    With uniform popularity every key is equally likely, so the service
    time of a random operation takes value ``overhead + size_i/byte_rate``
    with probability 1/N — moments are exact sums, not estimates.
    """
    services = per_op_overhead + keyspace.value_sizes.astype(np.float64) / byte_rate
    return float(services.mean()), float((services**2).mean())


@dataclass(frozen=True)
class SingleQueuePrediction:
    """Theory prediction for a single-key FCFS configuration."""

    per_server_lambda: float
    rho: float
    mean_service: float
    mean_wait: float
    mean_rct: float


def predict_single_key_fcfs(
    config: ClusterConfig, keyspace: Keyspace, ring=None
) -> SingleQueuePrediction:
    """M/G/1 prediction of mean RCT for a fan-out-1 FCFS cluster.

    Requires: fan-out fixed at 1, uniform popularity, zero service noise,
    homogeneous nominal-speed servers, no degradations, replication 1.
    Raises ConfigError when the configuration is outside that envelope.

    When ``ring`` (the cluster's :class:`ConsistentHashRing`) is supplied,
    the prediction is computed *per server* from the exact set of keys each
    server owns — near saturation ``Wq ∝ 1/(1-rho)`` amplifies even small
    ownership imbalance, so the exact split is markedly more accurate than
    the uniform-split approximation used otherwise.
    """
    if config.fanout.mean() != 1.0 or config.fanout.max_fanout() != 1:
        raise ConfigError("prediction requires fan-out exactly 1")
    if config.service.noise_cv != 0:
        raise ConfigError("prediction requires zero service noise")
    if config.server_speeds is not None or config.degradations:
        raise ConfigError("prediction requires homogeneous healthy servers")
    if config.replication_factor != 1:
        raise ConfigError("prediction requires replication factor 1")
    type_name = type(config.popularity).__name__
    if type_name != "UniformPopularity":
        raise ConfigError("prediction requires uniform key popularity")

    total_rate = config.arrivals.mean_rate()
    overhead = config.service.per_op_overhead
    byte_rate = config.service.byte_rate
    net = 2.0 * config.network_base_delay

    if ring is None:
        # Uniform-split approximation.
        lam = total_rate / config.n_servers
        es, es2 = service_moments_from_keyspace(keyspace, overhead, byte_rate)
        wait = mg1_mean_wait(lam, es, es2)
        return SingleQueuePrediction(
            per_server_lambda=lam,
            rho=lam * es,
            mean_service=es,
            mean_wait=wait,
            mean_rct=wait + es + net,
        )

    # Exact split: group keys by owner; each server is its own M/G/1 with
    # arrival share proportional to owned-key count (uniform popularity).
    services_by_server: dict[int, list] = {}
    for idx in range(keyspace.size):
        owner = ring.owner(keyspace.key_name(idx))
        services_by_server.setdefault(owner, []).append(
            overhead + keyspace.value_size(idx) / byte_rate
        )
    n_keys = keyspace.size
    mean_rct = 0.0
    weighted_lambda = 0.0
    weighted_rho = 0.0
    weighted_es = 0.0
    weighted_wait = 0.0
    for services in services_by_server.values():
        arr = np.asarray(services, dtype=np.float64)
        share = arr.size / n_keys
        lam_s = total_rate * share
        es_s = float(arr.mean())
        es2_s = float((arr**2).mean())
        wait_s = mg1_mean_wait(lam_s, es_s, es2_s)
        # A random request lands on this server with probability `share`.
        mean_rct += share * (wait_s + es_s + net)
        weighted_lambda += share * lam_s
        weighted_rho += share * lam_s * es_s
        weighted_es += share * es_s
        weighted_wait += share * wait_s
    return SingleQueuePrediction(
        per_server_lambda=weighted_lambda,
        rho=weighted_rho,
        mean_service=weighted_es,
        mean_wait=weighted_wait,
        mean_rct=mean_rct,
    )
