"""Simulator-vs-theory validation report.

Usage::

    python -m repro.analysis.validate [--requests 40000]

Runs fan-out-1 FCFS clusters across loads and service distributions and
prints the simulated mean RCT next to the M/G/1 (Pollaczek–Khinchine)
prediction — the evidence that the discrete-event engine measures what
queueing theory says it should.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.analysis.theory import predict_single_key_fcfs
from repro.kvstore.cluster import Cluster
from repro.kvstore.config import ClusterConfig, ServiceConfig, SimulationConfig
from repro.workload.arrivals import PoissonArrivals
from repro.workload.fanout import FixedFanout
from repro.workload.popularity import UniformPopularity
from repro.workload.sizes import ExponentialSize, FixedSize, UniformSize


def _config(load: float, sizes, n_servers: int = 4, seed: int = 3) -> ClusterConfig:
    service = ServiceConfig(per_op_overhead=20e-6, byte_rate=50e6, noise_cv=0.0)
    rate = load * n_servers / service.mean_demand(sizes.mean())
    return ClusterConfig(
        n_servers=n_servers,
        n_clients=2,
        seed=seed,
        scheduler="fcfs",
        keyspace_size=2000,
        arrivals=PoissonArrivals(rate=rate),
        fanout=FixedFanout(k=1),
        sizes=sizes,
        popularity=UniformPopularity(),
        service=service,
        network_base_delay=10e-6,
        vnodes=256,
    )


CASES = [
    ("M/D/1 (fixed 4 KiB)", FixedSize(size=4096)),
    ("M/G/1 (uniform sizes)", UniformSize(lo=512, hi=8192)),
    ("~M/M/1 (exponential)", ExponentialSize(mean_size=4096)),
]

LOADS = (0.3, 0.5, 0.7, 0.85)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=40_000)
    args = parser.parse_args(argv)

    print(f"{'case':<24} {'load':>5} {'theory':>10} {'simulated':>10} {'error':>7}")
    print("-" * 60)
    worst = 0.0
    for name, sizes in CASES:
        for load in LOADS:
            config = _config(load, sizes)
            cluster = Cluster(config)
            prediction = predict_single_key_fcfs(config, cluster.keyspace, ring=cluster.ring)
            result = cluster.run(
                SimulationConfig(max_requests=args.requests, warmup_fraction=0.2)
            )
            error = result.mean_rct / prediction.mean_rct - 1.0
            worst = max(worst, abs(error))
            print(
                f"{name:<24} {load:>5.2f} "
                f"{prediction.mean_rct * 1e6:>8.1f}us "
                f"{result.mean_rct * 1e6:>8.1f}us {error * 100:>6.1f}%"
            )
    print("-" * 60)
    print(f"worst absolute error: {worst * 100:.1f}%")
    return 0 if worst < 0.15 else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
