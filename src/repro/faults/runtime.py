"""Runtime adapter: translate a :class:`FaultPlan` into live chaos.

The same declarative plan the simulator wires into its servers and
network model is replayed here against a
:class:`~repro.runtime.cluster.LocalCluster` using the runtime's
existing fault machinery:

* ``Crash`` -> ``cluster.crash(sid)`` (listener closed, sockets severed,
  executor halted without draining — queued work dies with the process);
  ``Recover`` -> ``cluster.restart(sid)``.
* ``Partition`` -> an :class:`~repro.runtime.faults.Outage` covering the
  window on each partitioned server: connections refused and messages
  swallowed, which is what an unreachable server looks like from a
  client.  (The runtime has a single client group, so a client-scoped
  partition degrades to a full cut; the sim models the client axis.)
* ``PacketLoss`` -> :class:`~repro.runtime.faults.DropReplies` in
  probability mode (same seed), installed at ``at`` and removed at
  ``until``.
* ``DelaySpike`` -> :class:`~repro.runtime.faults.DelayReplies` for the
  window.
* ``SlowNode`` -> approximated as ``DelayReplies`` with a per-message
  delay of ``(1/factor - 1) * (per_op_overhead + value_bytes / byte_rate)``
  — the full demand term, so large values are slowed proportionally,
  matching the sim's service-speed semantics.  The executor's service
  rate cannot be changed live, so the slowdown is modelled at the reply
  boundary instead of inside service.  Documented in ``docs/faults.md``.

The driver appends the canonical
:func:`~repro.faults.plan.event_record` dict — with *planned* times, so
wall-clock jitter cannot perturb it — for every applied event, giving
byte-identical timelines to the sim adapter for the parity test.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING, Any, Dict, List, Tuple

from repro.faults.plan import FaultPlan, SlowNode, event_record
from repro.runtime.faults import DelayReplies, DropReplies, FaultPolicy, Outage

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.cluster import LocalCluster

#: Fallback per-op overhead for the SlowNode approximation when a server
#: does not expose its executor's configured value.
_DEFAULT_PER_OP_OVERHEAD = 50e-6


class RuntimeFaultDriver:
    """Replays a fault plan against a running :class:`LocalCluster`.

    ``time_scale`` maps plan seconds to wall seconds (default 1.0);
    shrink it to replay a long simulated plan quickly in an integration
    test.  Timeline records always carry the plan's own times.
    """

    def __init__(
        self,
        cluster: "LocalCluster",
        plan: FaultPlan,
        time_scale: float = 1.0,
    ):
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self.cluster = cluster
        self.plan = plan
        self.time_scale = time_scale
        #: Canonical applied-event dicts, appended as each event fires.
        self.timeline: List[Dict[str, Any]] = []
        #: (entry id, server) -> installed windowed policy, for removal.
        self._installed: Dict[Tuple[int, int], FaultPolicy] = {}
        self._task: asyncio.Task | None = None

    # ------------------------------------------------------------------
    def start(self) -> "RuntimeFaultDriver":
        """Begin replaying the plan as a background task."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self.run())
        return self

    async def wait(self) -> None:
        """Block until every plan event has been applied."""
        if self._task is not None:
            await self._task
        else:
            await self.run()

    async def run(self) -> None:
        """Apply every scheduled event at its (scaled) time."""
        loop = asyncio.get_running_loop()
        start = loop.time()
        for when, _, kind, entry in self.plan.scheduled_events():
            delay = start + when * self.time_scale - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            await self._apply(when, kind, entry)

    # ------------------------------------------------------------------
    def _server_policies(self, entry) -> List[int]:
        servers = getattr(entry, "servers", None)
        if servers is None:
            servers = range(len(self.cluster.servers))
        return list(servers)

    def _slow_delay(self, entry: SlowNode) -> Tuple[float, float]:
        """(fixed, per-byte) reply delay approximating the slowdown.

        A factor-``f`` server takes ``demand / f`` instead of ``demand``;
        the reply-boundary approximation adds the missing
        ``(1/f - 1) * demand`` with demand split into its fixed
        (``per_op_overhead``) and size-dependent (``bytes / byte_rate``)
        terms.
        """
        server = self.cluster.servers[entry.server_id]
        overhead = getattr(server, "per_op_overhead", None)
        if overhead is None:
            overhead = _DEFAULT_PER_OP_OVERHEAD
        byte_rate = getattr(server, "byte_rate", None)
        slow = 1.0 / entry.factor - 1.0
        per_op = slow * max(overhead, 1e-6)
        per_byte = slow / byte_rate if byte_rate else 0.0
        return per_op, per_byte

    async def _apply(self, when: float, kind: str, entry) -> None:
        cluster = self.cluster
        if kind == "crash":
            await cluster.crash(entry.server_id)
        elif kind == "recover":
            await cluster.restart(entry.server_id)
        elif kind == "partition_start":
            window = (entry.until - entry.at) * self.time_scale
            for sid in self._server_policies(entry):
                policy = Outage(0.0, window)
                self._installed[(id(entry), sid)] = policy
                cluster.servers[sid].faults.add(policy)
        elif kind == "partition_end":
            self._remove(entry)
        elif kind == "packet_loss_start":
            for sid in self._server_policies(entry):
                policy = DropReplies(probability=entry.probability, seed=entry.seed)
                self._installed[(id(entry), sid)] = policy
                cluster.servers[sid].faults.add(policy)
        elif kind == "packet_loss_end":
            self._remove(entry)
        elif kind == "delay_spike_start":
            for sid in self._server_policies(entry):
                policy = DelayReplies(delay=entry.extra)
                self._installed[(id(entry), sid)] = policy
                cluster.servers[sid].faults.add(policy)
        elif kind == "delay_spike_end":
            self._remove(entry)
        elif kind == "slow_node_start":
            per_op, per_byte = self._slow_delay(entry)
            policy = DelayReplies(delay=per_op, delay_per_byte=per_byte)
            self._installed[(id(entry), entry.server_id)] = policy
            cluster.servers[entry.server_id].faults.add(policy)
        elif kind == "slow_node_end":
            self._remove(entry)
        self.timeline.append(event_record(when, kind, entry))

    def _remove(self, entry) -> None:
        for (entry_id, sid), policy in list(self._installed.items()):
            if entry_id == id(entry):
                self.cluster.servers[sid].faults.remove(policy)
                del self._installed[(entry_id, sid)]

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Applied timeline snapshot, mirroring the sim driver's block."""
        return {"applied": list(self.timeline)}
