"""Chaos-run reporting: phase-split latency and time-to-recover.

Chaos cells measure two things beyond an ordinary latency summary: how
bad the tail got *while* the fault was active, and how long the cluster
took to work off the damage *after* the plan's last event.  Both derive
from the collector's per-request records plus the plan's fault window,
so the report is computed after the run with no instrumentation cost.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable

import numpy as np

from repro.faults.plan import FaultPlan


def _p99(rcts: list) -> float:
    if not rcts:
        return float("nan")
    return float(np.percentile(np.asarray(rcts, dtype=np.float64), 99))


def phase_summary(
    records: Iterable[Any], plan: FaultPlan
) -> Dict[str, Any]:
    """Split request records into before/during/after the fault window.

    ``records`` are request-record-shaped objects (``arrival_time``,
    ``completion_time``, ``rct`` — e.g.
    :class:`~repro.metrics.collector.RequestRecord`).  Returns per-phase
    request counts and p99 RCT, plus ``time_to_recover``: how long after
    the window's end the last request that *arrived during the fault*
    completed (0.0 when the backlog cleared before the fault ended;
    NaN when no request arrived during the window).
    """
    window = plan.fault_window()
    if window is None:
        rcts = [r.rct for r in records]
        return {
            "fault_window": None,
            "phases": {"all": {"requests": len(rcts), "p99_rct": _p99(rcts)}},
            "time_to_recover": 0.0,
        }
    start, end = window
    before, during, after = [], [], []
    last_affected_completion = float("-inf")
    for r in records:
        if r.arrival_time < start:
            before.append(r.rct)
        elif r.arrival_time < end:
            during.append(r.rct)
            if r.completion_time > last_affected_completion:
                last_affected_completion = r.completion_time
        else:
            after.append(r.rct)
    if during:
        time_to_recover = max(0.0, last_affected_completion - end)
    else:
        time_to_recover = float("nan")
    return {
        "fault_window": [start, end],
        "phases": {
            "before": {"requests": len(before), "p99_rct": _p99(before)},
            "during": {"requests": len(during), "p99_rct": _p99(during)},
            "after": {"requests": len(after), "p99_rct": _p99(after)},
        },
        "time_to_recover": time_to_recover,
    }


def chaos_report(result: Any, plan: FaultPlan) -> Dict[str, Any]:
    """Full chaos report for one finished sim run.

    ``result`` is a :class:`~repro.kvstore.cluster.RunResult`-shaped
    object (duck-typed to keep this module import-light): it must expose
    ``collector.records``, ``requests_sent`` and ``requests_completed``.
    """
    report = phase_summary(result.collector.records, plan)
    report["requests_sent"] = result.requests_sent
    report["requests_completed"] = result.requests_completed
    report["requests_lost"] = result.requests_sent - result.requests_completed
    return report
