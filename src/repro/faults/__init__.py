"""Unified fault-plan subsystem shared by the simulator and the runtime.

Mirrors the :mod:`repro.selection` layout: this package holds the
clock-free core — the declarative :class:`FaultPlan` entry types
(:mod:`repro.faults.plan`), the shared resilience primitives
(:mod:`repro.faults.resilience`), and chaos reporting helpers
(:mod:`repro.faults.report`) — while the adapters live in their own
modules and are imported explicitly to avoid import cycles with the
subsystems they drive:

* :mod:`repro.faults.sim` — wires a plan into the simulated cluster
  (server crash/recover lifecycle, network link faults).
* :mod:`repro.faults.runtime` — replays the same plan against a
  :class:`~repro.runtime.cluster.LocalCluster` via the existing
  :class:`~repro.runtime.faults.FaultInjector` policies and
  ``crash()``/``restart()``.

See ``docs/faults.md`` for the plan schema and adapter semantics.
"""

from repro.faults.plan import (
    Crash,
    DelaySpike,
    FaultEntry,
    FaultPlan,
    PacketLoss,
    Partition,
    Recover,
    SlowNode,
    event_record,
)
from repro.faults.report import chaos_report, phase_summary
from repro.faults.resilience import (
    CircuitBreaker,
    FailureDetectorConfig,
    HedgePolicy,
    LatencyTracker,
)

__all__ = [
    "CircuitBreaker",
    "Crash",
    "DelaySpike",
    "FailureDetectorConfig",
    "FaultEntry",
    "FaultPlan",
    "HedgePolicy",
    "LatencyTracker",
    "PacketLoss",
    "Partition",
    "Recover",
    "SlowNode",
    "chaos_report",
    "event_record",
    "phase_summary",
]
