"""Simulator adapter: wire a :class:`FaultPlan` into a live cluster.

Two cooperating pieces:

* :class:`LinkFaults` — the active network fault state.  The cluster
  installs one on its :class:`~repro.kvstore.network.NetworkModel`; the
  model consults it per message (partition drops, seeded packet loss,
  additive delay spikes).  When no windows are active the check is one
  attribute read, so healthy runs pay nothing measurable.
* :class:`SimFaultDriver` — a simulation process that walks the plan's
  scheduled events in time order and applies each one: ``Crash`` /
  ``Recover`` call the sim server's crash/recover lifecycle (queue
  drained to failure), windowed link entries toggle :class:`LinkFaults`,
  and ``SlowNode`` entries are recorded for observability (their speed
  steps are folded into the server's ``ServiceModel`` at cluster build
  time, where the step-function lookup applies them exactly).

The driver appends the canonical
:func:`~repro.faults.plan.event_record` dict for every applied event to
``timeline`` — the same dicts the runtime adapter records — which is
what the sim/runtime parity test compares.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.faults.plan import (
    DelaySpike,
    FaultPlan,
    PacketLoss,
    Partition,
    event_record,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.kvstore.network import NetworkModel
    from repro.kvstore.server import Server
    from repro.obs import MetricsRegistry

#: Sentinel extra-delay meaning "drop the message".
DROP = float("inf")


class LinkFaults:
    """Currently-active link-level faults, consulted per message.

    ``verdict(src, dst)`` returns the extra delay to add to the message
    (0.0 when unaffected) or :data:`DROP` when the message must vanish.
    Endpoints are the network model's ``("client", id)`` / ``("server",
    id)`` tuples.
    """

    def __init__(self):
        #: (clients frozenset | None, servers frozenset) active cuts.
        self._partitions: List[Tuple[Optional[frozenset], frozenset, Partition]] = []
        #: (servers frozenset | None, probability, rng) active loss windows.
        self._loss: List[Tuple[Optional[frozenset], float, Any, PacketLoss]] = []
        #: (servers frozenset | None, extra) active delay windows.
        self._delay: List[Tuple[Optional[frozenset], float, DelaySpike]] = []
        self.dropped_partition = 0
        self.dropped_loss = 0
        self.delayed_messages = 0

    @property
    def active(self) -> bool:
        return bool(self._partitions or self._loss or self._delay)

    # -- window toggling (driver-only) ---------------------------------
    def start_partition(self, entry: Partition) -> None:
        clients = frozenset(entry.clients) if entry.clients is not None else None
        self._partitions.append((clients, frozenset(entry.servers), entry))

    def end_partition(self, entry: Partition) -> None:
        self._partitions = [p for p in self._partitions if p[2] is not entry]

    def start_loss(self, entry: PacketLoss, rng: np.random.Generator) -> None:
        servers = frozenset(entry.servers) if entry.servers is not None else None
        self._loss.append((servers, entry.probability, rng, entry))

    def end_loss(self, entry: PacketLoss) -> None:
        self._loss = [l for l in self._loss if l[3] is not entry]

    def start_delay(self, entry: DelaySpike) -> None:
        servers = frozenset(entry.servers) if entry.servers is not None else None
        self._delay.append((servers, entry.extra, entry))

    def end_delay(self, entry: DelaySpike) -> None:
        self._delay = [d for d in self._delay if d[2] is not entry]

    # -- the per-message check -----------------------------------------
    @staticmethod
    def _endpoints(src: Hashable, dst: Hashable) -> Tuple[Optional[int], Optional[int]]:
        """Extract (client_id, server_id) from a link's endpoints."""
        client_id = server_id = None
        for end in (src, dst):
            if isinstance(end, tuple) and len(end) == 2:
                role, ident = end
                if role == "client":
                    client_id = ident
                elif role == "server":
                    server_id = ident
        return client_id, server_id

    def verdict(self, src: Hashable, dst: Hashable) -> float:
        """Extra delay for this message, or :data:`DROP`."""
        client_id, server_id = self._endpoints(src, dst)
        for clients, servers, _ in self._partitions:
            if server_id in servers and (clients is None or client_id in clients):
                self.dropped_partition += 1
                return DROP
        for servers, probability, rng, _ in self._loss:
            if servers is None or server_id in servers:
                if rng.random() < probability:
                    self.dropped_loss += 1
                    return DROP
        extra = 0.0
        for servers, add, _ in self._delay:
            if servers is None or server_id in servers:
                extra += add
        if extra > 0.0:
            self.delayed_messages += 1
        return extra

    def counters(self) -> Dict[str, int]:
        return {
            "dropped_partition": self.dropped_partition,
            "dropped_loss": self.dropped_loss,
            "delayed_messages": self.delayed_messages,
        }


class SimFaultDriver:
    """Applies a plan's events to a simulated cluster at their times."""

    def __init__(
        self,
        env,
        plan: FaultPlan,
        servers: Dict[int, "Server"],
        network: "NetworkModel",
        registry: Optional["MetricsRegistry"] = None,
    ):
        self.env = env
        self.plan = plan
        self.servers = servers
        self.network = network
        self.link = LinkFaults()
        network.faults = self.link
        #: Canonical applied-event dicts, appended as each event fires.
        self.timeline: List[Dict[str, Any]] = []
        #: kind -> live count, for trace tagging and the activity gauge.
        self._active: Dict[str, int] = {}
        self._loss_rngs: Dict[int, np.random.Generator] = {
            id(entry): np.random.default_rng(entry.seed)
            for entry in plan.entries
            if isinstance(entry, PacketLoss)
        }
        self._schedule = plan.scheduled_events()
        self._counters: Dict[str, Any] = {}
        self._registry = registry
        if registry is not None:
            registry.gauge(
                "fault_active_windows",
                "Fault-plan windows (and crashes) currently in effect",
                fn=lambda: float(sum(self._active.values())),
            )
            registry.gauge(
                "fault_servers_crashed",
                "Servers currently crashed by the fault plan",
                fn=lambda: float(
                    sum(1 for s in self.servers.values() if s.crashed)
                ),
            )
        if self._schedule:
            self.process = env.process(self._run())

    # ------------------------------------------------------------------
    def active_kinds(self) -> Tuple[str, ...]:
        """Sorted base kinds ('crash', 'partition', ...) currently active."""
        return tuple(sorted(k for k, n in self._active.items() if n > 0))

    def _count(self, kind: str) -> None:
        if self._registry is not None:
            counter = self._counters.get(kind)
            if counter is None:
                counter = self._registry.counter(
                    "fault_events_total",
                    "Fault-plan events applied, by kind",
                    kind=kind,
                )
                self._counters[kind] = counter
            counter.inc()

    def _run(self):
        env = self.env
        for when, _, kind, entry in self._schedule:
            delay = when - env.now
            if delay > 0:
                yield env.pooled_timeout(delay)
            self._apply(when, kind, entry)

    def _apply(self, when: float, kind: str, entry) -> None:
        if kind == "crash":
            self.servers[entry.server_id].crash()
            self._active["crash"] = self._active.get("crash", 0) + 1
        elif kind == "recover":
            self.servers[entry.server_id].recover()
            self._active["crash"] = self._active.get("crash", 0) - 1
        elif kind == "partition_start":
            self.link.start_partition(entry)
        elif kind == "partition_end":
            self.link.end_partition(entry)
        elif kind == "packet_loss_start":
            self.link.start_loss(entry, self._loss_rngs[id(entry)])
        elif kind == "packet_loss_end":
            self.link.end_loss(entry)
        elif kind == "delay_spike_start":
            self.link.start_delay(entry)
        elif kind == "delay_spike_end":
            self.link.end_delay(entry)
        # slow_node_start/_end: speed steps were merged into the server's
        # ServiceModel at build time; here we only track/record them.
        if kind.endswith("_start"):
            base = kind[: -len("_start")]
            self._active[base] = self._active.get(base, 0) + 1
        elif kind.endswith("_end"):
            base = kind[: -len("_end")]
            self._active[base] = self._active.get(base, 0) - 1
        self._count(kind)
        self.timeline.append(event_record(when, kind, entry))

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Applied timeline plus live fault state, for run snapshots."""
        return {
            "applied": list(self.timeline),
            "active": list(self.active_kinds()),
            "network": self.link.counters(),
        }
