"""Declarative fault plans shared by the simulator and the runtime.

A :class:`FaultPlan` is an ordered set of timed fault entries — crashes,
recoveries, partitions, lossy or slow links, degraded nodes — with no
clock of its own: times are plain floats relative to run start, and the
adapters (:mod:`repro.faults.sim` for the simulated cluster,
:mod:`repro.faults.runtime` for the asyncio cluster) decide what a
second means.  One plan therefore drives both halves of the system, and
both report the *same* applied timeline, which the parity tests compare
entry for entry.

Entry semantics:

* :class:`Crash` / :class:`Recover` — hard process death and rebirth.
  Unlike an outage window (which parks queued work), a crash *drops* the
  server's queued and in-flight operations; clients only learn through
  timeouts.
* :class:`Partition` — a client-group <-> server-group reachability cut:
  messages in either direction between the named groups vanish for the
  window.
* :class:`PacketLoss` — probabilistic message drops on links touching
  the named servers (seeded, so deterministic).
* :class:`DelaySpike` — additive delay on links touching the named
  servers.
* :class:`SlowNode` — the server's service speed is multiplied down to
  ``factor`` for the window (the simulator folds this into its
  time-varying :class:`~repro.kvstore.service.ServiceModel`; the runtime
  approximates it with delayed replies).

Every entry type is a frozen dataclass, so a plan embeds in the frozen
``ClusterConfig`` and contributes a deterministic ``repr`` to the
parallel engine's checkpoint fingerprints.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import ConfigError


@dataclass(frozen=True)
class Crash:
    """Hard-kill ``server_id`` at ``at``; queued ops are dropped."""

    server_id: int
    at: float

    def __post_init__(self):
        _check_time(self.at, "Crash.at")
        _check_server(self.server_id)


@dataclass(frozen=True)
class Recover:
    """Bring a crashed ``server_id`` back at ``at`` (empty queue)."""

    server_id: int
    at: float

    def __post_init__(self):
        _check_time(self.at, "Recover.at")
        _check_server(self.server_id)


@dataclass(frozen=True)
class Partition:
    """Cut reachability between ``clients`` and ``servers`` for a window.

    ``clients=None`` means every client.  Messages crossing the cut in
    either direction are dropped for ``[at, until)``.
    """

    at: float
    until: float
    servers: Tuple[int, ...]
    clients: Optional[Tuple[int, ...]] = None

    def __post_init__(self):
        _check_window(self.at, self.until, "Partition")
        object.__setattr__(self, "servers", tuple(self.servers))
        if not self.servers:
            raise ConfigError("Partition needs at least one server")
        for sid in self.servers:
            _check_server(sid)
        if self.clients is not None:
            object.__setattr__(self, "clients", tuple(self.clients))
            for cid in self.clients:
                if cid < 0:
                    raise ConfigError(f"invalid client id {cid}")


@dataclass(frozen=True)
class PacketLoss:
    """Drop messages touching ``servers`` with ``probability`` for a window.

    ``servers=None`` afflicts every link.  Draws come from a dedicated
    generator seeded by ``seed``, so loss patterns are reproducible.
    """

    at: float
    until: float
    probability: float
    servers: Optional[Tuple[int, ...]] = None
    seed: int = 0

    def __post_init__(self):
        _check_window(self.at, self.until, "PacketLoss")
        if not 0.0 < self.probability <= 1.0:
            raise ConfigError(
                f"PacketLoss probability must be in (0, 1], got {self.probability}"
            )
        if self.servers is not None:
            object.__setattr__(self, "servers", tuple(self.servers))
            for sid in self.servers:
                _check_server(sid)


@dataclass(frozen=True)
class DelaySpike:
    """Add ``extra`` seconds to messages touching ``servers`` for a window."""

    at: float
    until: float
    extra: float
    servers: Optional[Tuple[int, ...]] = None

    def __post_init__(self):
        _check_window(self.at, self.until, "DelaySpike")
        if self.extra <= 0:
            raise ConfigError(f"DelaySpike extra must be positive, got {self.extra}")
        if self.servers is not None:
            object.__setattr__(self, "servers", tuple(self.servers))
            for sid in self.servers:
                _check_server(sid)


@dataclass(frozen=True)
class SlowNode:
    """Multiply ``server_id``'s speed by ``factor`` for ``[at, until)``."""

    server_id: int
    at: float
    until: float
    factor: float

    def __post_init__(self):
        _check_window(self.at, self.until, "SlowNode")
        _check_server(self.server_id)
        if not 0.0 < self.factor < 1.0:
            raise ConfigError(
                f"SlowNode factor must be in (0, 1), got {self.factor}"
            )


FaultEntry = Union[Crash, Recover, Partition, PacketLoss, DelaySpike, SlowNode]

#: Registry used by serialization; kind strings are the lowercase names.
_ENTRY_TYPES: Dict[str, type] = {
    "crash": Crash,
    "recover": Recover,
    "partition": Partition,
    "packet_loss": PacketLoss,
    "delay_spike": DelaySpike,
    "slow_node": SlowNode,
}
_KIND_BY_TYPE = {cls: kind for kind, cls in _ENTRY_TYPES.items()}

#: Window entry types contribute a *_start and *_end scheduled event.
_WINDOWED = (Partition, PacketLoss, DelaySpike, SlowNode)


def _check_time(value: float, label: str) -> None:
    if value < 0:
        raise ConfigError(f"{label} must be >= 0, got {value}")


def _check_window(at: float, until: float, label: str) -> None:
    if at < 0 or until <= at:
        raise ConfigError(f"invalid {label} window ({at}, {until})")


def _check_server(sid: int) -> None:
    if sid < 0:
        raise ConfigError(f"invalid server id {sid}")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, time-ordered script of fault entries.

    Entries may be given in any order; scheduling sorts by time with the
    original order as a stable tie-break, so simultaneous entries apply
    deterministically and identically in both adapters.
    """

    entries: Tuple[FaultEntry, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "entries", tuple(self.entries))
        self._validate_lifecycle()

    def _validate_lifecycle(self) -> None:
        """Crash/Recover pairing: no double-crash, no orphan recover."""
        crashed: Dict[int, bool] = {}
        for _, _, kind, entry in self.scheduled_events():
            if kind == "crash":
                if crashed.get(entry.server_id):
                    raise ConfigError(
                        f"server {entry.server_id} crashed twice without recovery"
                    )
                crashed[entry.server_id] = True
            elif kind == "recover":
                if not crashed.get(entry.server_id):
                    raise ConfigError(
                        f"recover of server {entry.server_id} without a prior crash"
                    )
                crashed[entry.server_id] = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __bool__(self) -> bool:
        return bool(self.entries)

    def validate_for(self, n_servers: int, n_clients: int) -> None:
        """Check every referenced server/client id exists in the cluster."""
        for entry in self.entries:
            sids: Tuple[int, ...] = ()
            if isinstance(entry, (Crash, Recover, SlowNode)):
                sids = (entry.server_id,)
            elif getattr(entry, "servers", None) is not None:
                sids = entry.servers
            for sid in sids:
                if sid >= n_servers:
                    raise ConfigError(
                        f"fault plan references unknown server {sid} "
                        f"(cluster has {n_servers})"
                    )
            clients = getattr(entry, "clients", None)
            if clients is not None:
                for cid in clients:
                    if cid >= n_clients:
                        raise ConfigError(
                            f"fault plan references unknown client {cid} "
                            f"(cluster has {n_clients})"
                        )

    def scheduled_events(self) -> List[Tuple[float, int, str, FaultEntry]]:
        """Time-ordered ``(time, order, kind, entry)`` application points.

        Windowed entries contribute a ``<kind>_start`` at ``at`` and a
        ``<kind>_end`` at ``until``; instantaneous entries contribute one
        event.  ``order`` is the stable tie-break both adapters share.
        """
        raw: List[Tuple[float, int, str, FaultEntry]] = []
        for i, entry in enumerate(self.entries):
            kind = _KIND_BY_TYPE[type(entry)]
            if isinstance(entry, _WINDOWED):
                raw.append((entry.at, i, f"{kind}_start", entry))
                raw.append((entry.until, i, f"{kind}_end", entry))
            else:
                raw.append((entry.at, i, kind, entry))
        raw.sort(key=lambda item: (item[0], item[1]))
        return raw

    def timeline(self) -> List[Dict[str, Any]]:
        """The canonical applied-event dicts, in application order.

        Both adapters append exactly these dicts as they fire each event,
        so a completed sim run and a completed runtime run of the same
        plan report byte-identical timelines.
        """
        return [
            event_record(when, kind, entry)
            for when, _, kind, entry in self.scheduled_events()
        ]

    def fault_window(self) -> Optional[Tuple[float, float]]:
        """Earliest onset and latest end across all entries (None if empty)."""
        if not self.entries:
            return None
        events = self.scheduled_events()
        return events[0][0], events[-1][0]

    def slow_windows(self, server_id: int) -> Tuple[Tuple[float, float], ...]:
        """``(time, factor)`` speed steps for one server's SlowNode entries.

        Each entry yields ``(at, factor)`` and ``(until, 1.0)`` — directly
        convertible to the simulator's ``DegradationEvent`` schedule.
        """
        steps: List[Tuple[float, float]] = []
        for entry in self.entries:
            if isinstance(entry, SlowNode) and entry.server_id == server_id:
                steps.append((entry.at, entry.factor))
                steps.append((entry.until, 1.0))
        return tuple(steps)

    # ------------------------------------------------------------------
    # Serialization (plan files)
    # ------------------------------------------------------------------
    def to_dicts(self) -> List[Dict[str, Any]]:
        """JSON-able entry list; round-trips through :meth:`from_dicts`."""
        out = []
        for entry in self.entries:
            d: Dict[str, Any] = {"kind": _KIND_BY_TYPE[type(entry)]}
            for f in fields(entry):
                value = getattr(entry, f.name)
                d[f.name] = list(value) if isinstance(value, tuple) else value
            out.append(d)
        return out

    @classmethod
    def from_dicts(cls, dicts: List[Dict[str, Any]]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dicts` output (or a plan file)."""
        entries = []
        for d in dicts:
            d = dict(d)
            kind = d.pop("kind", None)
            entry_type = _ENTRY_TYPES.get(kind)
            if entry_type is None:
                known = ", ".join(sorted(_ENTRY_TYPES))
                raise ConfigError(f"unknown fault kind {kind!r}; known: {known}")
            for key in ("servers", "clients"):
                if isinstance(d.get(key), list):
                    d[key] = tuple(d[key])
            entries.append(entry_type(**d))
        return cls(tuple(entries))


def event_record(when: float, kind: str, entry: FaultEntry) -> Dict[str, Any]:
    """The canonical timeline dict for one applied event.

    Times are the *planned* times (identical to fire times in the sim;
    the runtime also records planned times so wall-clock jitter cannot
    break timeline parity).
    """
    record: Dict[str, Any] = {"at": when, "event": kind}
    if isinstance(entry, (Crash, Recover, SlowNode)):
        record["server"] = entry.server_id
    else:
        servers = getattr(entry, "servers", None)
        record["servers"] = list(servers) if servers is not None else None
    if isinstance(entry, Partition):
        record["clients"] = list(entry.clients) if entry.clients is not None else None
    if isinstance(entry, PacketLoss):
        record["probability"] = entry.probability
    if isinstance(entry, DelaySpike):
        record["extra"] = entry.extra
    if isinstance(entry, SlowNode):
        record["factor"] = entry.factor
    return record
