"""Clock-free resilience primitives shared by the sim and the runtime.

These classes originated in :mod:`repro.runtime.resilience` (PR 1) and
moved here once the simulated client gained the same protections: none
of them reads a wall clock on its own — callers inject ``now`` — so the
identical objects serve the asyncio client (monotonic seconds) and the
simulated client (virtual seconds).  :mod:`repro.runtime.resilience`
re-exports them for backwards compatibility.

* :class:`HedgePolicy` + :class:`LatencyTracker` — duplicate a slow read
  once it has been outstanding longer than the observed latency
  percentile (or a fixed threshold); first reply wins.
* :class:`CircuitBreaker` — consecutive failures open the breaker;
  while open, the server is skipped and marked unhealthy; after
  ``reset_timeout`` one half-open probe decides recovery.
* :class:`FailureDetectorConfig` — the declarative knob bundle the
  simulated client builds its per-server breakers from, including the
  synthetic "unhealthy" :class:`~repro.kvstore.items.Feedback` values
  pushed into ``ServerEstimates`` so selection policies and DAS taggers
  route around dead replicas.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class HedgePolicy:
    """When and how to duplicate a slow sub-request.

    A hedge fires once the primary has been outstanding longer than the
    ``percentile`` of recently observed sub-request latencies (needs at
    least ``min_samples`` observations), or ``hedge_after`` seconds when
    set, whichever is defined.  The duplicate goes to a backup replica
    (sim) or out on a dedicated secondary connection (runtime); the
    server sees an identical, idempotent read.
    """

    percentile: float = 95.0
    min_samples: int = 20
    hedge_after: Optional[float] = None
    max_hedges: int = 1

    def __post_init__(self):
        if not 0 < self.percentile < 100:
            raise ConfigError("percentile must be in (0, 100)")
        if self.min_samples < 1:
            raise ConfigError("min_samples must be >= 1")
        if self.hedge_after is not None and self.hedge_after <= 0:
            raise ConfigError("hedge_after must be positive")
        if self.max_hedges < 1:
            raise ConfigError("max_hedges must be >= 1")

    def threshold(self, tracker: "LatencyTracker") -> Optional[float]:
        """Delay before hedging, or None when not enough signal yet."""
        if self.hedge_after is not None:
            return self.hedge_after
        return tracker.percentile(self.percentile, self.min_samples)


class LatencyTracker:
    """Sliding window of sub-request latencies for hedge thresholds."""

    def __init__(self, window: int = 512):
        if window < 1:
            raise ConfigError("window must be >= 1")
        self.window = window
        self._samples: List[float] = []
        self._next = 0

    def record(self, latency: float) -> None:
        if len(self._samples) < self.window:
            self._samples.append(latency)
        else:
            self._samples[self._next] = latency
            self._next = (self._next + 1) % self.window

    def __len__(self) -> int:
        return len(self._samples)

    def percentile(self, p: float, min_samples: int = 1) -> Optional[float]:
        if len(self._samples) < min_samples:
            return None
        return float(np.percentile(self._samples, p))


class CircuitBreaker:
    """Per-server consecutive-failure breaker with half-open probing.

    Clock-free: every method accepts an injected ``now``; when omitted it
    falls back to ``time.monotonic()`` for runtime convenience.
    """

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"

    def __init__(self, failure_threshold: int = 5, reset_timeout: float = 0.5):
        if failure_threshold < 1:
            raise ConfigError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise ConfigError("reset_timeout must be positive")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opened_at = float("-inf")
        self.open_count = 0

    def allow(self, now: Optional[float] = None) -> bool:
        """Whether a call may proceed; transitions open -> half-open."""
        if self.state == self.CLOSED:
            return True
        now = time.monotonic() if now is None else now
        if self.state == self.OPEN and now - self.opened_at >= self.reset_timeout:
            self.state = self.HALF_OPEN
            return True
        return self.state == self.HALF_OPEN

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.state = self.CLOSED

    def record_failure(self, now: Optional[float] = None) -> bool:
        """Fold in a failure; returns True when this opens the breaker."""
        now = time.monotonic() if now is None else now
        self.consecutive_failures += 1
        if self.state == self.HALF_OPEN or (
            self.state == self.CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self.state = self.OPEN
            self.opened_at = now
            self.open_count += 1
            return True
        if self.state == self.OPEN:
            self.opened_at = now
        return False


@dataclass(frozen=True)
class FailureDetectorConfig:
    """Per-server failure detection knobs for the simulated client.

    ``failure_threshold`` consecutive op timeouts against one server open
    its breaker for ``reset_timeout`` (virtual) seconds.  On open, the
    client feeds a synthetic "unhealthy" feedback sample — the
    ``unhealthy_*`` values below, chosen to dwarf any honest report — into
    its :class:`~repro.core.estimator.ServerEstimates` and its selection
    policy, so DAS tags and Tars/Prequal-style scoring steer work away
    from the dead replica instead of rediscovering it op by op.
    """

    failure_threshold: int = 3
    reset_timeout: float = 0.5
    unhealthy_queued_work: float = 60.0
    unhealthy_queue_length: int = 10**6
    unhealthy_rate: float = 1e-3

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ConfigError("failure_threshold must be >= 1")
        if self.reset_timeout <= 0:
            raise ConfigError("reset_timeout must be positive")
        if self.unhealthy_queued_work <= 0 or self.unhealthy_rate <= 0:
            raise ConfigError("unhealthy feedback values must be positive")
        if self.unhealthy_queue_length < 1:
            raise ConfigError("unhealthy_queue_length must be >= 1")
