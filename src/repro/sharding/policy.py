"""The ``laned`` scheduling policy: size lanes wrapping an inner policy.

Registered like any other scheduler, so the whole experiment machinery
(``ClusterConfig.scheduler``, ``SchedulerSpec``, the runtime executor)
picks it up with zero special-casing::

    SchedulerSpec("Lanes+DAS", "laned", {"inner": "das"})

The client-side tagger is the *inner* policy's tagger — DAS's RPT and
horizon tags still flow to the server and order operations within each
lane.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.schedulers.base import ClientTagger, QueueContext, SchedulingPolicy
from repro.schedulers.registry import create_policy, register_policy
from repro.sharding.cutoff import WindowedQuantileCutoff
from repro.sharding.lanes import SizeLaneQueue


@register_policy
class LanedPolicy(SchedulingPolicy):
    """Size-aware two-lane tier composed over any registered policy.

    Parameters
    ----------
    inner / inner_params:
        The policy ordering operations *within* each lane.
    small_share:
        The small lane's weighted-fair share of server capacity.
    cutoff_quantile / cutoff_window / cutoff_min_samples / cutoff_refresh:
        Knobs of :class:`~repro.sharding.cutoff.WindowedQuantileCutoff`.
    cutoff_initial:
        Starting cutoff in bytes (the permanent cutoff when adaptation
        is off).
    adaptive_cutoff:
        When False the cutoff is frozen at ``cutoff_initial`` — the
        static-cutoff ablation arm.
    """

    name = "laned"

    def __init__(
        self,
        inner: str = "das",
        inner_params: Optional[Dict[str, Any]] = None,
        small_share: float = 0.7,
        cutoff_quantile: float = 0.97,
        cutoff_window: int = 512,
        cutoff_min_samples: int = 64,
        cutoff_refresh: int = 64,
        cutoff_initial: float = 8192.0,
        adaptive_cutoff: bool = True,
    ):
        super().__init__(
            inner=inner,
            inner_params=dict(inner_params or {}),
            small_share=small_share,
            cutoff_quantile=cutoff_quantile,
            cutoff_window=cutoff_window,
            cutoff_min_samples=cutoff_min_samples,
            cutoff_refresh=cutoff_refresh,
            cutoff_initial=cutoff_initial,
            adaptive_cutoff=adaptive_cutoff,
        )
        self.inner_policy = create_policy(inner, **(inner_params or {}))
        self.needs_feedback = self.inner_policy.needs_feedback
        self.small_share = small_share
        self._cutoff_kwargs = dict(
            quantile=cutoff_quantile,
            window=cutoff_window,
            min_samples=cutoff_min_samples,
            refresh=cutoff_refresh,
            initial=cutoff_initial,
            enabled=adaptive_cutoff,
        )

    def make_queue(self, context: QueueContext) -> SizeLaneQueue:
        # Each server adapts its own cutoff from the sizes it actually
        # sees — fully distributed, like every other estimate in DAS.
        return SizeLaneQueue(
            context,
            inner_policy=self.inner_policy,
            cutoff=WindowedQuantileCutoff(**self._cutoff_kwargs),
            small_share=self.small_share,
        )

    def make_tagger(self) -> ClientTagger:
        return self.inner_policy.make_tagger()
