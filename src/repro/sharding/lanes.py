"""Two-lane queue: size routing first, scheduling policy within a lane.

The lane layer composes with — rather than replaces — the existing
scheduler zoo: each lane holds its *own* queue built from the inner
policy, so DAS's bands (or SBF's size ordering, or plain FCFS) operate
unchanged inside a lane.  Routing is by operation value size against the
cutoff estimator: a multi-KB get can no longer head-of-line-block the
sub-KB majority because it never enters their queue.

Capacity shares are realized as weighted fair queueing (the classic
single-server reduction of generalized processor sharing): the server
still serves one operation at a time at full speed, and when *both*
lanes are backlogged the dispatcher picks the lane whose normalized
service credit (dispatched demand divided by its share) is lowest.  A
lane with nothing queued cedes the server to the other lane — the
discipline is work-conserving — and a lane that wakes from idle has its
credit clamped forward so it cannot replay banked idle time as a burst
that starves the other lane.

The net effect: small operations never sit in a queue behind a large
one (they can at most wait out the single large already on the CPU,
which no non-preemptive discipline avoids), while consecutive large
operations are spaced ``small_share / (1 - small_share)`` demand-units
apart instead of monopolizing the server back to back.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import ConfigError, SchedulerError
from repro.schedulers.base import QueueContext, SchedulingPolicy, ServerQueue
from repro.sharding.cutoff import WindowedQuantileCutoff

SMALL = "small"
LARGE = "large"


def op_size(op) -> float:
    """Bytes an operation moves: sim ops carry ``value_size``, runtime
    ops carry ``size``."""
    size = getattr(op, "value_size", None)
    if size is None:
        size = getattr(op, "size", 0)
    return size


class SizeLaneQueue(ServerQueue):
    """A :class:`ServerQueue` that fans pushes into per-lane inner queues.

    Routing happens at push time against the then-current cutoff; the
    chosen lane is stamped into ``op.tag["lane"]`` and the cutoff
    estimator observes the size.  Queued operations are never re-routed
    when the cutoff moves (a queue re-shuffle would be neither
    deployable nor deterministic to reason about).

    :meth:`pop` is the weighted-fair dispatcher described in the module
    docstring; it is also what crash drains and runtime aborts walk, so
    no separate drain path exists.
    """

    #: Lane names, in tie-break priority order.  Presence of this
    #: attribute is how the stats plumbing and the obs bridge duck-type
    #: a laned queue.
    lanes: Tuple[str, str] = (SMALL, LARGE)

    def __init__(
        self,
        context: QueueContext,
        inner_policy: SchedulingPolicy,
        cutoff: WindowedQuantileCutoff,
        small_share: float = 0.7,
    ):
        super().__init__(context)
        if not 0.0 < small_share < 1.0:
            raise ConfigError(
                f"small_share must be in (0, 1), got {small_share}"
            )
        self.cutoff_estimator = cutoff
        self.small_share = small_share
        self._inner: Dict[str, ServerQueue] = {
            lane: inner_policy.make_queue(context) for lane in self.lanes
        }
        #: Operations routed into each lane at push time.
        self.routed = {lane: 0 for lane in self.lanes}
        #: Operations dispatched out of each lane.
        self.served = {lane: 0 for lane in self.lanes}
        #: Demand-seconds dispatched per lane (the WFQ ledger's raw side).
        self.consumed = {lane: 0.0 for lane in self.lanes}
        #: Normalized WFQ credit: consumed demand / lane share.  The lane
        #: with the *lower* credit is owed service.
        self._credit = {lane: 0.0 for lane in self.lanes}

    # -- introspection ------------------------------------------------------
    @property
    def cutoff(self) -> float:
        """Current routing cutoff in bytes."""
        return self.cutoff_estimator.cutoff

    def share(self, lane: str) -> float:
        """The lane's weighted-fair share of the server's capacity."""
        return self.small_share if lane == SMALL else 1.0 - self.small_share

    def lane_length(self, lane: str) -> int:
        return len(self._inner[lane])

    def lane_demand(self, lane: str) -> float:
        return self._inner[lane].queued_demand

    # -- routing ------------------------------------------------------------
    def _push(self, op, now: float) -> None:
        size = op_size(op)
        self.cutoff_estimator.observe(size)
        lane = SMALL if self.cutoff_estimator.is_small(size) else LARGE
        op.tag["lane"] = lane
        self.routed[lane] += 1
        if len(self._inner[lane]) == 0:
            # Waking from idle: clamp the lane's credit forward to the
            # other lane's progress so idle time is not banked (standard
            # start-time fair-queueing virtual-time catch-up).
            other = LARGE if lane == SMALL else SMALL
            if self._credit[other] > self._credit[lane]:
                self._credit[lane] = self._credit[other]
        self._inner[lane].push(op, now)

    def _pop(self, now: float):
        small_n = len(self._inner[SMALL])
        large_n = len(self._inner[LARGE])
        if small_n and large_n:
            # Both backlogged: weighted fair pick, small wins ties.
            lane = (
                SMALL
                if self._credit[SMALL] <= self._credit[LARGE]
                else LARGE
            )
        elif small_n:
            lane = SMALL
        elif large_n:
            lane = LARGE
        else:
            raise SchedulerError("pop() from an empty laned queue")
        op = self._inner[lane].pop(now)
        self._credit[lane] += op.demand / self.share(lane)
        self.consumed[lane] += op.demand
        self.served[lane] += 1
        return op

    def on_service_complete(self, op, now: float) -> None:
        # Adaptive inner state (DAS controller, EWMAs) lives per lane;
        # completions go to the queue that owned the op.
        self._inner[op.tag.get("lane", SMALL)].on_service_complete(op, now)
