"""Online size-cutoff estimation for the two-lane service tier.

Minos (Didona & Zwaenepoel, *Size-aware Sharding*) splits requests into
"small" and "large" at a cutoff chosen so that the small lane keeps the
vast majority of *operations* while the large lane absorbs the vast
majority of *bytes*.  We adapt the cutoff online as a windowed quantile
of the observed size stream: deterministic (no clock, no rng), cheap
(one sort per ``refresh`` observations over a bounded ring buffer), and
robust to workload drift (old samples age out of the window).
"""

from __future__ import annotations

from repro.errors import ConfigError


class WindowedQuantileCutoff:
    """Size cutoff tracking a quantile of a sliding sample window.

    Parameters
    ----------
    quantile:
        The fraction of observed sizes routed small, e.g. 0.95 sends the
        largest ~5% of operations to the large lane.
    window:
        Ring-buffer capacity; the quantile is computed over at most this
        many most-recent sizes.
    min_samples:
        Observations required before the first adaptation; until then the
        cutoff stays at ``initial``.
    refresh:
        Recompute the quantile every ``refresh`` observations (amortizes
        the sort; adaptation cadence, not correctness, depends on it).
    initial:
        Starting cutoff in bytes; the permanent cutoff when ``enabled``
        is False (the static-cutoff ablation arm of X4).
    enabled:
        When False, :meth:`observe` only records window state and the
        cutoff never moves.
    """

    def __init__(
        self,
        quantile: float = 0.97,
        window: int = 512,
        min_samples: int = 64,
        refresh: int = 64,
        initial: float = 8192.0,
        enabled: bool = True,
    ):
        if not 0.0 < quantile < 1.0:
            raise ConfigError(f"quantile must be in (0, 1), got {quantile}")
        if window < 2:
            raise ConfigError("window must be >= 2")
        if min_samples < 1 or min_samples > window:
            raise ConfigError("need 1 <= min_samples <= window")
        if refresh < 1:
            raise ConfigError("refresh must be >= 1")
        if initial <= 0:
            raise ConfigError("initial cutoff must be positive")
        self.quantile = quantile
        self.window = window
        self.min_samples = min_samples
        self.refresh = refresh
        self.enabled = enabled
        self.cutoff = float(initial)
        self.initial = float(initial)
        self.updates = 0
        self.observed = 0
        self._ring: list[float] = []
        self._next = 0  # ring-buffer write position once full

    def observe(self, size: float) -> None:
        """Record one size; periodically re-derive the cutoff."""
        if len(self._ring) < self.window:
            self._ring.append(float(size))
        else:
            self._ring[self._next] = float(size)
            self._next = (self._next + 1) % self.window
        self.observed += 1
        if (
            self.enabled
            and self.observed >= self.min_samples
            and self.observed % self.refresh == 0
        ):
            self._recompute()

    def _recompute(self) -> None:
        # Nearest-rank quantile over the window; a sorted copy keeps the
        # ring's age order intact.
        ordered = sorted(self._ring)
        idx = int(self.quantile * (len(ordered) - 1))
        self.cutoff = ordered[idx]
        self.updates += 1

    def is_small(self, size: float) -> bool:
        """Route decision: sizes at or below the cutoff go small."""
        return size <= self.cutoff

    def __repr__(self) -> str:
        return (
            f"WindowedQuantileCutoff(q={self.quantile}, cutoff={self.cutoff:.0f}, "
            f"updates={self.updates}, enabled={self.enabled})"
        )
