"""Size-aware two-lane service tier (Minos-style small/large separation).

Partitions each server's service capacity into a *small-op* lane and a
*large-op* lane with a size cutoff adapted online from the observed size
distribution, composed with the scheduler zoo as "size lane first,
policy within a lane".  See ``docs/sharding.md``.
"""

from repro.sharding.cutoff import WindowedQuantileCutoff
from repro.sharding.lanes import LARGE, SMALL, SizeLaneQueue, op_size
from repro.sharding.policy import LanedPolicy

__all__ = [
    "LARGE",
    "SMALL",
    "LanedPolicy",
    "SizeLaneQueue",
    "WindowedQuantileCutoff",
    "op_size",
]
