"""Cluster assembly: build every component from a config and run it."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.estimator import ServerEstimates
from repro.core.feedback import FeedbackMode
from repro.errors import ConfigError
from repro.faults.sim import SimFaultDriver
from repro.kvstore.client import Client
from repro.kvstore.config import ClusterConfig, SimulationConfig
from repro.kvstore.network import UniformLatencyNetwork
from repro.kvstore.partitioning import ConsistentHashRing
from repro.kvstore.replication import ReplicaPlacement
from repro.kvstore.server import Server, make_periodic_broadcaster
from repro.kvstore.service import DegradationEvent, ServiceModel
from repro.kvstore.storage import StorageEngine
from repro.metrics.collector import MetricsCollector
from repro.metrics.summary import SummaryStats
from repro.obs import MetricsRegistry, Tracer, register_queue_gauges
from repro.schedulers.base import QueueContext
from repro.schedulers.registry import create_policy
from repro.selection import CONTROL_MESSAGE_KINDS, selection_policy_needs
from repro.sim.core import Environment
from repro.sim.rand import RandomStreams
from repro.workload.popularity import PartitionedPopularity
from repro.workload.requests import (
    Keyspace,
    RequestFactory,
    RequestSpec,
    TraceReplayFactory,
)


@dataclass
class RunResult:
    """Outcome of one simulated run."""

    config: ClusterConfig
    sim: SimulationConfig
    collector: MetricsCollector
    warmup_time: float
    sim_time: float
    server_utilizations: List[float]
    requests_sent: int
    requests_completed: int
    #: Observability surfaces captured by the run (live objects; snapshot
    #: with ``registry.snapshot()`` / ``tracer.as_dicts()``).
    registry: Optional[MetricsRegistry] = None
    tracer: Optional[Tracer] = None
    #: Per-server failure/loss accounting (indexed by server id): ops that
    #: executed but failed (e.g. missing key), and ops dropped by crashes.
    server_ops_failed: List[int] = field(default_factory=list)
    server_ops_dropped: List[int] = field(default_factory=list)
    #: Fault-plan timeline + fault-state snapshot ({} on healthy runs).
    faults: Dict[str, Any] = field(default_factory=dict)
    #: Per-server size-lane snapshot ({} unless the scheduler is laned).
    lanes: Dict[int, Dict[str, Any]] = field(default_factory=dict)

    def metrics_snapshot(self) -> Dict[str, Any]:
        """JSON-able registry + trace snapshot of the finished run."""
        return {
            "metrics": self.registry.snapshot() if self.registry else {},
            "traces": self.tracer.as_dicts() if self.tracer else [],
            "faults": self.faults,
            "lanes": self.lanes,
        }

    def summary(self) -> SummaryStats:
        """RCT summary over the steady-state window."""
        return self.collector.summary(self.warmup_time)

    @property
    def mean_rct(self) -> float:
        return self.collector.mean_rct(self.warmup_time)

    def rcts(self):
        return self.collector.rcts(self.warmup_time)

    def percentile(self, q: float) -> float:
        import numpy as np

        return float(np.percentile(self.rcts(), q))

    @property
    def mean_utilization(self) -> float:
        u = self.server_utilizations
        return sum(u) / len(u) if u else 0.0


class Cluster:
    """A fully wired simulated KV cluster.

    Build once per run (components hold simulation state); ``run`` executes
    the configured stopping rule and returns a :class:`RunResult`.
    """

    def __init__(
        self,
        config: ClusterConfig,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.config = config
        self.env = Environment()
        self.streams = RandomStreams(config.seed)
        self.metrics = MetricsCollector()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()

        self.keyspace = Keyspace(
            config.keyspace_size, config.sizes, self.streams.stream("keyspace")
        )
        self.ring = ConsistentHashRing(range(config.n_servers), vnodes=config.vnodes)

        jitter_rng = (
            self.streams.stream("network") if config.network_jitter_mean > 0 else None
        )
        self.network = UniformLatencyNetwork(
            self.env,
            base_delay=config.network_base_delay,
            jitter_mean=config.network_jitter_mean,
            rng=jitter_rng,
        )

        #: The reference service model converts value sizes to demands for
        #: clients; it never samples noise or degradation.
        self.reference_service = ServiceModel(
            per_op_overhead=config.service.per_op_overhead,
            byte_rate=config.service.byte_rate,
        )

        self.policy = create_policy(config.scheduler, **config.scheduler_params)
        self.servers: Dict[int, Server] = {}
        for sid in range(config.n_servers):
            self.servers[sid] = self._build_server(sid)
        self._preload_storage()

        #: Fault-plan driver (None on healthy runs): crashes/recovers
        #: servers and toggles link faults at the plan's times.
        self.fault_driver: Optional[SimFaultDriver] = None
        if config.fault_plan:
            self.fault_driver = SimFaultDriver(
                self.env,
                config.fault_plan,
                self.servers,
                self.network,
                registry=self.registry,
            )
        self._register_fault_gauges()

        self.clients: List[Client] = []
        self._done_event = self.env.event()
        for cid in range(config.n_clients):
            self.clients.append(self._build_client(cid))
        for server in self.servers.values():
            for client in self.clients:
                server.clients[client.client_id] = client

        # One periodic broadcaster covers both delivery styles: A2's
        # PERIODIC feedback mode and the Dodoor-style load reporter (a
        # policy that declares wants_load_reports gets reports even in
        # piggyback mode; an explicit load_report_interval overrides the
        # cadence either way).
        wants_reports = any(
            c.placement.wants_feedback and c.placement.policy.wants_load_reports
            for c in self.clients
        )
        if (
            config.feedback.periodic
            or config.load_report_interval is not None
            or wants_reports
        ):
            interval = (
                config.load_report_interval
                if config.load_report_interval is not None
                else config.feedback.interval
            )
            self._start_periodic_feedback(interval)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _build_server(self, sid: int) -> Server:
        cfg = self.config
        base_speed = cfg.server_speeds[sid] if cfg.server_speeds is not None else 1.0
        noise_rng = (
            self.streams.stream(f"service/{sid}") if cfg.service.noise_cv > 0 else None
        )
        degradations = cfg.degradations.get(sid, ())
        slow_steps = cfg.fault_plan.slow_windows(sid) if cfg.fault_plan else ()
        if slow_steps:
            # SlowNode faults become exact service-speed steps (config
            # validation forbids mixing them with explicit degradations).
            degradations = tuple(
                DegradationEvent(time=t, factor=f) for t, f in slow_steps
            )
        service = ServiceModel(
            per_op_overhead=cfg.service.per_op_overhead,
            byte_rate=cfg.service.byte_rate,
            base_speed=base_speed,
            degradations=degradations,
            noise_cv=cfg.service.noise_cv,
            rng=noise_rng,
        )
        queue = self.policy.make_queue(
            QueueContext(server_id=sid, rng=self.streams.stream(f"sched/{sid}"))
        )
        register_queue_gauges(self.registry, queue, sid)
        return Server(
            env=self.env,
            server_id=sid,
            queue=queue,
            service=service,
            storage=StorageEngine(server_id=sid),
            network=self.network,
            piggyback_feedback=cfg.feedback.piggyback,
            outages=cfg.outages.get(sid, ()),
        )

    def _preload_storage(self) -> None:
        """Populate every server with the keys it owns (all replicas).

        Also warms the keyspace name table and the ring's preference-list
        cache with exactly the ``(key, n)`` pairs clients will look up.
        """
        n = self.config.replication_factor
        keys = self.keyspace.key_names(range(self.keyspace.size))
        sizes = self.keyspace.value_sizes.tolist()
        pref = self.ring.preference_list
        per_server: Dict[int, list] = {sid: [] for sid in self.servers}
        for key, size in zip(keys, sizes):
            for sid in pref(key, n):
                per_server[sid].append((key, size))
        for sid, items in per_server.items():
            self.servers[sid].storage.bulk_put(items, now=0.0)

    def _build_client(self, cid: int) -> Client:
        cfg = self.config
        if cfg.trace is not None:
            factory = TraceReplayFactory(
                cfg.trace, start=cid, stride=cfg.n_clients
            )
        else:
            popularity = cfg.popularity
            if cfg.tenants > 1:
                # Multi-tenant key spaces: confine this client's law to
                # its tenant's disjoint slice of the keyspace.
                popularity = PartitionedPopularity(
                    inner=cfg.popularity,
                    tenant=cid % cfg.tenants,
                    tenants=cfg.tenants,
                )
            spec = RequestSpec(
                arrivals=cfg.arrivals.scaled(1.0 / cfg.n_clients),
                fanout=cfg.fanout,
                popularity=popularity,
                put_fraction=cfg.put_fraction,
            )
            factory = RequestFactory(
                spec,
                self.keyspace,
                rng_arrivals=self.streams.stream(f"arrivals/{cid}"),
                rng_fanout=self.streams.stream(f"fanout/{cid}"),
                rng_keys=self.streams.stream(f"keys/{cid}"),
                rng_kind=(
                    self.streams.stream(f"kind/{cid}") if cfg.put_fraction > 0 else None
                ),
            )
        estimates = None
        if cfg.feedback.mode is not FeedbackMode.NONE:
            estimates = ServerEstimates(**cfg.estimator_params)
        needs = selection_policy_needs(cfg.replica_selection)
        selection_rng = (
            self.streams.stream(f"replica/{cid}") if needs.rng else None
        )
        if needs.estimates and estimates is None:
            raise ConfigError(
                f"{cfg.replica_selection} replica selection requires feedback"
            )
        placement = ReplicaPlacement(
            self.ring,
            replication_factor=cfg.replication_factor,
            selection=cfg.replica_selection,
            rng=selection_rng,
            estimates=estimates,
            selection_params=cfg.replica_selection_params,
            clock=lambda: self.env.now,
        )
        if placement.policy.name != "primary" and cfg.replication_factor > 1:
            self.registry.gauge(
                "client_selection_decisions",
                "Read-replica selections made by this client's policy",
                fn=lambda p=placement.policy: float(p.decisions),
                client=str(cid),
                policy=placement.policy.name,
            )
            for kind in CONTROL_MESSAGE_KINDS:
                self.registry.gauge(
                    "client_control_messages",
                    "Control-plane messages attributed to replica selection",
                    fn=lambda p=placement.policy, k=kind: float(
                        p.control_messages[k]
                    ),
                    client=str(cid),
                    policy=placement.policy.name,
                    kind=kind,
                )
                self.registry.gauge(
                    "client_control_bytes",
                    "Control-plane payload bytes attributed to replica selection",
                    fn=lambda p=placement.policy, k=kind: float(
                        p.control_bytes[k]
                    ),
                    client=str(cid),
                    policy=placement.policy.name,
                    kind=kind,
                )
        # Request ids are partitioned per client so they are globally unique.
        return Client(
            env=self.env,
            client_id=cid,
            factory=factory,
            placement=placement,
            tagger=self.policy.make_tagger(),
            estimates=estimates,
            network=self.network,
            servers=self.servers,
            metrics=self.metrics,
            reference_service=self.reference_service,
            request_id_base=cid * 1_000_000_000,
            on_finished=self._check_drained,
            op_timeout=cfg.op_timeout,
            max_retries=cfg.max_retries,
            tracer=self.tracer if self.tracer.enabled else None,
            hedge=cfg.hedge,
            failure_detector=cfg.failure_detector,
            fault_state=(
                self.fault_driver.active_kinds
                if self.fault_driver is not None
                else None
            ),
            closed_loop=cfg.closed_loop,
            closed_concurrency=cfg.closed_concurrency,
            probes_per_request=cfg.probes_per_request,
        )

    def _start_periodic_feedback(self, interval: float) -> None:
        def deliver_factory(server: Server):
            def deliver(feedback):
                for client in self.clients:
                    self.network.send(
                        ("server", server.server_id),
                        ("client", client.client_id),
                        feedback,
                        client.receive_feedback,
                    )

            return deliver

        for server in self.servers.values():
            self.env.process(
                make_periodic_broadcaster(
                    self.env, server, interval, deliver_factory(server)
                )
            )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _register_fault_gauges(self) -> None:
        """Expose per-server failure/loss counters and network drops."""
        for sid, server in self.servers.items():
            self.registry.gauge(
                "server_ops_failed",
                "Operations that executed but failed (e.g. missing key)",
                fn=lambda s=server: float(s.ops_failed),
                server=str(sid),
            )
            self.registry.gauge(
                "server_ops_dropped",
                "Operations lost to crashes (queued, in-service, or refused)",
                fn=lambda s=server: float(s.ops_dropped),
                server=str(sid),
            )
        self.registry.gauge(
            "network_messages_dropped",
            "Messages dropped by active link faults (partition or loss)",
            fn=lambda n=self.network: float(n.messages_dropped),
        )

    def fault_stats(self) -> Dict[str, Any]:
        """Fault timeline + loss accounting, {} when no plan is configured.

        Shaped like :meth:`selection_stats`: a JSON-able snapshot suitable
        for run artifacts and the sim/runtime parity test.
        """
        if self.fault_driver is None:
            return {}
        stats = self.fault_driver.stats()
        stats["servers"] = {
            sid: {
                "crashed": server.crashed,
                "crashes": server.crashes,
                "ops_dropped": server.ops_dropped,
                "ops_failed": server.ops_failed,
            }
            for sid, server in self.servers.items()
        }
        stats["clients"] = {
            client.client_id: {
                "timeouts_observed": client.timeouts_observed,
                "retries_sent": client.retries_sent,
                "hedges_sent": client.hedges_sent,
                "hedges_won": client.hedges_won,
                "breaker_opens": client.breaker_opens,
                "timers_cancelled": client.timers_cancelled,
            }
            for client in self.clients
        }
        return stats

    def selection_stats(self) -> Dict[int, Dict[str, Any]]:
        """Per-client replica-selection summary (policy, picks, probes)."""
        return {
            client.client_id: client.placement.selection_stats()
            for client in self.clients
        }

    def lane_stats(self) -> Dict[int, Dict[str, Any]]:
        """Per-server size-lane summary, {} unless the scheduler is laned."""
        stats: Dict[int, Dict[str, Any]] = {}
        for sid, server in self.servers.items():
            queue = server.queue
            lanes = getattr(queue, "lanes", None)
            if lanes is None:
                continue
            stats[sid] = {
                "cutoff": queue.cutoff,
                "cutoff_updates": queue.cutoff_estimator.updates,
                "lanes": {
                    lane: {
                        "share": queue.share(lane),
                        "routed": queue.routed[lane],
                        "served": queue.served[lane],
                        "consumed_demand": queue.consumed[lane],
                        "busy_time": server.lane_busy_time.get(lane, 0.0),
                        "queued": queue.lane_length(lane),
                    }
                    for lane in lanes
                },
            }
        return stats

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _check_drained(self, _client: Client) -> None:
        if self._done_event.triggered:
            return
        if all(c.drained for c in self.clients):
            self._done_event.succeed()

    def run(self, sim: SimulationConfig) -> RunResult:
        """Execute the configured stopping rule and summarize."""
        if sim.max_requests is not None:
            per_client = sim.max_requests // len(self.clients)
            extra = sim.max_requests % len(self.clients)
            for i, client in enumerate(self.clients):
                client.max_requests = per_client + (1 if i < extra else 0)
            self.env.run(until=self._done_event)
            warmup_time = self.metrics.warmup_time_for_fraction(sim.warmup_fraction)
        else:
            for client in self.clients:
                client.end_time = sim.duration
            self.env.run(until=sim.duration)
            warmup_time = sim.warmup_fraction * sim.duration
        elapsed = max(self.env.now, 1e-12)
        return RunResult(
            config=self.config,
            sim=sim,
            collector=self.metrics,
            warmup_time=warmup_time,
            sim_time=self.env.now,
            server_utilizations=[
                s.utilization(elapsed) for s in self.servers.values()
            ],
            requests_sent=sum(c.requests_sent for c in self.clients),
            requests_completed=sum(c.requests_completed for c in self.clients),
            registry=self.registry,
            tracer=self.tracer,
            server_ops_failed=[s.ops_failed for s in self.servers.values()],
            server_ops_dropped=[s.ops_dropped for s in self.servers.values()],
            faults=self.fault_stats(),
            lanes=self.lane_stats(),
        )


def run_cluster(config: ClusterConfig, sim: SimulationConfig) -> RunResult:
    """Convenience one-shot: build a cluster and run it."""
    return Cluster(config).run(sim)
