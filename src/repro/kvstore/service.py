"""Service-time model with time-varying server performance.

Operation service time on server ``s`` at time ``t``:

    service = (per_op_overhead + value_bytes / byte_rate) / speed_factor_s(t)

The parenthesised term is the *demand*: the time on a nominal-speed
reference server.  ``speed_factor_s(t)`` is a step function driven by
:class:`DegradationEvent` schedules — this is the "time-varying server
performance" axis the paper's adaptivity targets.  Optional service-time
noise models OS jitter.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.sim.rand import as_batched


@dataclass(frozen=True)
class DegradationEvent:
    """At ``time``, the server's speed factor becomes ``factor``.

    ``factor`` is relative to nominal: 1.0 = full speed, 0.4 = degraded to
    40%.  A recovery is simply another event with factor 1.0.
    """

    time: float
    factor: float

    def __post_init__(self):
        if self.factor <= 0:
            raise ConfigError(f"speed factor must be positive, got {self.factor}")
        if self.time < 0:
            raise ConfigError(f"degradation time must be >= 0, got {self.time}")


class ServiceModel:
    """Computes demands and samples actual service times for one server.

    Parameters
    ----------
    per_op_overhead:
        Fixed per-operation cost in seconds (parse, index lookup, syscall).
    byte_rate:
        Value-processing throughput in bytes/second at nominal speed.
    base_speed:
        Static heterogeneity: this server's nominal speed relative to the
        reference server (1.0 = reference).
    degradations:
        Time-ordered speed-factor changes (need not be pre-sorted).
    noise_cv:
        Coefficient of variation of multiplicative lognormal service noise;
        0 disables noise.
    rng:
        Generator for the noise; required when ``noise_cv > 0``.
    """

    def __init__(
        self,
        per_op_overhead: float = 20e-6,
        byte_rate: float = 200e6,
        base_speed: float = 1.0,
        degradations: Optional[Sequence[DegradationEvent]] = None,
        noise_cv: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        if per_op_overhead < 0:
            raise ConfigError("per_op_overhead must be >= 0")
        if byte_rate <= 0:
            raise ConfigError("byte_rate must be positive")
        if base_speed <= 0:
            raise ConfigError("base_speed must be positive")
        if noise_cv < 0:
            raise ConfigError("noise_cv must be >= 0")
        if noise_cv > 0 and rng is None:
            raise ConfigError("noise_cv > 0 requires an rng")
        self.per_op_overhead = per_op_overhead
        self.byte_rate = byte_rate
        self.base_speed = base_speed
        self.noise_cv = noise_cv
        self._rng = as_batched(rng) if rng is not None else None
        events = sorted(degradations or [], key=lambda e: e.time)
        self._deg_times = [e.time for e in events]
        self._deg_factors = [e.factor for e in events]
        if noise_cv > 0:
            # Lognormal with mean 1 and the requested CV.
            self._sigma2 = float(np.log(1.0 + noise_cv**2))
            self._mu = -self._sigma2 / 2.0
            self._sigma = self._sigma2**0.5

    # ------------------------------------------------------------------
    def demand(self, value_size: int) -> float:
        """Reference-server service demand for a value of ``value_size``."""
        if value_size < 0:
            raise ConfigError(f"negative value size {value_size}")
        return self.per_op_overhead + value_size / self.byte_rate

    def speed_factor(self, now: float) -> float:
        """Current speed multiplier (base heterogeneity × degradation)."""
        factor = self.base_speed
        if not self._deg_times:
            return factor
        # Find the last degradation event at or before `now`.
        idx = bisect.bisect_right(self._deg_times, now) - 1
        if idx >= 0:
            factor *= self._deg_factors[idx]
        return factor

    def sample_service_time(self, value_size: int, now: float) -> float:
        """Actual service time for an operation starting at ``now``."""
        base = self.demand(value_size) / self.speed_factor(now)
        if self.noise_cv > 0:
            base *= self._rng.lognormal(self._mu, self._sigma)
        return base

    def rate_sample(self, demand: float, actual: float) -> float:
        """Observed speed for a completed op: demand seconds per wall second."""
        if actual <= 0:
            return self.base_speed
        return demand / actual

    def next_change_after(self, now: float) -> float:
        """Time of the next scheduled speed change, or inf."""
        idx = bisect.bisect_right(self._deg_times, now)
        if idx < len(self._deg_times):
            return self._deg_times[idx]
        return float("inf")

    def __repr__(self) -> str:
        return (
            f"ServiceModel(overhead={self.per_op_overhead}, "
            f"byte_rate={self.byte_rate:.3g}, base_speed={self.base_speed}, "
            f"degradations={len(self._deg_times)})"
        )
