"""Core data model: requests, operations, and response messages.

An end-user *request* (multiget) consists of one *operation* per key it
touches.  Operations are routed to the servers owning their keys and are
the unit the per-server schedulers order.  A request completes when its
last operation completes — the "max structure" that makes the scheduling
problem the concurrent open shop problem.

These dataclasses are declared with ``slots=True``: a load sweep creates
millions of operations/responses per run, and dropping the per-instance
``__dict__`` cuts both allocation time and peak memory on the simulator
hot path (scheduler tags still live in the explicit ``tag`` dict).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional


class OpKind(enum.Enum):
    """Type of key-value access operation."""

    GET = "get"
    PUT = "put"


@dataclass(slots=True)
class Operation:
    """A single key-value access, scheduled on exactly one server.

    Attributes
    ----------
    request:
        The parent multiget request.
    key:
        The key accessed.
    kind:
        GET or PUT.
    value_size:
        Bytes moved by this operation (read or written).
    server_id:
        Owner server chosen by partitioning/replica selection.
    demand:
        Service demand in seconds on a reference-speed server; the actual
        service time also depends on the server's current speed factor.
    tag:
        Scheduler-specific priority payload stamped by the client-side
        policy (e.g. DAS's remaining-processing-time estimate).  Travels
        with the operation; servers may read but not assume global state.
    """

    request: "Request"
    key: str
    kind: OpKind
    value_size: int
    server_id: int
    demand: float = 0.0
    tag: Dict[str, Any] = field(default_factory=dict)
    index: int = 0

    # Timestamps filled during the operation's life.
    dispatch_time: float = float("nan")
    enqueue_time: float = float("nan")
    start_time: float = float("nan")
    finish_time: float = float("nan")
    response_time: float = float("nan")

    def __repr__(self) -> str:
        return (
            f"Operation(req={self.request.request_id}, key={self.key!r}, "
            f"server={self.server_id}, demand={self.demand:.6f})"
        )

    @property
    def request_id(self) -> int:
        return self.request.request_id

    @property
    def wait_time(self) -> float:
        """Queueing delay at the server (start - enqueue)."""
        return self.start_time - self.enqueue_time

    @property
    def service_time(self) -> float:
        """Actual time spent in service."""
        return self.finish_time - self.start_time


@dataclass(slots=True)
class Request:
    """An end-user multiget request.

    ``remaining`` counts unfinished operations; the request's completion
    time is the finish time of its last operation.
    """

    request_id: int
    client_id: int
    arrival_time: float
    operations: list[Operation] = field(default_factory=list)
    completion_time: float = float("nan")
    meta: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:
        return (
            f"Request(id={self.request_id}, fanout={self.fanout}, "
            f"arrival={self.arrival_time:.6f})"
        )

    @property
    def fanout(self) -> int:
        """Number of operations (keys) in the request."""
        return len(self.operations)

    @property
    def total_demand(self) -> float:
        """Sum of service demands over all operations (seconds)."""
        return sum(op.demand for op in self.operations)

    @property
    def total_bytes(self) -> int:
        return sum(op.value_size for op in self.operations)

    @property
    def remaining(self) -> int:
        """Unfinished operation count (based on recorded finish times)."""
        return sum(1 for op in self.operations if op.finish_time != op.finish_time)

    @property
    def done(self) -> bool:
        return self.completion_time == self.completion_time  # not NaN

    @property
    def rct(self) -> float:
        """Request completion time (completion - arrival)."""
        return self.completion_time - self.arrival_time

    def demands_by_server(self) -> Dict[int, float]:
        """Total service demand this request places on each server."""
        per_server: Dict[int, float] = {}
        for op in self.operations:
            per_server[op.server_id] = per_server.get(op.server_id, 0.0) + op.demand
        return per_server

    def bottleneck_demand(self) -> float:
        """The largest per-server demand — Rein's 'bottleneck' of a multiget."""
        per_server = self.demands_by_server()
        return max(per_server.values()) if per_server else 0.0


@dataclass(slots=True)
class Feedback:
    """Server state piggybacked on every response.

    ``queued_work`` is the server's estimate of the total remaining service
    time of its queue (including the in-service residual is not required —
    schedulers treat it as a congestion signal, not an exact wait).
    ``rate_sample`` is the effective service rate observed for the responded
    operation, in reference-demand-seconds per wall second (1.0 = nominal).
    """

    server_id: int
    queued_work: float
    queue_length: int
    rate_sample: float
    timestamp: float


@dataclass(slots=True)
class Response:
    """Completion message for one operation, sent server -> client."""

    operation: Operation
    ok: bool
    value_size: int
    feedback: Optional[Feedback] = None
    error: Optional[str] = None
