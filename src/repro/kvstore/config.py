"""Declarative configuration for a simulated cluster run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.core.feedback import FeedbackConfig
from repro.errors import ConfigError
from repro.faults.plan import FaultPlan, SlowNode
from repro.faults.resilience import FailureDetectorConfig, HedgePolicy
from repro.kvstore.service import DegradationEvent
from repro.workload.arrivals import ArrivalSpec, PoissonArrivals
from repro.workload.fanout import FanoutSpec, GeometricFanout
from repro.workload.popularity import PopularitySpec, ZipfPopularity
from repro.workload.sizes import LognormalSize, SizeSpec


@dataclass(frozen=True)
class ServiceConfig:
    """Per-operation service cost parameters (shared by all servers).

    Defaults give a mean demand of ~130 microseconds for ~1.7 KiB values —
    a deliberately "fat" operation so simulations need fewer events per
    simulated second; scheduler comparisons are invariant to this scale.
    """

    per_op_overhead: float = 100e-6
    byte_rate: float = 50e6
    noise_cv: float = 0.1

    def __post_init__(self):
        if self.per_op_overhead < 0:
            raise ConfigError("per_op_overhead must be >= 0")
        if self.byte_rate <= 0:
            raise ConfigError("byte_rate must be positive")
        if self.noise_cv < 0:
            raise ConfigError("noise_cv must be >= 0")

    def mean_demand(self, mean_value_size: float) -> float:
        """Reference-server demand of an average operation."""
        return self.per_op_overhead + mean_value_size / self.byte_rate


@dataclass(frozen=True)
class ClusterConfig:
    """Everything needed to build a reproducible simulated cluster."""

    n_servers: int = 20
    n_clients: int = 4
    seed: int = 1

    scheduler: str = "das"
    scheduler_params: Dict[str, Any] = field(default_factory=dict)

    keyspace_size: int = 20_000
    arrivals: ArrivalSpec = field(default_factory=lambda: PoissonArrivals(rate=1000.0))
    fanout: FanoutSpec = field(default_factory=lambda: GeometricFanout(mean_target=5.0))
    sizes: SizeSpec = field(default_factory=lambda: LognormalSize(median=1024.0, sigma=1.0, cap=1 << 18))
    popularity: PopularitySpec = field(default_factory=lambda: ZipfPopularity(s=0.99))
    put_fraction: float = 0.0

    service: ServiceConfig = field(default_factory=ServiceConfig)
    #: Static heterogeneity: per-server nominal speed; None = all 1.0.
    server_speeds: Optional[Tuple[float, ...]] = None
    #: Scheduled speed changes, keyed by server id.
    degradations: Dict[int, Tuple[DegradationEvent, ...]] = field(default_factory=dict)

    network_base_delay: float = 50e-6
    network_jitter_mean: float = 0.0

    replication_factor: int = 1
    replica_selection: str = "primary"
    #: Knobs forwarded to the selection-policy constructor (see
    #: docs/selection.md for each policy's parameters).
    replica_selection_params: Dict[str, Any] = field(default_factory=dict)
    vnodes: int = 64

    feedback: FeedbackConfig = field(default_factory=FeedbackConfig)
    #: ServerEstimates knobs for feedback-driven policies.
    estimator_params: Dict[str, Any] = field(default_factory=dict)
    #: Refresh interval of the asynchronous load reporter (Dodoor-style):
    #: every server broadcasts a load report to every client this often.
    #: None = start a reporter at the feedback interval only when the
    #: selection policy asks for load reports (``wants_load_reports``).
    load_report_interval: Optional[float] = None
    #: Dedicated probe round-trips fired per dispatched request by
    #: probe-driven selection policies (prequal).  0 keeps the sim's
    #: historical free-piggyback behaviour; X5 sets it so probing pays
    #: its real control-plane cost.
    probes_per_request: int = 0
    #: Multi-tenant key spaces: split the keyspace into this many
    #: disjoint partitions; client ``cid`` draws keys only from slice
    #: ``cid % tenants``.
    tenants: int = 1
    #: When set, clients replay these TraceRecords (round-robin) instead of
    #: sampling from arrivals/fanout/popularity.
    trace: Optional[Tuple[Any, ...]] = None
    #: Declarative workload: a registry name ("mmpp-burst") or a spec-file
    #: path ("path/to/spec.toml").  Resolved at construction time — the
    #: spec overwrites arrivals/fanout/sizes/popularity/put_fraction (and
    #: trace/keyspace_size/closed_loop where the spec says so), so the
    #: resolved fields land in this config's repr and therefore in the
    #: parallel engine's cell fingerprint.  See docs/workloads.md.
    workload: Optional[str] = None
    #: Content hash of the resolved workload spec; set during resolution
    #: so checkpoint fingerprints change when a named spec's file changes.
    workload_fingerprint: Optional[str] = None
    #: Closed-loop generation: each client keeps ``closed_concurrency``
    #: requests in flight instead of following the arrival clock.
    closed_loop: bool = False
    closed_concurrency: int = 4

    #: Fault injection: per-server (start, end) outage windows during which
    #: the server serves nothing.
    outages: Dict[int, Tuple[Tuple[float, float], ...]] = field(default_factory=dict)
    #: Client-side operation timeout; a timed-out operation is retried on
    #: the next replica (requires replication_factor > 1 to change server).
    op_timeout: Optional[float] = None
    #: Retries per operation after the original send (0 = no retries).
    max_retries: int = 0
    #: Declarative fault plan (crashes, partitions, loss, delay spikes,
    #: slow nodes) the cluster wires into servers and the network model.
    fault_plan: FaultPlan = field(default_factory=FaultPlan)
    #: Tail hedging: duplicate slow GETs onto a second replica.
    hedge: Optional[HedgePolicy] = None
    #: Per-server failure detector / circuit breaker; requires op_timeout
    #: (the detector is driven by observed op timeouts).
    failure_detector: Optional[FailureDetectorConfig] = None

    def __post_init__(self):
        if self.workload is not None:
            self._resolve_workload()
        if self.n_servers < 1:
            raise ConfigError("n_servers must be >= 1")
        if self.n_clients < 1:
            raise ConfigError("n_clients must be >= 1")
        if self.keyspace_size < 1:
            raise ConfigError("keyspace_size must be >= 1")
        if not 0.0 <= self.put_fraction <= 1.0:
            raise ConfigError("put_fraction must be in [0, 1]")
        if self.server_speeds is not None and len(self.server_speeds) != self.n_servers:
            raise ConfigError(
                f"server_speeds has {len(self.server_speeds)} entries for "
                f"{self.n_servers} servers"
            )
        if self.server_speeds is not None and any(s <= 0 for s in self.server_speeds):
            raise ConfigError("all server speeds must be positive")
        for sid in self.degradations:
            if not 0 <= sid < self.n_servers:
                raise ConfigError(f"degradation for unknown server {sid}")
        for sid, windows in self.outages.items():
            if not 0 <= sid < self.n_servers:
                raise ConfigError(f"outage for unknown server {sid}")
            for start, end in windows:
                if start < 0 or end <= start:
                    raise ConfigError(
                        f"invalid outage window ({start}, {end}) on server {sid}"
                    )
        if self.op_timeout is not None and self.op_timeout <= 0:
            raise ConfigError("op_timeout must be positive")
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.max_retries > 0 and self.op_timeout is None:
            raise ConfigError("max_retries > 0 requires op_timeout")
        if self.replication_factor > self.n_servers:
            raise ConfigError("replication_factor exceeds n_servers")
        if self.fault_plan:
            self.fault_plan.validate_for(self.n_servers, self.n_clients)
            for entry in self.fault_plan.entries:
                if (
                    isinstance(entry, SlowNode)
                    and entry.server_id in self.degradations
                ):
                    raise ConfigError(
                        f"server {entry.server_id} has both a SlowNode fault "
                        "and explicit degradations; use one or the other"
                    )
        if self.failure_detector is not None and self.op_timeout is None:
            raise ConfigError("failure_detector requires op_timeout")
        if self.closed_concurrency < 1:
            raise ConfigError("closed_concurrency must be >= 1")
        if self.load_report_interval is not None and self.load_report_interval <= 0:
            raise ConfigError("load_report_interval must be positive")
        if self.probes_per_request < 0:
            raise ConfigError("probes_per_request must be >= 0")
        if self.tenants < 1:
            raise ConfigError("tenants must be >= 1")
        if self.tenants > self.keyspace_size:
            raise ConfigError(
                f"tenants ({self.tenants}) exceeds keyspace_size "
                f"({self.keyspace_size})"
            )
        # Validate the policy name at config time rather than deep inside
        # cluster assembly.  Imported here to keep the config module free
        # of a hard dependency for type checking.
        from repro.selection import selection_policy_needs

        selection_policy_needs(self.replica_selection)
        if self.network_base_delay < 0 or self.network_jitter_mean < 0:
            raise ConfigError("network delays must be >= 0")

    def _resolve_workload(self) -> None:
        """Materialize a declarative workload spec into this config.

        Runs first in ``__post_init__`` so the resolved generator fields
        go through the same validation as hand-built configs.  Imported
        lazily: the registry needs the workload package but configs must
        stay importable without touching spec files.
        """
        from repro.workload.registry import resolve_workload

        spec = resolve_workload(self.workload)
        overrides = spec.config_overrides(
            n_servers=self.n_servers,
            service=self.service,
            mean_speed=self.mean_speed(),
            default_keyspace=self.keyspace_size,
        )
        for name, value in overrides.items():
            object.__setattr__(self, name, value)
        object.__setattr__(self, "workload_fingerprint", spec.fingerprint())

    def mean_speed(self) -> float:
        if self.server_speeds is None:
            return 1.0
        return sum(self.server_speeds) / len(self.server_speeds)


@dataclass(frozen=True)
class SimulationConfig:
    """How long to run and what to measure.

    Exactly one stopping rule applies: when ``max_requests`` is set the
    run ends once that many requests have been generated *and* completed;
    otherwise the clock stops at ``duration`` seconds.
    """

    duration: Optional[float] = None
    max_requests: Optional[int] = None
    warmup_fraction: float = 0.1

    def __post_init__(self):
        if (self.duration is None) == (self.max_requests is None):
            raise ConfigError("set exactly one of duration / max_requests")
        if self.duration is not None and self.duration <= 0:
            raise ConfigError("duration must be positive")
        if self.max_requests is not None and self.max_requests < 1:
            raise ConfigError("max_requests must be >= 1")
        if not 0 <= self.warmup_fraction < 1:
            raise ConfigError("warmup_fraction must be in [0, 1)")
