"""Simulated distributed key-value store substrate.

This package models the system the paper schedules: front-end clients issue
*multiget* requests whose key-value operations fan out to the servers that
own the keys; each server serves its queue one operation at a time under a
pluggable scheduling policy; responses carry piggybacked feedback back to
the client.

Public entry point: :class:`~repro.kvstore.cluster.Cluster`, built from a
:class:`~repro.kvstore.config.ClusterConfig`.

Submodule attributes are re-exported lazily (PEP 562) because the higher
layers here (client, server, cluster) depend on :mod:`repro.core` and
:mod:`repro.schedulers`, which in turn depend on the leaf data model in
:mod:`repro.kvstore.items` — lazy export keeps that layering acyclic.
"""

from typing import TYPE_CHECKING

_EXPORTS = {
    "Client": "repro.kvstore.client",
    "Cluster": "repro.kvstore.cluster",
    "RunResult": "repro.kvstore.cluster",
    "run_cluster": "repro.kvstore.cluster",
    "ClusterConfig": "repro.kvstore.config",
    "ServiceConfig": "repro.kvstore.config",
    "SimulationConfig": "repro.kvstore.config",
    "Feedback": "repro.kvstore.items",
    "OpKind": "repro.kvstore.items",
    "Operation": "repro.kvstore.items",
    "Request": "repro.kvstore.items",
    "Response": "repro.kvstore.items",
    "NetworkModel": "repro.kvstore.network",
    "TopologyNetwork": "repro.kvstore.network",
    "UniformLatencyNetwork": "repro.kvstore.network",
    "ConsistentHashRing": "repro.kvstore.partitioning",
    "ReplicaPlacement": "repro.kvstore.replication",
    "Server": "repro.kvstore.server",
    "DegradationEvent": "repro.kvstore.service",
    "ServiceModel": "repro.kvstore.service",
    "StorageEngine": "repro.kvstore.storage",
}

__all__ = sorted(_EXPORTS)

if TYPE_CHECKING:  # pragma: no cover - static imports for type checkers
    from repro.kvstore.client import Client
    from repro.kvstore.cluster import Cluster, RunResult, run_cluster
    from repro.kvstore.config import ClusterConfig, ServiceConfig, SimulationConfig
    from repro.kvstore.items import Feedback, OpKind, Operation, Request, Response
    from repro.kvstore.network import (
        NetworkModel,
        TopologyNetwork,
        UniformLatencyNetwork,
    )
    from repro.kvstore.partitioning import ConsistentHashRing
    from repro.kvstore.replication import ReplicaPlacement
    from repro.kvstore.server import Server
    from repro.kvstore.service import DegradationEvent, ServiceModel
    from repro.kvstore.storage import StorageEngine


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
