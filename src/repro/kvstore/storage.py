"""In-memory key-value storage engine.

Each simulated server owns one :class:`StorageEngine`.  The engine is a
real data plane — values are stored (as sizes plus optional payloads),
versioned, TTL-expirable, and size-accounted — so the simulation serves
actual lookups instead of pretending.

The engine is deliberately synchronous: storage *latency* is modelled by
the server's :class:`~repro.kvstore.service.ServiceModel`, while the
engine models storage *semantics*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from repro.errors import KeyNotFoundError, StorageError

DEFAULT_NAMESPACE = "default"


@dataclass(slots=True)
class StoredValue:
    """A stored record.  ``payload`` may be None when only size matters."""

    size: int
    version: int
    created_at: float
    expires_at: Optional[float] = None
    payload: Optional[bytes] = None

    def expired(self, now: float) -> bool:
        return self.expires_at is not None and now >= self.expires_at


class StorageEngine:
    """Hash-indexed, namespaced, TTL-aware in-memory store.

    Parameters
    ----------
    server_id:
        Owning server (used in error messages and stats only).
    track_payloads:
        When False (simulation default) values store sizes only, keeping
        memory proportional to the keyspace instead of the data set.
    """

    def __init__(self, server_id: int = 0, track_payloads: bool = False):
        self.server_id = server_id
        self.track_payloads = track_payloads
        self._spaces: Dict[str, Dict[str, StoredValue]] = {DEFAULT_NAMESPACE: {}}
        self._bytes = 0
        self._versions = 0
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.deletes = 0
        self.expirations = 0

    # ------------------------------------------------------------------
    # Namespaces
    # ------------------------------------------------------------------
    def create_namespace(self, namespace: str) -> None:
        if namespace in self._spaces:
            raise StorageError(f"namespace already exists: {namespace!r}")
        self._spaces[namespace] = {}

    def namespaces(self) -> list[str]:
        return sorted(self._spaces)

    def _space(self, namespace: str) -> Dict[str, StoredValue]:
        try:
            return self._spaces[namespace]
        except KeyError:
            raise StorageError(f"unknown namespace: {namespace!r}") from None

    # ------------------------------------------------------------------
    # CRUD
    # ------------------------------------------------------------------
    def put(
        self,
        key: str,
        size: int,
        now: float = 0.0,
        ttl: Optional[float] = None,
        payload: Optional[bytes] = None,
        namespace: str = DEFAULT_NAMESPACE,
    ) -> int:
        """Insert or overwrite ``key``; returns the new version number."""
        if size < 0:
            raise StorageError(f"negative value size {size} for key {key!r}")
        if ttl is not None and ttl <= 0:
            raise StorageError(f"non-positive ttl {ttl} for key {key!r}")
        space = self._space(namespace)
        old = space.get(key)
        if old is not None:
            self._bytes -= old.size
        self._versions += 1
        record = StoredValue(
            size=size,
            version=self._versions,
            created_at=now,
            expires_at=(now + ttl) if ttl is not None else None,
            payload=payload if self.track_payloads else None,
        )
        space[key] = record
        self._bytes += size
        self.puts += 1
        return record.version

    def bulk_put(
        self,
        items,
        now: float = 0.0,
        namespace: str = DEFAULT_NAMESPACE,
    ) -> None:
        """Insert many ``(key, size)`` pairs in one pass (preload fast path).

        Equivalent to calling :meth:`put` per pair (same version sequence,
        same counters) minus the per-call option handling — cluster preload
        loads every replica of every key before the clock starts, which is
        a measurable slice of cell wall time at experiment scale.
        """
        space = self._space(namespace)
        version = self._versions
        added = 0
        count = 0
        for key, size in items:
            if size < 0:
                raise StorageError(f"negative value size {size} for key {key!r}")
            old = space.get(key)
            if old is not None:
                added -= old.size
            version += 1
            space[key] = StoredValue(size=size, version=version, created_at=now)
            added += size
            count += 1
        self._versions = version
        self._bytes += added
        self.puts += count

    def get(
        self, key: str, now: float = 0.0, namespace: str = DEFAULT_NAMESPACE
    ) -> StoredValue:
        """Look up ``key``; raises :class:`KeyNotFoundError` on miss/expiry."""
        space = self._space(namespace)
        record = space.get(key)
        if record is not None and record.expired(now):
            del space[key]
            self._bytes -= record.size
            self.expirations += 1
            record = None
        if record is None:
            self.misses += 1
            raise KeyNotFoundError(key)
        self.hits += 1
        return record

    def contains(
        self, key: str, now: float = 0.0, namespace: str = DEFAULT_NAMESPACE
    ) -> bool:
        """Non-counting existence check (does not disturb hit/miss stats)."""
        space = self._space(namespace)
        record = space.get(key)
        return record is not None and not record.expired(now)

    def delete(self, key: str, namespace: str = DEFAULT_NAMESPACE) -> bool:
        """Remove ``key``; returns True if it was present."""
        space = self._space(namespace)
        record = space.pop(key, None)
        if record is None:
            return False
        self._bytes -= record.size
        self.deletes += 1
        return True

    def size_of(
        self, key: str, now: float = 0.0, namespace: str = DEFAULT_NAMESPACE
    ) -> int:
        """Value size in bytes (the demand driver for service times)."""
        return self.get(key, now=now, namespace=namespace).size

    # ------------------------------------------------------------------
    # Maintenance & stats
    # ------------------------------------------------------------------
    def sweep_expired(self, now: float, namespace: str = DEFAULT_NAMESPACE) -> int:
        """Eagerly drop expired records; returns how many were removed."""
        space = self._space(namespace)
        doomed = [k for k, v in space.items() if v.expired(now)]
        for key in doomed:
            self._bytes -= space[key].size
            del space[key]
        self.expirations += len(doomed)
        return len(doomed)

    def scan(
        self, namespace: str = DEFAULT_NAMESPACE
    ) -> Iterator[Tuple[str, StoredValue]]:
        """Iterate (key, record) pairs; order is insertion order."""
        yield from self._space(namespace).items()

    @property
    def key_count(self) -> int:
        return sum(len(s) for s in self._spaces.values())

    @property
    def byte_count(self) -> int:
        return self._bytes

    def stats(self) -> Dict[str, int]:
        return {
            "keys": self.key_count,
            "bytes": self._bytes,
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "deletes": self.deletes,
            "expirations": self.expirations,
        }

    def __repr__(self) -> str:
        return (
            f"StorageEngine(server={self.server_id}, keys={self.key_count}, "
            f"bytes={self._bytes})"
        )
