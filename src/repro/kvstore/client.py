"""The simulated front-end client.

A client generates multiget requests from its workload factory, resolves
each key to a server through replica placement, lets the scheduling
policy's tagger stamp priorities (using client-local estimates only),
dispatches the operations over the network, and aggregates responses.
The request's completion time is recorded when its last response arrives —
the end-user view of latency.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.core.estimator import ServerEstimates
from repro.kvstore.items import Feedback, OpKind, Operation, Request, Response
from repro.kvstore.network import NetworkModel
from repro.kvstore.replication import ReplicaPlacement
from repro.kvstore.service import ServiceModel
from repro.metrics.collector import MetricsCollector
from repro.obs import OpSpan, RequestTrace, Tracer
from repro.schedulers.base import ClientTagger
from repro.sim.core import Environment
from repro.workload.requests import RequestFactory

if TYPE_CHECKING:  # pragma: no cover
    from repro.kvstore.server import Server


class Client:
    """One front-end issuing multiget requests into the cluster."""

    def __init__(
        self,
        env: Environment,
        client_id: int,
        factory: RequestFactory,
        placement: ReplicaPlacement,
        tagger: ClientTagger,
        estimates: Optional[ServerEstimates],
        network: NetworkModel,
        servers: Dict[int, "Server"],
        metrics: MetricsCollector,
        reference_service: ServiceModel,
        max_requests: Optional[int] = None,
        end_time: Optional[float] = None,
        request_id_base: int = 0,
        on_finished: Optional[Callable[["Client"], None]] = None,
        op_timeout: Optional[float] = None,
        max_retries: int = 0,
        tracer: Optional[Tracer] = None,
    ):
        if op_timeout is not None and op_timeout <= 0:
            raise ValueError("op_timeout must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.env = env
        self.client_id = client_id
        self.factory = factory
        self.placement = placement
        self.tagger = tagger
        self.estimates = estimates
        self.network = network
        self.servers = servers
        self.metrics = metrics
        self.reference_service = reference_service
        self.max_requests = max_requests
        self.end_time = end_time
        self._next_request_id = request_id_base
        self._on_finished = on_finished

        self.op_timeout = op_timeout
        self.max_retries = max_retries
        self.tracer = tracer
        # Hot-path gates: only adaptive selection policies pay for the
        # per-op dispatch/response forwarding (primary reads skip it all).
        self._track_inflight = placement.wants_inflight
        self._track_selection_feedback = placement.wants_feedback
        self.requests_sent = 0
        self.requests_completed = 0
        self.retries_sent = 0
        self.timeouts_observed = 0
        self.generation_done = False
        #: request_id -> indexes of operations still awaiting a response.
        self._pending: Dict[int, set] = {}
        self._inflight: Dict[int, Request] = {}
        #: (request_id, index) -> attempts made so far (1 = original send).
        self._attempts: Dict[tuple, int] = {}
        self.process = env.process(self._generate())

    # ------------------------------------------------------------------
    # Request generation
    # ------------------------------------------------------------------
    def _generate(self):
        env = self.env
        while True:
            if self.max_requests is not None and self.requests_sent >= self.max_requests:
                break
            gap = self.factory.next_interarrival(env.now)
            if gap == float("inf"):
                break  # trace exhausted
            if self.end_time is not None and env.now + gap > self.end_time:
                break
            yield env.pooled_timeout(gap)
            self._dispatch(self._build_request())
        self.generation_done = True
        if self._on_finished is not None:
            self._on_finished(self)

    def _build_request(self) -> Request:
        descriptor = self.factory.make_request()
        request = Request(
            request_id=self._next_request_id,
            client_id=self.client_id,
            arrival_time=self.env.now,
        )
        self._next_request_id += 1
        for i, (key, size, is_put) in enumerate(
            zip(descriptor.keys, descriptor.sizes, descriptor.is_put)
        ):
            if is_put:
                server_id = self.placement.write_set(key)[0]
                kind = OpKind.PUT
            else:
                server_id = self.placement.select_read_replica(key)
                kind = OpKind.GET
            op = Operation(
                request=request,
                key=key,
                kind=kind,
                value_size=size,
                server_id=server_id,
                demand=self.reference_service.demand(size),
                index=i,
            )
            request.operations.append(op)
        return request

    def _dispatch(self, request: Request) -> None:
        now = self.env.now
        self.tagger.tag_request(request, now, self.estimates)
        self._pending[request.request_id] = {op.index for op in request.operations}
        self._inflight[request.request_id] = request
        self.requests_sent += 1
        for op in request.operations:
            self._attempts[(request.request_id, op.index)] = 1
            self._send_op(op)

    def _send_op(self, op: Operation) -> None:
        now = self.env.now
        op.dispatch_time = now
        if self._track_inflight:
            self.placement.record_dispatch(op.server_id)
        server = self.servers[op.server_id]
        self.network.send(
            ("client", self.client_id),
            ("server", op.server_id),
            op,
            server.handle_operation,
            size_bytes=len(op.key),
        )
        if self.op_timeout is not None:
            self._arm_timeout(op)

    def _arm_timeout(self, op: Operation) -> None:
        key = (op.request_id, op.index)
        attempt = self._attempts[key]
        timer = self.env.pooled_timeout(self.op_timeout)
        timer.callbacks.append(
            lambda _event: self._on_op_timeout(op, attempt)
        )

    def _on_op_timeout(self, op: Operation, attempt: int) -> None:
        """Retry an operation whose response did not arrive in time.

        A stale timer (the response arrived, or a newer attempt is already
        out) is ignored.  The retry goes to the next replica in the key's
        preference list, so a single-server outage is survivable when the
        key is replicated.
        """
        key = (op.request_id, op.index)
        outstanding = self._pending.get(op.request_id)
        if outstanding is None or op.index not in outstanding:
            return  # already answered
        if self._attempts.get(key) != attempt:
            return  # a newer attempt owns this slot
        self.timeouts_observed += 1
        if attempt > self.max_retries:
            return  # retry budget exhausted; wait for the original
        self._attempts[key] = attempt + 1
        replicas = self.placement.replicas(op.key)
        target = replicas[attempt % len(replicas)]
        retry = Operation(
            request=op.request,
            key=op.key,
            kind=op.kind,
            value_size=op.value_size,
            server_id=target,
            demand=op.demand,
            tag=dict(op.tag),
            index=op.index,
        )
        self.retries_sent += 1
        self._send_op(retry)

    # ------------------------------------------------------------------
    # Response handling
    # ------------------------------------------------------------------
    def handle_response(self, response: Response) -> None:
        """Network delivery point for one operation's completion."""
        now = self.env.now
        op = response.operation
        op.response_time = now
        if self._track_inflight:
            self.placement.record_response(op.server_id, now - op.dispatch_time)
        if response.feedback is not None:
            if self.estimates is not None:
                self.estimates.observe(response.feedback)
            if self._track_selection_feedback:
                self.placement.observe_feedback(response.feedback)
        self.metrics.record_op_completion(response.ok)

        outstanding = self._pending.get(op.request_id)
        if outstanding is None or op.index not in outstanding:
            return  # duplicate (late original after a successful retry)
        outstanding.discard(op.index)
        self._attempts.pop((op.request_id, op.index), None)
        # Record the finish on the canonical operation so request-level
        # accounting (remaining, residual) sees retried ops as done.
        request = self._inflight[op.request_id]
        canonical = request.operations[op.index]
        if canonical.finish_time != canonical.finish_time:  # still NaN
            canonical.finish_time = op.finish_time
            canonical.response_time = now
        if outstanding:
            return
        del self._pending[op.request_id]
        del self._inflight[op.request_id]
        request.completion_time = now
        self.requests_completed += 1
        self.metrics.record_request(request)
        if self.tracer is not None and self.tracer.should_sample():
            self.tracer.record(
                RequestTrace(
                    request_id=request.request_id,
                    tag_time=request.arrival_time,
                    reply_time=now,
                    ops=[OpSpan.from_op(op) for op in request.operations],
                    meta={
                        "client": self.client_id,
                        "keys": len(request.operations),
                    },
                )
            )
        if self._on_finished is not None:
            self._on_finished(self)

    def receive_feedback(self, feedback: Feedback) -> None:
        """Delivery point for broadcast (periodic-mode) feedback."""
        if self.estimates is not None:
            self.estimates.observe(feedback)
        if self._track_selection_feedback:
            self.placement.observe_feedback(feedback)

    # ------------------------------------------------------------------
    @property
    def outstanding(self) -> int:
        """Requests dispatched but not yet fully answered."""
        return len(self._pending)

    @property
    def drained(self) -> bool:
        """True when generation ended and every request completed."""
        return self.generation_done and not self._pending

    def __repr__(self) -> str:
        return (
            f"Client(id={self.client_id}, sent={self.requests_sent}, "
            f"done={self.requests_completed})"
        )
