"""The simulated front-end client.

A client generates multiget requests from its workload factory, resolves
each key to a server through replica placement, lets the scheduling
policy's tagger stamp priorities (using client-local estimates only),
dispatches the operations over the network, and aggregates responses.
The request's completion time is recorded when its last response arrives —
the end-user view of latency.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional, Set

from repro.core.estimator import ServerEstimates
from repro.faults.resilience import (
    CircuitBreaker,
    FailureDetectorConfig,
    HedgePolicy,
    LatencyTracker,
)
from repro.kvstore.items import Feedback, OpKind, Operation, Request, Response
from repro.kvstore.network import NetworkModel
from repro.kvstore.replication import ReplicaPlacement
from repro.kvstore.service import ServiceModel
from repro.metrics.collector import MetricsCollector
from repro.obs import OBS_FAULT, OpSpan, RequestTrace, Tracer
from repro.schedulers.base import ClientTagger
from repro.selection import FEEDBACK_WIRE_BYTES, PROBE_WIRE_BYTES
from repro.sim.core import Environment
from repro.workload.requests import RequestFactory

if TYPE_CHECKING:  # pragma: no cover
    from repro.kvstore.server import Server


class Client:
    """One front-end issuing multiget requests into the cluster."""

    def __init__(
        self,
        env: Environment,
        client_id: int,
        factory: RequestFactory,
        placement: ReplicaPlacement,
        tagger: ClientTagger,
        estimates: Optional[ServerEstimates],
        network: NetworkModel,
        servers: Dict[int, "Server"],
        metrics: MetricsCollector,
        reference_service: ServiceModel,
        max_requests: Optional[int] = None,
        end_time: Optional[float] = None,
        request_id_base: int = 0,
        on_finished: Optional[Callable[["Client"], None]] = None,
        op_timeout: Optional[float] = None,
        max_retries: int = 0,
        tracer: Optional[Tracer] = None,
        hedge: Optional[HedgePolicy] = None,
        failure_detector: Optional[FailureDetectorConfig] = None,
        fault_state: Optional[Callable[[], tuple]] = None,
        closed_loop: bool = False,
        closed_concurrency: int = 1,
        probes_per_request: int = 0,
    ):
        if probes_per_request < 0:
            raise ValueError("probes_per_request must be >= 0")
        if op_timeout is not None and op_timeout <= 0:
            raise ValueError("op_timeout must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if failure_detector is not None and op_timeout is None:
            raise ValueError("failure_detector requires op_timeout")
        if closed_concurrency < 1:
            raise ValueError("closed_concurrency must be >= 1")
        self.env = env
        self.client_id = client_id
        self.factory = factory
        self.placement = placement
        self.tagger = tagger
        self.estimates = estimates
        self.network = network
        self.servers = servers
        self.metrics = metrics
        self.reference_service = reference_service
        self.max_requests = max_requests
        self.end_time = end_time
        self._next_request_id = request_id_base
        self._on_finished = on_finished

        self.op_timeout = op_timeout
        self.max_retries = max_retries
        self.closed_loop = closed_loop
        self.closed_concurrency = closed_concurrency
        self.tracer = tracer
        self.hedge = hedge
        self.failure_detector = failure_detector
        self.fault_state = fault_state
        # Hot-path gates: only adaptive selection policies pay for the
        # per-op dispatch/response forwarding (primary reads skip it all).
        self._track_inflight = placement.wants_inflight
        self._track_selection_feedback = placement.wants_feedback
        # Dedicated probe round-trips (prequal at its true cost): fired
        # per dispatched request, rotating over the fleet.
        self.probes_per_request = probes_per_request
        self._want_probes = (
            probes_per_request > 0
            and placement.wants_feedback
            and placement.policy.wants_probes
        )
        self._probe_cursor = 0
        self._server_ids = tuple(sorted(servers))
        self.probes_sent = 0
        self.requests_sent = 0
        self.requests_completed = 0
        self.retries_sent = 0
        self.timeouts_observed = 0
        self.timers_cancelled = 0
        self.hedges_sent = 0
        self.hedges_won = 0
        self.breaker_opens = 0
        self.generation_done = False
        #: request_id -> indexes of operations still awaiting a response.
        self._pending: Dict[int, set] = {}
        self._inflight: Dict[int, Request] = {}
        #: (request_id, index) -> attempts made so far (1 = original send).
        self._attempts: Dict[tuple, int] = {}
        #: (request_id, index) -> the latest armed op-timeout timer; the
        #: response path poisons it so stale timers never even fire.
        self._op_timers: Dict[tuple, object] = {}
        #: (request_id, index) -> pending hedge timer.
        self._hedge_timers: Dict[tuple, object] = {}
        #: (request_id, index) -> server ids already sent a hedge.
        self._hedged: Dict[tuple, Set[int]] = {}
        #: Sub-op latency window feeding the hedge threshold.
        self._latency = LatencyTracker() if hedge is not None else None
        #: server_id -> failure-detector breaker (created on first failure).
        self._breakers: Dict[int, CircuitBreaker] = {}
        self.process = env.process(
            self._generate_closed() if closed_loop else self._generate()
        )

    # ------------------------------------------------------------------
    # Request generation
    # ------------------------------------------------------------------
    def _generate(self):
        env = self.env
        while True:
            if self.max_requests is not None and self.requests_sent >= self.max_requests:
                break
            gap = self.factory.next_interarrival(env.now)
            if gap == float("inf"):
                break  # trace exhausted
            if self.end_time is not None and env.now + gap > self.end_time:
                break
            yield env.pooled_timeout(gap)
            self._dispatch(self._build_request())
        self.generation_done = True
        if self._on_finished is not None:
            self._on_finished(self)

    def _generate_closed(self):
        """Closed-loop generation: a fixed window of in-flight requests.

        The initial window is dispatched here; every full-request
        completion then issues the replacement (see ``handle_response``),
        so the offered rate self-throttles to the cluster's service rate
        and the arrival clock is never consulted.
        """
        for _ in range(self.closed_concurrency):
            if not self._closed_can_issue():
                break
            self._dispatch(self._build_request())
        if not self._closed_can_issue():
            self.generation_done = True
            if self._on_finished is not None:
                self._on_finished(self)
        return
        yield  # pragma: no cover — env.process needs a generator

    def _closed_can_issue(self) -> bool:
        if self.max_requests is not None and self.requests_sent >= self.max_requests:
            return False
        if self.end_time is not None and self.env.now >= self.end_time:
            return False
        return True

    def _build_request(self) -> Request:
        descriptor = self.factory.make_request()
        request = Request(
            request_id=self._next_request_id,
            client_id=self.client_id,
            arrival_time=self.env.now,
        )
        self._next_request_id += 1
        for i, (key, size, is_put) in enumerate(
            zip(descriptor.keys, descriptor.sizes, descriptor.is_put)
        ):
            if is_put:
                server_id = self.placement.write_set(key)[0]
                kind = OpKind.PUT
            else:
                server_id = self.placement.select_read_replica(key)
                kind = OpKind.GET
            op = Operation(
                request=request,
                key=key,
                kind=kind,
                value_size=size,
                server_id=server_id,
                demand=self.reference_service.demand(size),
                index=i,
            )
            request.operations.append(op)
        return request

    def _dispatch(self, request: Request) -> None:
        now = self.env.now
        self.tagger.tag_request(request, now, self.estimates)
        self._pending[request.request_id] = {op.index for op in request.operations}
        self._inflight[request.request_id] = request
        self.requests_sent += 1
        for op in request.operations:
            self._attempts[(request.request_id, op.index)] = 1
            self._send_op(op)
        if self._want_probes:
            self._send_probes()

    def _send_op(self, op: Operation, is_hedge: bool = False) -> None:
        now = self.env.now
        op.dispatch_time = now
        if self._track_inflight:
            self.placement.record_dispatch(op.server_id)
        server = self.servers[op.server_id]
        self.network.send(
            ("client", self.client_id),
            ("server", op.server_id),
            op,
            server.handle_operation,
            size_bytes=len(op.key),
        )
        if is_hedge:
            return  # hedges ride on the primary's timeout/retry machinery
        if self.op_timeout is not None:
            self._arm_timeout(op)
        if (
            self.hedge is not None
            and op.kind is OpKind.GET
            and self._attempts[(op.request_id, op.index)] == 1
        ):
            self._arm_hedge(op)

    def _arm_timeout(self, op: Operation) -> None:
        key = (op.request_id, op.index)
        attempt = self._attempts[key]
        timer = self.env.pooled_timeout(self.op_timeout)
        self._op_timers[key] = timer
        timer.callbacks.append(
            lambda _event, timer=timer: self._fire_op_timeout(op, attempt, timer)
        )

    def _fire_op_timeout(self, op: Operation, attempt: int, timer) -> None:
        # Drop our own registration first: a fired (soon recycled) timer
        # must never be poisoned by a late response.
        key = (op.request_id, op.index)
        if self._op_timers.get(key) is timer:
            del self._op_timers[key]
        self._on_op_timeout(op, attempt)

    def _on_op_timeout(self, op: Operation, attempt: int) -> None:
        """Retry an operation whose response did not arrive in time.

        A stale timer (the response arrived, or a newer attempt is already
        out) is ignored.  The retry goes to the next replica in the key's
        preference list — skipping replicas whose circuit breaker is open
        when a failure detector is configured — so a single-server outage
        or crash is survivable when the key is replicated.
        """
        key = (op.request_id, op.index)
        outstanding = self._pending.get(op.request_id)
        if outstanding is None or op.index not in outstanding:
            return  # already answered
        if self._attempts.get(key) != attempt:
            return  # a newer attempt owns this slot
        self.timeouts_observed += 1
        if self.failure_detector is not None:
            self._record_failure(op.server_id)
        if attempt > self.max_retries:
            return  # retry budget exhausted; wait for the original
        self._attempts[key] = attempt + 1
        replicas = self.placement.replicas(op.key)
        target = replicas[attempt % len(replicas)]
        if self.failure_detector is not None:
            now = self.env.now
            for shift in range(len(replicas)):
                candidate = replicas[(attempt + shift) % len(replicas)]
                breaker = self._breakers.get(candidate)
                if breaker is None or breaker.allow(now):
                    target = candidate
                    break
        retry = Operation(
            request=op.request,
            key=op.key,
            kind=op.kind,
            value_size=op.value_size,
            server_id=target,
            demand=op.demand,
            tag=dict(op.tag),
            index=op.index,
        )
        self.retries_sent += 1
        self._send_op(retry)

    # ------------------------------------------------------------------
    # Selection probes (control plane)
    # ------------------------------------------------------------------
    def _send_probes(self) -> None:
        """Fire this request's probe round-trips, rotating over the fleet.

        The rotation is deterministic (no rng draw) and spreads coverage
        evenly, so every server's state reaches the probe pool within
        ``n_servers / probes_per_request`` requests.  Each leg of the
        round-trip is recorded as one kind=probe control message.
        """
        ids = self._server_ids
        for _ in range(self.probes_per_request):
            sid = ids[self._probe_cursor % len(ids)]
            self._probe_cursor += 1
            self.probes_sent += 1
            self.placement.record_control_message(
                "probe", payload_bytes=PROBE_WIRE_BYTES
            )
            self.network.send(
                ("client", self.client_id),
                ("server", sid),
                self.client_id,
                self.servers[sid].handle_probe,
                size_bytes=PROBE_WIRE_BYTES,
            )

    def receive_probe_reply(self, feedback: Feedback) -> None:
        """Delivery point for a probe's feedback reply."""
        if self.estimates is not None:
            self.estimates.observe(feedback)
        if self._track_selection_feedback:
            self.placement.record_control_message(
                "probe", payload_bytes=FEEDBACK_WIRE_BYTES
            )
            self.placement.observe_feedback(feedback)

    # ------------------------------------------------------------------
    # Hedging
    # ------------------------------------------------------------------
    def _arm_hedge(self, op: Operation) -> None:
        threshold = self.hedge.threshold(self._latency)
        if threshold is None:
            return  # not enough latency signal yet
        if self.op_timeout is not None and threshold >= self.op_timeout:
            return  # the timeout/retry path would fire first anyway
        key = (op.request_id, op.index)
        timer = self.env.pooled_timeout(threshold)
        self._hedge_timers[key] = timer
        timer.callbacks.append(
            lambda _event, timer=timer: self._fire_hedge(op, timer)
        )

    def _fire_hedge(self, op: Operation, timer) -> None:
        key = (op.request_id, op.index)
        if self._hedge_timers.get(key) is not timer:
            return  # superseded
        del self._hedge_timers[key]
        outstanding = self._pending.get(op.request_id)
        if outstanding is None or op.index not in outstanding:
            return  # already answered
        used = self._hedged.setdefault(key, set())
        if len(used) >= self.hedge.max_hedges:
            return
        target = self._pick_backup(op, used)
        if target is None:
            return  # no healthy second replica
        used.add(target)
        hedge_op = Operation(
            request=op.request,
            key=op.key,
            kind=op.kind,
            value_size=op.value_size,
            server_id=target,
            demand=op.demand,
            tag=dict(op.tag),
            index=op.index,
        )
        self.hedges_sent += 1
        self._send_op(hedge_op, is_hedge=True)
        if len(used) < self.hedge.max_hedges:
            self._arm_hedge(op)

    def _pick_backup(self, op: Operation, used: Set[int]) -> Optional[int]:
        """First replica that is not the primary, not already hedged to,
        and whose breaker (if any) admits traffic."""
        now = self.env.now
        for candidate in self.placement.replicas(op.key):
            if candidate == op.server_id or candidate in used:
                continue
            breaker = self._breakers.get(candidate)
            if breaker is not None and not breaker.allow(now):
                continue
            return candidate
        return None

    # ------------------------------------------------------------------
    # Failure detection
    # ------------------------------------------------------------------
    def _record_failure(self, server_id: int) -> None:
        breaker = self._breakers.get(server_id)
        if breaker is None:
            breaker = CircuitBreaker(
                failure_threshold=self.failure_detector.failure_threshold,
                reset_timeout=self.failure_detector.reset_timeout,
            )
            self._breakers[server_id] = breaker
        if breaker.record_failure(self.env.now):
            self.breaker_opens += 1
            self._mark_unhealthy(server_id)

    def _mark_unhealthy(self, server_id: int) -> None:
        """Feed a synthetic worst-case snapshot into estimates/selection.

        Mirrors the runtime client: an opened breaker makes the server
        look saturated and slow, so DAS tagging and adaptive replica
        selection route around it without a dedicated health channel.
        """
        fd = self.failure_detector
        feedback = Feedback(
            server_id=server_id,
            queued_work=fd.unhealthy_queued_work,
            queue_length=fd.unhealthy_queue_length,
            rate_sample=fd.unhealthy_rate,
            timestamp=self.env.now,
        )
        if self.estimates is not None:
            self.estimates.observe(feedback)
        if self._track_selection_feedback:
            self.placement.observe_feedback(feedback)

    # ------------------------------------------------------------------
    # Response handling
    # ------------------------------------------------------------------
    def handle_response(self, response: Response) -> None:
        """Network delivery point for one operation's completion."""
        now = self.env.now
        op = response.operation
        op.response_time = now
        if self._track_inflight:
            self.placement.record_response(op.server_id, now - op.dispatch_time)
        if self._latency is not None:
            self._latency.record(now - op.dispatch_time)
        breaker = self._breakers.get(op.server_id)
        if breaker is not None:
            breaker.record_success()
        if response.feedback is not None:
            if self.estimates is not None:
                self.estimates.observe(response.feedback)
            if self._track_selection_feedback:
                # Piggybacked snapshots ride an existing data reply: zero
                # extra messages, but the payload bytes are real.
                self.placement.record_control_message(
                    "feedback", messages=0, payload_bytes=FEEDBACK_WIRE_BYTES
                )
                self.placement.observe_feedback(response.feedback)
        self.metrics.record_op_completion(response.ok)

        outstanding = self._pending.get(op.request_id)
        if outstanding is None or op.index not in outstanding:
            return  # duplicate (late original after a successful retry)
        key = (op.request_id, op.index)
        timer = self._op_timers.pop(key, None)
        if timer is not None and timer.callbacks is not None:
            # Poison the pending pooled timer: it fires as a no-op and is
            # recycled without ever entering the timeout path.
            timer.callbacks.clear()
            self.timers_cancelled += 1
        hedge_timer = self._hedge_timers.pop(key, None)
        if hedge_timer is not None and hedge_timer.callbacks is not None:
            hedge_timer.callbacks.clear()
            self.timers_cancelled += 1
        hedged_to = self._hedged.pop(key, None)
        if hedged_to and op.server_id in hedged_to:
            self.hedges_won += 1
        outstanding.discard(op.index)
        self._attempts.pop(key, None)
        # Record the finish on the canonical operation so request-level
        # accounting (remaining, residual) sees retried ops as done.
        request = self._inflight[op.request_id]
        canonical = request.operations[op.index]
        if canonical.finish_time != canonical.finish_time:  # still NaN
            canonical.finish_time = op.finish_time
            canonical.response_time = now
        if outstanding:
            return
        del self._pending[op.request_id]
        del self._inflight[op.request_id]
        request.completion_time = now
        self.requests_completed += 1
        self.metrics.record_request(request)
        if self.closed_loop and not self.generation_done:
            # The freed window slot issues the next request immediately.
            if self._closed_can_issue():
                self._dispatch(self._build_request())
            if not self._closed_can_issue():
                self.generation_done = True
        if self.tracer is not None and self.tracer.should_sample():
            meta = {
                "client": self.client_id,
                "keys": len(request.operations),
            }
            if self.fault_state is not None:
                active = self.fault_state()
                if active:
                    meta[OBS_FAULT] = ",".join(active)
            self.tracer.record(
                RequestTrace(
                    request_id=request.request_id,
                    tag_time=request.arrival_time,
                    reply_time=now,
                    ops=[OpSpan.from_op(op) for op in request.operations],
                    meta=meta,
                )
            )
        if self._on_finished is not None:
            self._on_finished(self)

    def receive_feedback(self, feedback: Feedback) -> None:
        """Delivery point for broadcast feedback (periodic-mode snapshots
        and Dodoor-style load reports alike)."""
        if self.estimates is not None:
            self.estimates.observe(feedback)
        if self._track_selection_feedback:
            self.placement.record_control_message(
                "report", payload_bytes=FEEDBACK_WIRE_BYTES
            )
            self.placement.observe_feedback(feedback)

    # ------------------------------------------------------------------
    @property
    def outstanding(self) -> int:
        """Requests dispatched but not yet fully answered."""
        return len(self._pending)

    @property
    def drained(self) -> bool:
        """True when generation ended and every request completed."""
        return self.generation_done and not self._pending

    def __repr__(self) -> str:
        return (
            f"Client(id={self.client_id}, sent={self.requests_sent}, "
            f"done={self.requests_completed})"
        )
