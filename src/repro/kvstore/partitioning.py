"""Key -> server ownership via consistent hashing.

A classic consistent-hash ring with virtual nodes.  The hash function is
BLAKE2b (stable across processes and Python versions, unlike built-in
``hash``), so partitioning — and therefore every experiment — is fully
deterministic.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Sequence

from repro.errors import PartitioningError

_RING_BITS = 64
_RING_SIZE = 2**_RING_BITS


def stable_hash(data: str) -> int:
    """Deterministic 64-bit hash of a string."""
    digest = hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ConsistentHashRing:
    """Consistent-hash ring mapping keys to server ids.

    Parameters
    ----------
    server_ids:
        The participating servers.
    vnodes:
        Virtual nodes per server; more vnodes give better balance at the
        cost of ring size.  128 keeps worst/mean ownership within ~15% for
        typical cluster sizes.
    """

    def __init__(self, server_ids: Iterable[int], vnodes: int = 128):
        server_list = list(server_ids)
        if not server_list:
            raise PartitioningError("ring needs at least one server")
        if len(set(server_list)) != len(server_list):
            raise PartitioningError("duplicate server ids on ring")
        if vnodes < 1:
            raise PartitioningError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._points: List[int] = []
        self._owners: Dict[int, int] = {}
        self._servers: List[int] = sorted(server_list)
        #: (key, n) -> preference list.  The ring is static for the length
        #: of a run, the key population is fixed, and the walk is pure, so
        #: caching is exact; membership changes invalidate it.  The walk
        #: itself only depends on the ring *slot* a key hashes into, so a
        #: second cache keyed by (slot, n) bounds the number of walks by
        #: the number of ring points regardless of keyspace size.
        self._pref_cache: Dict[tuple, List[int]] = {}
        self._slot_pref_cache: Dict[tuple, List[int]] = {}
        for sid in self._servers:
            self._add_points(sid)

    def _add_points(self, server_id: int) -> None:
        for v in range(self.vnodes):
            point = stable_hash(f"server:{server_id}/vnode:{v}")
            while point in self._owners:  # vanishingly rare 64-bit collision
                point = (point + 1) % _RING_SIZE
            self._owners[point] = server_id
            bisect.insort(self._points, point)

    def _remove_points(self, server_id: int) -> None:
        doomed = [p for p, s in self._owners.items() if s == server_id]
        for point in doomed:
            del self._owners[point]
        doomed_set = set(doomed)
        self._points = [p for p in self._points if p not in doomed_set]

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    @property
    def servers(self) -> List[int]:
        return list(self._servers)

    def add_server(self, server_id: int) -> None:
        if server_id in self._servers:
            raise PartitioningError(f"server {server_id} already on ring")
        bisect.insort(self._servers, server_id)
        self._add_points(server_id)
        self._pref_cache.clear()
        self._slot_pref_cache.clear()

    def remove_server(self, server_id: int) -> None:
        if server_id not in self._servers:
            raise PartitioningError(f"server {server_id} not on ring")
        if len(self._servers) == 1:
            raise PartitioningError("cannot remove the last server")
        self._servers.remove(server_id)
        self._remove_points(server_id)
        self._pref_cache.clear()
        self._slot_pref_cache.clear()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def owner(self, key: str) -> int:
        """The primary owner of ``key``."""
        point = stable_hash(key)
        idx = bisect.bisect_right(self._points, point)
        if idx == len(self._points):
            idx = 0
        return self._owners[self._points[idx]]

    def preference_list(self, key: str, n: int) -> List[int]:
        """The first ``n`` *distinct* servers clockwise from the key.

        This is the replica placement walk used by Dynamo-style stores.
        Results are cached per ``(key, n)`` for the life of the membership
        (every operation on a key repeats the same walk); callers must not
        mutate the returned list.
        """
        cache_key = (key, n)
        cached = self._pref_cache.get(cache_key)
        if cached is not None:
            return cached
        if n < 1:
            raise PartitioningError("preference list length must be >= 1")
        if n > len(self._servers):
            raise PartitioningError(
                f"requested {n} replicas but only {len(self._servers)} servers"
            )
        point = stable_hash(key)
        idx = bisect.bisect_right(self._points, point)
        slot_key = (idx, n)
        result = self._slot_pref_cache.get(slot_key)
        if result is None:
            result = []
            seen = set()
            for step in range(len(self._points)):
                ring_idx = (idx + step) % len(self._points)
                sid = self._owners[self._points[ring_idx]]
                if sid not in seen:
                    seen.add(sid)
                    result.append(sid)
                    if len(result) == n:
                        break
            if len(result) < n:
                raise PartitioningError(
                    "ring walk failed to find enough distinct servers"
                )
            self._slot_pref_cache[slot_key] = result
        self._pref_cache[cache_key] = result
        return result

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def ownership_fractions(self, sample_keys: Sequence[str]) -> Dict[int, float]:
        """Fraction of ``sample_keys`` owned by each server."""
        counts = {sid: 0 for sid in self._servers}
        for key in sample_keys:
            counts[self.owner(key)] += 1
        total = max(1, len(sample_keys))
        return {sid: c / total for sid, c in counts.items()}

    def balance_ratio(self, sample_keys: Sequence[str]) -> float:
        """max/mean ownership fraction; 1.0 is perfectly balanced."""
        fractions = list(self.ownership_fractions(sample_keys).values())
        mean = sum(fractions) / len(fractions)
        if mean == 0:
            return 1.0
        return max(fractions) / mean

    def __repr__(self) -> str:
        return (
            f"ConsistentHashRing(servers={len(self._servers)}, "
            f"vnodes={self.vnodes})"
        )
