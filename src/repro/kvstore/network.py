"""Network latency model for client <-> server messages.

Messages are delivered after a sampled one-way delay; delivery order
between a fixed (src, dst) pair is preserved by construction when delays
are constant and may reorder when jitter is enabled — as in a real
datacenter network.

Two implementations:

* :class:`UniformLatencyNetwork` — every pair has the same base delay plus
  optional exponential jitter.  This matches the paper's single-datacenter
  simulation setting.
* :class:`TopologyNetwork` — delays from shortest-path distances on a
  weighted ``networkx`` graph, for multi-rack/multi-zone extensions.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Optional

import networkx as nx
import numpy as np

from repro.errors import ConfigError
from repro.sim.core import Environment
from repro.sim.rand import as_batched

Handler = Callable[[Any], None]


class NetworkModel:
    """Base class: computes delays and delivers messages after them."""

    def __init__(self, env: Environment):
        self.env = env
        self.messages_sent = 0
        self.bytes_sent = 0
        #: Optional :class:`~repro.faults.sim.LinkFaults` installed by a
        #: fault driver; consulted per message when present.
        self.faults = None
        self.messages_dropped = 0

    def delay(self, src: Hashable, dst: Hashable) -> float:
        """One-way delay for a message from ``src`` to ``dst``."""
        raise NotImplementedError

    def send(
        self,
        src: Hashable,
        dst: Hashable,
        payload: Any,
        handler: Handler,
        size_bytes: int = 0,
    ) -> float:
        """Deliver ``payload`` to ``handler`` after the sampled delay.

        Returns the sampled delay (useful for tests and tracing);
        ``inf`` means the message was dropped by an active link fault.
        """
        self.messages_sent += 1
        self.bytes_sent += size_bytes
        d = self.delay(src, dst)
        if d < 0:
            raise ConfigError(f"sampled negative delay {d}")
        if self.faults is not None and self.faults.active:
            extra = self.faults.verdict(src, dst)
            if extra == float("inf"):
                self.messages_dropped += 1
                return extra
            d += extra
        if d == 0:
            # Still go through the event queue for deterministic ordering.
            ev = self.env.event()
            ev.callbacks.append(lambda _e: handler(payload))
            ev.succeed()
        else:
            # Pooled: delivery timeouts are the single hottest event type
            # and nothing retains them past the callback.
            timeout = self.env.pooled_timeout(d)
            timeout.callbacks.append(lambda _e: handler(payload))
        return d


class UniformLatencyNetwork(NetworkModel):
    """Identical base delay between all pairs, optional exponential jitter.

    Parameters
    ----------
    base_delay:
        Deterministic one-way delay component in seconds.
    jitter_mean:
        Mean of an additive exponential jitter term; 0 disables jitter.
    rng:
        Generator for jitter; required when ``jitter_mean > 0``.
    """

    def __init__(
        self,
        env: Environment,
        base_delay: float = 50e-6,
        jitter_mean: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(env)
        if base_delay < 0:
            raise ConfigError("base_delay must be >= 0")
        if jitter_mean < 0:
            raise ConfigError("jitter_mean must be >= 0")
        if jitter_mean > 0 and rng is None:
            raise ConfigError("jitter requires an rng")
        self.base_delay = base_delay
        self.jitter_mean = jitter_mean
        self._rng = as_batched(rng) if rng is not None else None

    def delay(self, src: Hashable, dst: Hashable) -> float:
        d = self.base_delay
        if self.jitter_mean > 0:
            d += self._rng.exponential(self.jitter_mean)
        return d


class TopologyNetwork(NetworkModel):
    """Delays derived from shortest paths on a weighted graph.

    Nodes are endpoint ids (client ids and server ids must be distinct
    hashables, e.g. ``("client", 0)`` and ``("server", 3)``); edge weights
    are one-way delays in seconds.
    """

    def __init__(
        self,
        env: Environment,
        graph: nx.Graph,
        jitter_mean: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(env)
        if jitter_mean < 0:
            raise ConfigError("jitter_mean must be >= 0")
        if jitter_mean > 0 and rng is None:
            raise ConfigError("jitter requires an rng")
        self.graph = graph
        self.jitter_mean = jitter_mean
        self._rng = as_batched(rng) if rng is not None else None
        self._dists: Dict[Hashable, Dict[Hashable, float]] = {}

    def _distances_from(self, src: Hashable) -> Dict[Hashable, float]:
        cached = self._dists.get(src)
        if cached is None:
            if src not in self.graph:
                raise ConfigError(f"endpoint {src!r} not in topology")
            cached = nx.single_source_dijkstra_path_length(
                self.graph, src, weight="weight"
            )
            self._dists[src] = cached
        return cached

    def delay(self, src: Hashable, dst: Hashable) -> float:
        if src == dst:
            return 0.0
        dists = self._distances_from(src)
        try:
            d = dists[dst]
        except KeyError:
            raise ConfigError(f"no path from {src!r} to {dst!r}") from None
        if self.jitter_mean > 0:
            d += self._rng.exponential(self.jitter_mean)
        return d


def fat_tree_like_topology(
    n_servers: int,
    n_clients: int,
    intra_rack_delay: float = 20e-6,
    inter_rack_delay: float = 80e-6,
    rack_size: int = 8,
) -> nx.Graph:
    """Build a simple two-tier (rack/spine) topology graph.

    Servers fill racks of ``rack_size``; clients attach to the spine.  Edge
    weights are one-way delays so shortest-path distance is end-to-end
    delay.
    """
    if n_servers < 1 or n_clients < 1:
        raise ConfigError("need at least one server and one client")
    g = nx.Graph()
    g.add_node("spine")
    n_racks = (n_servers + rack_size - 1) // rack_size
    for r in range(n_racks):
        tor = ("tor", r)
        g.add_edge("spine", tor, weight=inter_rack_delay / 2)
        for s in range(r * rack_size, min((r + 1) * rack_size, n_servers)):
            g.add_edge(tor, ("server", s), weight=intra_rack_delay / 2)
    for c in range(n_clients):
        g.add_edge("spine", ("client", c), weight=inter_rack_delay / 2)
    return g
