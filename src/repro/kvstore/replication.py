"""Replica placement and read-replica selection.

Keys are replicated on the first ``replication_factor`` distinct servers
clockwise from their ring position (Dynamo-style).  GET operations may be
served by any replica; a :class:`~repro.selection.SelectionPolicy`
decides which — the *selection* lever a front-end has besides scheduling
(the paper's evaluation uses primary-only reads; the policy zoo in
:mod:`repro.selection` powers the X1/X3 extension experiments).

:class:`ReplicaPlacement` binds a policy to a ring: it resolves each
key's replica set, delegates the pick, and forwards the client's
dispatch/response/feedback events to the policy under a caller-supplied
clock (``env.now`` in the sim, ``time.monotonic()`` in the runtime).
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.errors import ConfigError
from repro.kvstore.items import Feedback
from repro.kvstore.partitioning import ConsistentHashRing
from repro.selection import (
    SELECTION_POLICY_NAMES,
    SelectionPolicy,
    create_selection_policy,
)


class ReplicaPlacement:
    """Maps keys to replica sets and picks a read replica per operation.

    Parameters
    ----------
    ring:
        The consistent-hash ring.
    replication_factor:
        Number of replicas per key (1 = no replication).
    selection:
        Policy name from :data:`repro.selection.SELECTION_POLICY_NAMES`
        (``"primary"`` is the paper default).  Ignored when ``policy`` is
        given.
    rng:
        Random generator for policies that sample (``random``,
        ``power_of_d``).
    work_estimate:
        Legacy callable ``server_id -> estimated queued work`` used by
        ``"least_estimated_work"``.
    estimates:
        The client's :class:`~repro.core.estimator.ServerEstimates`,
        required by the estimate-scored policies (``least_estimated_work``
        without a callback, ``c3``, ``tars``).
    selection_params:
        Extra keyword knobs forwarded to the policy constructor.
    policy:
        A pre-built policy object (overrides ``selection``/knobs).
    clock:
        Zero-argument callable returning the current time for the policy;
        defaults to a constant 0.0 (fine for time-free policies).
    """

    POLICIES = SELECTION_POLICY_NAMES

    def __init__(
        self,
        ring: ConsistentHashRing,
        replication_factor: int = 1,
        selection: str = "primary",
        rng: Optional[np.random.Generator] = None,
        work_estimate: Optional[Callable[[int], float]] = None,
        estimates=None,
        selection_params: Optional[dict] = None,
        policy: Optional[SelectionPolicy] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        if replication_factor < 1:
            raise ConfigError("replication_factor must be >= 1")
        if replication_factor > len(ring.servers):
            raise ConfigError(
                f"replication_factor {replication_factor} exceeds cluster "
                f"size {len(ring.servers)}"
            )
        if policy is None:
            policy = create_selection_policy(
                selection,
                rng=rng,
                estimates=estimates,
                work_estimate=work_estimate,
                **(selection_params or {}),
            )
        self.ring = ring
        self.replication_factor = replication_factor
        self.policy = policy
        self.selection = policy.name
        self._clock = clock if clock is not None else (lambda: 0.0)
        # With one replica every policy degenerates to "first (only) entry".
        self._primary_reads = policy.name == "primary" or replication_factor == 1
        #: Hot-path gates: callers skip the forwarding hooks entirely when
        #: the policy has no use for the signal (or never gets to choose).
        self.wants_inflight = policy.wants_inflight and not self._primary_reads
        self.wants_feedback = policy.wants_feedback and not self._primary_reads

    def replicas(self, key: str) -> List[int]:
        """The full replica set for ``key`` (primary first)."""
        return self.ring.preference_list(key, self.replication_factor)

    def select_read_replica(self, key: str) -> int:
        """Choose the server that will serve a GET for ``key``."""
        if self._primary_reads:
            # Primary-only reads (the paper default) are the hot path:
            # skip the replica-set indirection entirely.
            return self.ring.preference_list(key, self.replication_factor)[0]
        candidates = self.replicas(key)
        if len(candidates) == 1:
            return candidates[0]
        return self.policy.select(key, candidates, self._clock())

    def write_set(self, key: str) -> List[int]:
        """Servers a PUT must reach (all replicas)."""
        return self.replicas(key)

    # ------------------------------------------------------------------
    # Signal forwarding (gate on wants_inflight / wants_feedback)
    # ------------------------------------------------------------------
    def record_dispatch(self, server_id: int) -> None:
        """An operation was sent to ``server_id`` (in-flight +1)."""
        self.policy.on_dispatch(server_id, self._clock())

    def record_response(self, server_id: int, latency: float) -> None:
        """A response arrived from ``server_id`` after ``latency`` seconds."""
        self.policy.on_response(server_id, self._clock(), latency)

    def observe_feedback(self, feedback: Feedback) -> None:
        """Forward a feedback snapshot to the policy (probe funnel)."""
        self.policy.observe_feedback(feedback, self._clock())

    def record_control_message(
        self, kind: str, messages: int = 1, payload_bytes: int = 0
    ) -> None:
        """Attribute control-plane traffic to the selection policy."""
        self.policy.record_control_message(kind, messages, payload_bytes)

    def selection_stats(self) -> dict:
        """The policy's decision/pick summary."""
        return self.policy.stats()

    def __repr__(self) -> str:
        return (
            f"ReplicaPlacement(n={self.replication_factor}, "
            f"selection={self.selection!r})"
        )
