"""Replica placement and read-replica selection.

Keys are replicated on the first ``replication_factor`` distinct servers
clockwise from their ring position (Dynamo-style).  GET operations may be
served by any replica; the *selection policy* decides which, and is one of
the levers a front-end has besides scheduling (the paper's evaluation uses
primary-only reads; the other policies support our extension experiments).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.errors import ConfigError
from repro.kvstore.partitioning import ConsistentHashRing
from repro.sim.rand import as_batched

SelectionFn = Callable[[List[int]], int]


class ReplicaPlacement:
    """Maps keys to replica sets and picks a read replica per operation.

    Parameters
    ----------
    ring:
        The consistent-hash ring.
    replication_factor:
        Number of replicas per key (1 = no replication).
    selection:
        ``"primary"`` — always read the first replica (paper default);
        ``"round_robin"`` — rotate over replicas per key;
        ``"random"`` — uniform random replica;
        ``"least_estimated_work"`` — pick the replica the client currently
        estimates to be least loaded (requires an estimate callback).
    rng:
        Random generator for the ``"random"`` policy.
    work_estimate:
        Callable ``server_id -> estimated queued work`` used by
        ``"least_estimated_work"``.
    """

    POLICIES = ("primary", "round_robin", "random", "least_estimated_work")

    def __init__(
        self,
        ring: ConsistentHashRing,
        replication_factor: int = 1,
        selection: str = "primary",
        rng: Optional[np.random.Generator] = None,
        work_estimate: Optional[Callable[[int], float]] = None,
    ):
        if replication_factor < 1:
            raise ConfigError("replication_factor must be >= 1")
        if replication_factor > len(ring.servers):
            raise ConfigError(
                f"replication_factor {replication_factor} exceeds cluster "
                f"size {len(ring.servers)}"
            )
        if selection not in self.POLICIES:
            raise ConfigError(
                f"unknown selection policy {selection!r}; one of {self.POLICIES}"
            )
        if selection == "random" and rng is None:
            raise ConfigError("selection='random' requires an rng")
        if selection == "least_estimated_work" and work_estimate is None:
            raise ConfigError(
                "selection='least_estimated_work' requires a work_estimate callback"
            )
        self.ring = ring
        self.replication_factor = replication_factor
        self.selection = selection
        self._rng = as_batched(rng) if rng is not None else None
        self._work_estimate = work_estimate
        self._rr_counters: Dict[str, int] = {}
        # With one replica every policy degenerates to "first (only) entry".
        self._primary_reads = selection == "primary" or replication_factor == 1

    def replicas(self, key: str) -> List[int]:
        """The full replica set for ``key`` (primary first)."""
        return self.ring.preference_list(key, self.replication_factor)

    def select_read_replica(self, key: str) -> int:
        """Choose the server that will serve a GET for ``key``."""
        if self._primary_reads:
            # Primary-only reads (the paper default) are the hot path:
            # skip the replica-set indirection entirely.
            return self.ring.preference_list(key, self.replication_factor)[0]
        candidates = self.replicas(key)
        if len(candidates) == 1:
            return candidates[0]
        if self.selection == "round_robin":
            counter = self._rr_counters.get(key, 0)
            self._rr_counters[key] = counter + 1
            return candidates[counter % len(candidates)]
        if self.selection == "random":
            return candidates[self._rng.integers(0, len(candidates))]
        # least_estimated_work
        return min(candidates, key=lambda sid: (self._work_estimate(sid), sid))

    def write_set(self, key: str) -> List[int]:
        """Servers a PUT must reach (all replicas)."""
        return self.replicas(key)

    def __repr__(self) -> str:
        return (
            f"ReplicaPlacement(n={self.replication_factor}, "
            f"selection={self.selection!r})"
        )
