"""The simulated key-value server.

One server = one storage engine + one scheduler queue + one service loop.
The loop is non-preemptive and work-conserving: whenever operations are
queued it serves the one the scheduler picks, for a service time drawn
from the server's :class:`~repro.kvstore.service.ServiceModel` (which may
degrade over time).  Completions are shipped back to the issuing client
with optional piggybacked feedback.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import TYPE_CHECKING, Callable, Optional

from repro.core.estimator import EwmaEstimator
from repro.errors import KeyNotFoundError
from repro.kvstore.items import Feedback, OpKind, Operation, Response
from repro.kvstore.network import NetworkModel
from repro.kvstore.service import ServiceModel
from repro.kvstore.storage import StorageEngine
from repro.schedulers.base import ServerQueue
from repro.sim.core import Environment

if TYPE_CHECKING:  # pragma: no cover
    from repro.kvstore.client import Client


class Server:
    """A simulated KV server with a pluggable scheduling queue."""

    def __init__(
        self,
        env: Environment,
        server_id: int,
        queue: ServerQueue,
        service: ServiceModel,
        storage: StorageEngine,
        network: NetworkModel,
        piggyback_feedback: bool = True,
        rate_alpha: float = 0.2,
        outages: tuple = (),
    ):
        self.env = env
        self.server_id = server_id
        self.queue = queue
        self.service = service
        self.storage = storage
        self.network = network
        self.piggyback_feedback = piggyback_feedback
        #: Fault-injection windows: during an ``(start, end)`` outage the
        #: server serves nothing; queued operations wait it out.  An
        #: in-flight operation started before the outage still completes
        #: (non-preemptive service).  Windows are validated, sorted, and
        #: overlapping/contiguous ones merged so the lookup can bisect.
        windows = sorted(tuple(w) for w in outages)
        for start, end in windows:
            if end <= start or start < 0:
                raise ValueError(f"invalid outage window ({start}, {end})")
        merged: list[tuple[float, float]] = []
        for start, end in windows:
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        self.outages = tuple(merged)
        self._outage_starts = [w[0] for w in merged]
        #: client_id -> Client, wired by the cluster after construction.
        self.clients: dict[int, "Client"] = {}

        self._wakeup = None
        self._current_finish: Optional[float] = None
        self._rate_ewma = EwmaEstimator(rate_alpha, initial=service.base_speed)

        #: Size-lane support (duck-typed on the queue, like the obs
        #: bridge): the lane layer is pure dispatch order — the service
        #: loop is unchanged — but the server keeps per-lane busy time
        #: so utilization can be split by lane in run stats.
        self.lanes = getattr(queue, "lanes", None)
        self.lane_busy_time: dict[str, float] = {
            lane: 0.0 for lane in (self.lanes or ())
        }

        #: Hard-crash lifecycle (driven by a fault plan): unlike an
        #: outage, a crash *loses* queued operations and refuses new ones
        #: until :meth:`recover`.
        self.crashed = False
        self.crashes = 0
        self._recover_event = None

        self.ops_served = 0
        self.ops_failed = 0
        self.ops_dropped = 0
        self.probes_answered = 0
        self.busy_time = 0.0
        self.process = env.process(self._run())

    # ------------------------------------------------------------------
    # Ingress
    # ------------------------------------------------------------------
    def handle_operation(self, op: Operation) -> None:
        """Network delivery point for a dispatched operation."""
        if self.crashed:
            # A dead process accepts nothing; the op vanishes and the
            # client's timeout (or hedge) has to notice.
            self.ops_dropped += 1
            return
        self.queue.push(op, self.env.now)
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    def handle_probe(self, client_id: int) -> None:
        """Network delivery point for a selection probe.

        Probes live on the control plane: answered immediately from the
        current queue state (no service time), dropped silently when the
        server is crashed — the prober's pool ages the entry out.
        """
        if self.crashed:
            return
        client = self.clients.get(client_id)
        if client is None:  # pragma: no cover - wiring error
            raise RuntimeError(
                f"server {self.server_id} has no route to client {client_id}"
            )
        self.probes_answered += 1
        feedback = self.make_feedback()
        self.network.send(
            ("server", self.server_id),
            ("client", client_id),
            feedback,
            client.receive_probe_reply,
        )

    # ------------------------------------------------------------------
    # Crash / recover lifecycle
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Hard-kill the server: queued operations are dropped.

        This is the fault-plan ``Crash`` semantic — stronger than an
        outage window, which merely parks the queue.  An operation in
        service when the crash lands also dies (detected by the service
        loop via the ``crashes`` epoch).
        """
        if self.crashed:
            return
        self.crashed = True
        self.crashes += 1
        now = self.env.now
        while len(self.queue):
            self.queue.pop(now)
            self.ops_dropped += 1
        self._recover_event = self.env.event()
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    def recover(self) -> None:
        """Bring a crashed server back, empty-queued, ready to serve."""
        if not self.crashed:
            return
        self.crashed = False
        event = self._recover_event
        self._recover_event = None
        if event is not None and not event.triggered:
            event.succeed()

    # ------------------------------------------------------------------
    # Service loop
    # ------------------------------------------------------------------
    def _outage_end(self, now: float) -> Optional[float]:
        """End of the outage covering ``now``, or None when up.

        Windows are merged and sorted at construction, so the covering
        window (if any) is the one with the greatest start <= now.
        """
        i = bisect_right(self._outage_starts, now) - 1
        if i >= 0 and now < self.outages[i][1]:
            return self.outages[i][1]
        return None

    def _run(self):
        env = self.env
        while True:
            if self.crashed:
                yield self._recover_event
                continue
            outage_end = self._outage_end(env.now)
            if outage_end is not None:
                yield env.pooled_timeout(outage_end - env.now)
                continue
            if len(self.queue) == 0:
                self._wakeup = env.event()
                yield self._wakeup
                self._wakeup = None
                continue
            op = self.queue.pop(env.now)
            op.start_time = env.now
            epoch = self.crashes
            ok, size = self._execute(op)
            service_time = self.service.sample_service_time(size, env.now)
            self._current_finish = env.now + service_time
            yield env.pooled_timeout(service_time)
            self._current_finish = None
            if self.crashes != epoch:
                # The process died mid-service; the op dies with it.
                self.ops_dropped += 1
                continue
            op.finish_time = env.now
            self.busy_time += service_time
            if self.lanes is not None:
                lane = op.tag.get("lane")
                if lane in self.lane_busy_time:
                    self.lane_busy_time[lane] += service_time
            # Learn our own effective rate from the completed operation.
            observed = self.service.rate_sample(op.demand, service_time)
            self._rate_ewma.update(observed)
            self.queue.on_service_complete(op, env.now)
            if ok:
                self.ops_served += 1
            else:
                self.ops_failed += 1
            self._respond(op, ok, size)

    def _execute(self, op: Operation) -> tuple[bool, int]:
        """Run the operation against the storage engine.

        Returns (ok, bytes_moved); a miss still consumes overhead time but
        moves no value bytes.
        """
        now = self.env.now
        if op.kind is OpKind.PUT:
            self.storage.put(op.key, op.value_size, now=now)
            return True, op.value_size
        try:
            record = self.storage.get(op.key, now=now)
        except KeyNotFoundError:
            return False, 0
        return True, record.size

    def _respond(self, op: Operation, ok: bool, size: int) -> None:
        feedback = self.make_feedback() if self.piggyback_feedback else None
        response = Response(
            operation=op,
            ok=ok,
            value_size=size,
            feedback=feedback,
            error=None if ok else "key not found",
        )
        client = self.clients.get(op.request.client_id)
        if client is None:  # pragma: no cover - wiring error
            raise RuntimeError(
                f"server {self.server_id} has no route to client "
                f"{op.request.client_id}"
            )
        self.network.send(
            ("server", self.server_id),
            ("client", client.client_id),
            response,
            client.handle_response,
            size_bytes=size,
        )

    # ------------------------------------------------------------------
    # Feedback & introspection
    # ------------------------------------------------------------------
    @property
    def measured_rate(self) -> float:
        """EWMA of observed service speed (demand-seconds per second)."""
        return self._rate_ewma.value_or(self.service.base_speed)

    def in_service_residual(self, now: float) -> float:
        """Remaining service time of the operation on the CPU, if any."""
        if self._current_finish is None:
            return 0.0
        return max(0.0, self._current_finish - now)

    def make_feedback(self) -> Feedback:
        """Snapshot this server's congestion for clients.

        Queued demand is converted to wall time by the *measured* rate, so
        a degraded server correctly reports a longer backlog than its
        queue's raw demand suggests.
        """
        now = self.env.now
        rate = max(self.measured_rate, 1e-9)
        queued_seconds = self.queue.queued_demand / rate + self.in_service_residual(now)
        return Feedback(
            server_id=self.server_id,
            queued_work=queued_seconds,
            queue_length=len(self.queue),
            rate_sample=self.measured_rate,
            timestamp=now,
        )

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` spent serving operations."""
        if elapsed <= 0:
            return 0.0
        return self.busy_time / elapsed

    def __repr__(self) -> str:
        return (
            f"Server(id={self.server_id}, queued={len(self.queue)}, "
            f"served={self.ops_served})"
        )


def make_periodic_broadcaster(
    env: Environment,
    server: Server,
    interval: float,
    deliver: Callable[[Feedback], None],
):
    """Process generator broadcasting feedback snapshots every ``interval``.

    ``deliver`` receives the snapshot and is responsible for fanning it out
    to clients (the cluster wires this through the network model).
    """

    def _broadcast():
        while True:
            yield env.pooled_timeout(interval)
            if server.crashed:
                # A dead server gossips nothing; clients keep their last
                # (stale) view until the failure detector marks it.
                continue
            deliver(server.make_feedback())

    return _broadcast()
