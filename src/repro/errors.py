"""Exception hierarchy for the repro library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigError(ReproError):
    """An experiment or cluster configuration is invalid."""


class SchedulerError(ReproError):
    """A scheduling policy was misused (e.g. pop from an empty queue)."""


class UnknownSchedulerError(SchedulerError):
    """Requested scheduler name is not in the registry."""

    def __init__(self, name: str, known: list[str]):
        super().__init__(f"unknown scheduler {name!r}; known: {', '.join(known)}")
        self.name = name
        self.known = known


class StorageError(ReproError):
    """Storage-engine level failure (missing key, bad namespace, ...)."""


class KeyNotFoundError(StorageError):
    """A GET referenced a key that is not present."""

    def __init__(self, key: str):
        super().__init__(f"key not found: {key!r}")
        self.key = key


class PartitioningError(ReproError):
    """Consistent-hash ring misconfiguration or lookup failure."""


class WorkloadError(ReproError):
    """Workload generator misconfiguration."""


class TraceFormatError(WorkloadError):
    """A trace file record is malformed."""


class ProtocolError(ReproError):
    """Wire-protocol violation in the asyncio runtime."""
