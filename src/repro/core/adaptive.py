"""Adaptive demotion-threshold controller for DAS.

DAS demotes an operation to the background ("last") band when its tagged
RPT exceeds ``theta = k × (running mean RPT)``.  The multiplier ``k`` is
controlled per server by queue-pressure feedback:

* queue persistently *long*  → heavy load → shrink ``k`` (demote more:
  under heavy load serving the large requests last most improves the mean,
  the LRPT-last regime);
* queue persistently *short* → light load → grow ``k`` (demote almost
  nothing: at light load pure SRPT-first already minimizes mean RCT and
  demotion only adds delay to large requests).

The controller is multiplicative-increase/multiplicative-decrease over an
EWMA of observed queue lengths — simple, local, and stable.
"""

from __future__ import annotations

from repro.core.estimator import EwmaEstimator
from repro.errors import ConfigError


class AdaptiveThreshold:
    """MIMD controller for the DAS demotion multiplier ``k``.

    Parameters
    ----------
    k_init, k_min, k_max:
        Initial value and clamp range of the multiplier.
    q_low, q_high:
        Queue-length comfort band: below ``q_low`` the controller grows
        ``k``; above ``q_high`` it shrinks it.
    gain:
        Multiplicative step per adjustment (default 5%).
    alpha:
        EWMA weight of queue-length observations.
    adapt_interval:
        Minimum simulated time between adjustments, so the controller's
        speed is load-independent.
    enabled:
        When False, ``k`` stays at ``k_init`` forever (the "no adaptation"
        ablation).
    """

    def __init__(
        self,
        k_init: float = 3.0,
        k_min: float = 0.5,
        k_max: float = 16.0,
        q_low: float = 2.0,
        q_high: float = 8.0,
        gain: float = 0.05,
        alpha: float = 0.1,
        adapt_interval: float = 1e-3,
        enabled: bool = True,
    ):
        if not 0 < k_min <= k_init <= k_max:
            raise ConfigError("need 0 < k_min <= k_init <= k_max")
        if not 0 <= q_low < q_high:
            raise ConfigError("need 0 <= q_low < q_high")
        if not 0 < gain < 1:
            raise ConfigError("gain must be in (0, 1)")
        if adapt_interval < 0:
            raise ConfigError("adapt_interval must be >= 0")
        self.k = k_init
        self.k_init = k_init
        self.k_min = k_min
        self.k_max = k_max
        self.q_low = q_low
        self.q_high = q_high
        self.gain = gain
        self.adapt_interval = adapt_interval
        self.enabled = enabled
        self._queue_ewma = EwmaEstimator(alpha)
        self._last_adapt = float("-inf")
        self.adjustments = 0

    def observe(self, queue_length: int, now: float) -> None:
        """Record a queue-length sample and maybe adjust ``k``."""
        self._queue_ewma.update(queue_length)
        if not self.enabled:
            return
        if now - self._last_adapt < self.adapt_interval:
            return
        self._last_adapt = now
        pressure = self._queue_ewma.value_or(0.0)
        if pressure > self.q_high and self.k > self.k_min:
            self.k = max(self.k_min, self.k * (1.0 - self.gain))
            self.adjustments += 1
        elif pressure < self.q_low and self.k < self.k_max:
            self.k = min(self.k_max, self.k * (1.0 + self.gain))
            self.adjustments += 1

    @property
    def queue_pressure(self) -> float:
        """Smoothed queue length the controller is reacting to."""
        return self._queue_ewma.value_or(0.0)

    def threshold(self, rpt_scale: float) -> float:
        """Demotion threshold for the current ``k`` and RPT scale."""
        return self.k * rpt_scale

    def __repr__(self) -> str:
        return (
            f"AdaptiveThreshold(k={self.k:.3f}, pressure="
            f"{self.queue_pressure:.2f}, adjustments={self.adjustments})"
        )
