"""Client-side estimators of server load and service rate.

Every response carries a :class:`~repro.kvstore.items.Feedback` snapshot of
the responding server's queued work and an observed service-rate sample.
Clients fold these into per-server EWMA estimates.  Between observations,
the queued-work estimate is *drained* at the estimated rate — a stale
observation of a busy server should not keep the server looking busy
forever.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigError
from repro.kvstore.items import Feedback


class EwmaEstimator:
    """Exponentially weighted moving average with a defined empty state."""

    def __init__(self, alpha: float, initial: Optional[float] = None):
        if not 0 < alpha <= 1:
            raise ConfigError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._value = initial
        self.samples = 0

    def update(self, x: float) -> float:
        """Fold in a sample; the first sample initializes the average."""
        if self._value is None:
            self._value = float(x)
        else:
            self._value += self.alpha * (float(x) - self._value)
        self.samples += 1
        return self._value

    @property
    def value(self) -> Optional[float]:
        """Current average, or None before any sample."""
        return self._value

    def value_or(self, default: float) -> float:
        return self._value if self._value is not None else default

    def reset(self) -> None:
        self._value = None
        self.samples = 0

    def __repr__(self) -> str:
        return f"EwmaEstimator(alpha={self.alpha}, value={self._value})"


@dataclass
class _ServerState:
    """Per-server estimate bundle."""

    queued_work: EwmaEstimator
    rate: EwmaEstimator
    last_update: float = float("-inf")
    observations: int = 0

    snapshot_queue_length: int = 0


class ServerEstimates:
    """A client's view of every server's congestion and speed.

    Parameters
    ----------
    alpha_work:
        EWMA weight for queued-work observations.  Relatively large
        (default 0.5) because queue length moves fast and feedback is
        already smoothed by sampling.
    alpha_rate:
        EWMA weight for service-rate samples (default 0.2).
    default_rate:
        Assumed speed of servers never heard from (1.0 = nominal).
    drain:
        When True (default), queued-work estimates decay between
        observations at the estimated service rate, modelling the queue
        draining while the client is not looking.
    """

    def __init__(
        self,
        alpha_work: float = 0.5,
        alpha_rate: float = 0.2,
        default_rate: float = 1.0,
        drain: bool = True,
    ):
        if default_rate <= 0:
            raise ConfigError("default_rate must be positive")
        self.alpha_work = alpha_work
        self.alpha_rate = alpha_rate
        self.default_rate = default_rate
        self.drain = drain
        self._servers: Dict[int, _ServerState] = {}
        self.feedback_count = 0

    def _state(self, server_id: int) -> _ServerState:
        state = self._servers.get(server_id)
        if state is None:
            state = _ServerState(
                queued_work=EwmaEstimator(self.alpha_work),
                rate=EwmaEstimator(self.alpha_rate),
            )
            self._servers[server_id] = state
        return state

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def observe(self, feedback: Feedback) -> None:
        """Fold one feedback snapshot into the estimates."""
        state = self._state(feedback.server_id)
        state.queued_work.update(max(0.0, feedback.queued_work))
        if feedback.rate_sample > 0:
            state.rate.update(feedback.rate_sample)
        state.last_update = feedback.timestamp
        state.snapshot_queue_length = feedback.queue_length
        state.observations += 1
        self.feedback_count += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def rate(self, server_id: int) -> float:
        """Estimated speed of ``server_id`` (demand-seconds per second)."""
        state = self._servers.get(server_id)
        if state is None:
            return self.default_rate
        return state.rate.value_or(self.default_rate)

    def queued_work(self, server_id: int, now: float) -> float:
        """Estimated queued work in *wall seconds* at ``now``.

        Feedback reports queued work in wall seconds already (the server
        converts demand by its own measured rate); draining therefore
        happens at 1 wall-second per second.
        """
        state = self._servers.get(server_id)
        if state is None or state.queued_work.value is None:
            return 0.0
        work = state.queued_work.value
        if self.drain and state.last_update > float("-inf"):
            work = max(0.0, work - (now - state.last_update))
        return work

    def wait_estimate(self, server_id: int, now: float) -> float:
        """Expected delay before a newly sent op starts service."""
        return self.queued_work(server_id, now)

    def observations(self, server_id: int) -> int:
        state = self._servers.get(server_id)
        return state.observations if state is not None else 0

    def staleness(self, server_id: int, now: float) -> float:
        """Seconds since the last feedback from ``server_id`` (inf if never).

        Timeliness-aware replica selection (Tars-style) discounts stale
        congestion information by this age.
        """
        state = self._servers.get(server_id)
        if state is None or state.last_update == float("-inf"):
            return float("inf")
        return max(0.0, now - state.last_update)

    def queue_length(self, server_id: int) -> int:
        """Queue length reported by the most recent feedback (0 if never)."""
        state = self._servers.get(server_id)
        return state.snapshot_queue_length if state is not None else 0

    def known_servers(self) -> list[int]:
        return sorted(self._servers)

    def __repr__(self) -> str:
        return (
            f"ServerEstimates(servers={len(self._servers)}, "
            f"feedback={self.feedback_count})"
        )
