"""DAS: the Distributed Adaptive Scheduler.

Client side (:class:`DasTagger`): stamp each operation with the request's
estimated *remaining processing time* (RPT) — the speed-adjusted
bottleneck ``max_s(slice(s) / estimated rate(s))`` — plus the
wait-inclusive *completion horizon* (kept for diagnostics and replica
selection).  Rate estimates come from feedback piggybacked on responses,
so a degraded or slow server automatically inflates the RPT of every
request touching it.

Server side (:class:`DasQueue`): two bands.

* **front band** — operations whose RPT is at or below the adaptive
  threshold, ordered smallest-RPT-first (*SRPT-first*);
* **last band** — operations above the threshold (outlier requests),
  RPT-ordered among themselves, served only when the front band is empty
  (*LRPT-last*).

The threshold is ``k × (EWMA of tagged RPTs)`` with ``k`` driven by the
:class:`~repro.core.adaptive.AdaptiveThreshold` controller: heavy load
shrinks ``k`` toward ``k_min`` (demote outliers more eagerly — trimming
giants most improves the mean when queues are long), light load grows it
toward ``k_max`` (pure SRPT-first; demotion would only delay large
requests for no benefit).  ``k_min`` stays well above 1 so only genuine
outliers are ever demoted — demoting the distribution's body degenerates
into FCFS-of-the-masses and destroys the mean.  A last-band operation
that has waited more than ``starvation_factor × scale`` is promoted to
the very front, bounding starvation (which pure SBF does not).

Ablation switches (experiment A1): ``adaptive=False`` freezes the
threshold multiplier; ``last_band=False`` disables demotion (pure
SRPT-first); ``srpt_front=False`` makes the front band FIFO (pure
LRPT-last).
"""

from __future__ import annotations

import heapq
from collections import deque
from itertools import count
from typing import Optional

from repro.core.adaptive import AdaptiveThreshold
from repro.core.estimator import EwmaEstimator, ServerEstimates
from repro.core.priority import completion_horizon, remaining_processing_time
from repro.errors import ConfigError, SchedulerError
from repro.kvstore.items import Operation, Request
from repro.obs.trace import OBS_BAND, OBS_PROMOTED, OBS_THRESHOLD
from repro.schedulers.base import (
    ClientTagger,
    QueueContext,
    SchedulingPolicy,
    ServerQueue,
)
from repro.schedulers.registry import register_policy

TAG_RPT = "rpt"
TAG_HORIZON = "horizon"


class DasTagger(ClientTagger):
    """Stamps operations with the request's RPT and completion horizon."""

    def tag_request(
        self, request: Request, now: float, estimates: Optional[ServerEstimates]
    ) -> None:
        """Write the RPT and horizon tags onto every operation."""
        rpt = remaining_processing_time(request, now, estimates)
        horizon = completion_horizon(request, now, estimates)
        for op in request.operations:
            op.tag[TAG_RPT] = rpt
            op.tag[TAG_HORIZON] = horizon


class DasQueue(ServerQueue):
    """The two-band DAS queue at one server."""

    def __init__(
        self,
        context: QueueContext,
        controller: AdaptiveThreshold,
        scale_alpha: float = 0.05,
        starvation_factor: float = 30.0,
        srpt_front: bool = True,
        last_band: bool = True,
    ):
        super().__init__(context)
        if not 0 < scale_alpha <= 1:
            raise ConfigError("scale_alpha must be in (0, 1]")
        if starvation_factor <= 0:
            raise ConfigError("starvation_factor must be positive")
        self.controller = controller
        self._scale_ewma = EwmaEstimator(scale_alpha)
        self._starvation_factor = starvation_factor
        self._srpt_front = srpt_front
        self._last_band_enabled = last_band
        self._front: list[tuple[float, int, Operation]] = []
        #: Last band: RPT-ordered heap of mutable ``[rpt, seq, op]``
        #: entries (demoted ops keep size order among themselves) plus an
        #: arrival deque for aging checks.  A promotion tombstones its
        #: heap entry in place (``entry[2] = None``); ``_last_index``
        #: maps ``id(op)`` to the live entry, so band lengths count live
        #: operations only and a heap of pure tombstones is detectable.
        self._last: list[list] = []
        self._last_index: dict[int, list] = {}
        self._last_by_age: deque[Operation] = deque()
        self._seq = count()
        self.demotions = 0
        self.promotions = 0

    # ------------------------------------------------------------------
    @property
    def rpt_scale(self) -> float:
        """Running mean of tagged RPTs (the threshold's scale)."""
        return self._scale_ewma.value_or(0.0)

    @property
    def threshold(self) -> float:
        """Current demotion threshold in RPT units."""
        return self.controller.threshold(self.rpt_scale)

    @property
    def front_length(self) -> int:
        """Live operations in the front band (promoted ops included)."""
        return len(self._front)

    @property
    def last_length(self) -> int:
        """Live operations in the last band (tombstones excluded)."""
        return len(self._last_index)

    # ------------------------------------------------------------------
    def _front_key(self, op: Operation, rpt: float) -> float:
        # SRPT-first orders by RPT; the FIFO ablation orders by enqueue time.
        return rpt if self._srpt_front else op.enqueue_time

    def _push(self, op: Operation, now: float) -> None:
        rpt = float(op.tag.get(TAG_RPT, op.demand))
        # Classify against the scale *before* folding this item in, so an
        # outlier cannot raise the threshold past itself.
        prev_scale = self._scale_ewma.value
        self._scale_ewma.update(rpt)
        self.controller.observe(self._length + 1, now)
        threshold = (
            self.controller.threshold(prev_scale) if prev_scale is not None else None
        )
        if threshold is not None:
            op.tag[OBS_THRESHOLD] = threshold
        if self._last_band_enabled and threshold is not None and rpt > threshold:
            entry = [rpt, next(self._seq), op]
            heapq.heappush(self._last, entry)
            self._last_index[id(op)] = entry
            self._last_by_age.append(op)
            self.demotions += 1
            op.tag[OBS_BAND] = "last"
        else:
            heapq.heappush(self._front, (self._front_key(op, rpt), next(self._seq), op))
            op.tag[OBS_BAND] = "front"

    def _pop_last(self) -> Operation:
        """Pop the smallest-RPT live entry from the last band."""
        while self._last:
            entry = heapq.heappop(self._last)
            op = entry[2]
            if op is None:
                continue  # tombstone left by a promotion
            del self._last_index[id(op)]
            return op
        raise SchedulerError("last band has no live operations")

    def _pop(self, now: float) -> Operation:
        self.controller.observe(self._length, now)
        # Fast path: no demoted operations means no aging to check and no
        # threshold/budget to evaluate — the common case at light load,
        # where pop is just a front-band heappop.
        if not self._last_by_age:
            if self._front:
                return heapq.heappop(self._front)[2]
            return self._pop_last()
        # Starvation bound: promote the oldest last-band operation once it
        # has waited beyond the budget; it jumps to the very front.
        budget = self._starvation_factor * max(self.threshold, self.rpt_scale)
        while self._last_by_age and budget > 0:
            head = self._last_by_age[0]
            entry = self._last_index.get(id(head))
            if entry is None or entry[2] is not head:
                # Already served via _pop_last (or id collision with a
                # later op); drop the stale age record.
                self._last_by_age.popleft()
                continue
            if now - head.enqueue_time > budget:
                self._last_by_age.popleft()
                del self._last_index[id(head)]
                entry[2] = None  # tombstone the heap entry in place
                heapq.heappush(self._front, (float("-inf"), next(self._seq), head))
                self.promotions += 1
                head.tag[OBS_PROMOTED] = True
            else:
                break
        if self._front:
            return heapq.heappop(self._front)[2]
        op = self._pop_last()
        if self._last_by_age and self._last_by_age[0] is op:
            self._last_by_age.popleft()
        return op


@register_policy
class DasPolicy(SchedulingPolicy):
    """Distributed Adaptive Scheduler (the paper's contribution).

    Parameters
    ----------
    scale_alpha:
        EWMA weight for the per-server mean-RPT scale (default 0.05).
    starvation_factor:
        Last-band wait budget in scale units (default 30).
    adaptive:
        Enable the threshold controller (default True).
    srpt_front:
        Order the front band smallest-RPT-first (default True).
    last_band:
        Enable LRPT-last demotion (default True).
    k_init, k_min, k_max, q_low, q_high, gain, ctrl_alpha, adapt_interval:
        Controller knobs, see :class:`~repro.core.adaptive.AdaptiveThreshold`.
    """

    name = "das"
    needs_feedback = True

    def __init__(
        self,
        scale_alpha: float = 0.05,
        starvation_factor: float = 30.0,
        adaptive: bool = True,
        srpt_front: bool = True,
        last_band: bool = True,
        k_init: float = 8.0,
        k_min: float = 4.0,
        k_max: float = 64.0,
        q_low: float = 2.0,
        q_high: float = 10.0,
        gain: float = 0.05,
        ctrl_alpha: float = 0.1,
        adapt_interval: float = 1e-3,
    ):
        super().__init__(
            scale_alpha=scale_alpha,
            starvation_factor=starvation_factor,
            adaptive=adaptive,
            srpt_front=srpt_front,
            last_band=last_band,
            k_init=k_init,
            k_min=k_min,
            k_max=k_max,
            q_low=q_low,
            q_high=q_high,
            gain=gain,
            ctrl_alpha=ctrl_alpha,
            adapt_interval=adapt_interval,
        )
        self.scale_alpha = scale_alpha
        self.starvation_factor = starvation_factor
        self.adaptive = adaptive
        self.srpt_front = srpt_front
        self.last_band = last_band
        self.k_init = k_init
        self.k_min = k_min
        self.k_max = k_max
        self.q_low = q_low
        self.q_high = q_high
        self.gain = gain
        self.ctrl_alpha = ctrl_alpha
        self.adapt_interval = adapt_interval

    def make_queue(self, context: QueueContext) -> ServerQueue:
        """Build one server's :class:`DasQueue` with its own controller."""
        controller = AdaptiveThreshold(
            k_init=self.k_init,
            k_min=self.k_min,
            k_max=self.k_max,
            q_low=self.q_low,
            q_high=self.q_high,
            gain=self.gain,
            alpha=self.ctrl_alpha,
            adapt_interval=self.adapt_interval,
            enabled=self.adaptive,
        )
        return DasQueue(
            context,
            controller,
            scale_alpha=self.scale_alpha,
            starvation_factor=self.starvation_factor,
            srpt_front=self.srpt_front,
            last_band=self.last_band,
        )

    def make_tagger(self) -> ClientTagger:
        """Build the client-side tagger paired with this policy."""
        return DasTagger()
