"""Feedback delivery modes between servers and clients.

DAS needs server-state observations at the clients.  Three delivery modes
let the experiments quantify how much the *freshness* of feedback matters
(experiment A2):

* ``PIGGYBACK`` — every response carries a snapshot (DAS default; zero
  extra messages, freshness proportional to traffic).
* ``PERIODIC`` — servers broadcast snapshots to all clients every
  ``interval`` seconds (costs messages; bounded staleness even for idle
  paths).
* ``NONE`` — no feedback at all; DAS degrades to static SBF ordering.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigError


class FeedbackMode(enum.Enum):
    """How server state reaches the clients."""

    PIGGYBACK = "piggyback"
    PERIODIC = "periodic"
    NONE = "none"

    @classmethod
    def parse(cls, value: "FeedbackMode | str") -> "FeedbackMode":
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            known = ", ".join(m.value for m in cls)
            raise ConfigError(
                f"unknown feedback mode {value!r}; one of: {known}"
            ) from None


@dataclass(frozen=True)
class FeedbackConfig:
    """Feedback path configuration for a cluster."""

    mode: FeedbackMode = FeedbackMode.PIGGYBACK
    #: Broadcast period for PERIODIC mode, seconds.
    interval: float = 5e-3

    def __post_init__(self):
        if self.interval <= 0:
            raise ConfigError("feedback interval must be positive")

    @property
    def piggyback(self) -> bool:
        return self.mode is FeedbackMode.PIGGYBACK

    @property
    def periodic(self) -> bool:
        return self.mode is FeedbackMode.PERIODIC
