"""Priority computation for DAS.

DAS uses two request-level quantities, both computable at the client from
local estimates only:

* **remaining processing time (RPT)** — the speed-adjusted bottleneck:
  the largest per-server slice of the request, divided by that server's
  estimated service rate.  This is the *ranking* key (SRPT-first).  It is
  deliberately load-independent: ranking by queue-wait-inflated values
  would freeze transient congestion into permanent priorities and starve
  requests dispatched during spikes.

* **completion horizon** — the wait-inclusive estimate
  ``max_s (queued-work(s) + slice(s)/rate(s))``: how long until the
  request's last operation would finish if dispatched now.  This is the
  *demotion* key (LRPT-last): a request whose horizon is far beyond the
  norm is going to finish late no matter what, so serving its operations
  last costs it little and helps everyone else.

With no estimates (cold start, feedback disabled) both degrade to the
static bottleneck demand, i.e. DAS falls back to Rein-SBF ordering — the
correct zero-information behaviour.
"""

from __future__ import annotations

from typing import Optional

from repro.core.estimator import ServerEstimates
from repro.kvstore.items import Request

_MIN_RATE = 1e-9


def remaining_processing_time(
    request: Request,
    now: float,
    estimates: Optional[ServerEstimates],
) -> float:
    """Speed-adjusted bottleneck of ``request`` (the SRPT ranking key)."""
    per_server = request.demands_by_server()
    worst = 0.0
    for server_id, demand in per_server.items():
        if estimates is None:
            adjusted = demand
        else:
            adjusted = demand / max(estimates.rate(server_id), _MIN_RATE)
        if adjusted > worst:
            worst = adjusted
    return worst


def completion_horizon(
    request: Request,
    now: float,
    estimates: Optional[ServerEstimates],
) -> float:
    """Wait-inclusive completion estimate (the LRPT demotion key)."""
    per_server = request.demands_by_server()
    worst = 0.0
    for server_id, demand in per_server.items():
        if estimates is None:
            horizon = demand
        else:
            rate = max(estimates.rate(server_id), _MIN_RATE)
            horizon = estimates.wait_estimate(server_id, now) + demand / rate
        if horizon > worst:
            worst = horizon
    return worst


def residual_processing_time(
    request: Request,
    now: float,
    estimates: Optional[ServerEstimates],
) -> float:
    """Speed-adjusted bottleneck over *unfinished* operations only.

    Diagnostics / re-tagging helper; at dispatch it equals
    :func:`remaining_processing_time` because nothing has finished yet.
    """
    per_server: dict[int, float] = {}
    for op in request.operations:
        if op.finish_time == op.finish_time:  # finished (not NaN)
            continue
        per_server[op.server_id] = per_server.get(op.server_id, 0.0) + op.demand
    worst = 0.0
    for server_id, demand in per_server.items():
        if estimates is None:
            adjusted = demand
        else:
            adjusted = demand / max(estimates.rate(server_id), _MIN_RATE)
        worst = max(worst, adjusted)
    return worst
