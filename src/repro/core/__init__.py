"""DAS — the Distributed Adaptive Scheduler (the paper's contribution).

DAS cuts mean request completion time with a *distributed combination* of
two classic disciplines:

* **SRPT-first** — among normal requests, serve operations of the request
  with the shortest estimated remaining processing time first;
* **LRPT-last** — requests whose estimated remaining processing time is
  far above the norm are demoted to a background band served only when
  nothing else is queued.

and it is *adaptive*: remaining-time estimates fold in per-server queue
state and measured service rate (learned from feedback piggybacked on
responses), and the demotion threshold tracks the observed load level.

See DESIGN.md §2 for the reconstruction notes (the algorithm is rebuilt
from the paper's abstract; the full text was unavailable).
"""

from repro.core.adaptive import AdaptiveThreshold
from repro.core.das import DasPolicy, DasQueue, DasTagger, TAG_RPT
from repro.core.estimator import EwmaEstimator, ServerEstimates
from repro.core.feedback import FeedbackMode
from repro.core.priority import completion_horizon, remaining_processing_time

__all__ = [
    "AdaptiveThreshold",
    "DasPolicy",
    "DasQueue",
    "DasTagger",
    "EwmaEstimator",
    "FeedbackMode",
    "ServerEstimates",
    "TAG_RPT",
    "completion_horizon",
    "remaining_processing_time",
]
