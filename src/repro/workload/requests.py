"""Request factory: combines arrivals, fan-out, popularity, and sizes.

The :class:`Keyspace` fixes key names and their value sizes once per
experiment (sizes are a property of the *data*, not of each access), and
the :class:`RequestFactory` draws multiget descriptors from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import TraceFormatError, WorkloadError
from repro.sim.rand import as_batched
from repro.workload.arrivals import ArrivalSpec
from repro.workload.fanout import FanoutSpec
from repro.workload.popularity import PopularitySpec
from repro.workload.sizes import SizeSpec


class Keyspace:
    """The fixed population of keys and their value sizes.

    Parameters
    ----------
    size:
        Number of keys.
    size_spec:
        Distribution the per-key value sizes are drawn from (once).
    rng:
        Generator used for the one-time size draw.
    prefix:
        Key-name prefix; keys are ``f"{prefix}{index:010d}"``.
    """

    def __init__(
        self,
        size: int,
        size_spec: SizeSpec,
        rng: np.random.Generator,
        prefix: str = "key:",
    ):
        if size < 1:
            raise WorkloadError("keyspace size must be >= 1")
        self.size = size
        self.prefix = prefix
        sampler = size_spec.build(rng)
        self.value_sizes = np.asarray(sampler.sample_block(size), dtype=np.int64)
        self._names: Optional[List[str]] = None

    def key_name(self, index: int) -> str:
        if not 0 <= index < self.size:
            raise WorkloadError(f"key index {index} out of range [0, {self.size})")
        return f"{self.prefix}{index:010d}"

    def key_names(self, indices) -> List[str]:
        """Key names for an index array, via a lazily built name cache.

        Formatting key names dominates descriptor generation once draws
        are batched, so the full name table is materialized on first use
        and shared by every request.
        """
        names = self._names
        if names is None:
            prefix = self.prefix
            names = self._names = [f"{prefix}{i:010d}" for i in range(self.size)]
        return [names[i] for i in indices]

    def value_size(self, index: int) -> int:
        return int(self.value_sizes[index])

    def mean_value_size(self) -> float:
        """Empirical mean of the materialized sizes (what load actually sees)."""
        return float(self.value_sizes.mean())

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return f"Keyspace(size={self.size}, mean_value={self.mean_value_size():.1f}B)"


@dataclass(frozen=True)
class RequestSpec:
    """Declarative description of a request stream."""

    arrivals: ArrivalSpec
    fanout: FanoutSpec
    popularity: PopularitySpec
    put_fraction: float = 0.0

    def __post_init__(self):
        if not 0.0 <= self.put_fraction <= 1.0:
            raise WorkloadError("put_fraction must be in [0, 1]")


@dataclass
class RequestDescriptor:
    """One generated multiget: which keys, their sizes, and op kinds."""

    key_indices: np.ndarray
    keys: List[str]
    sizes: List[int]
    is_put: List[bool] = field(default_factory=list)


class RequestFactory:
    """Stateful generator of request descriptors for one client.

    Each factory owns independent sub-streams for arrivals, fan-out, key
    choice, and the GET/PUT coin so components never perturb each other.
    """

    def __init__(
        self,
        spec: RequestSpec,
        keyspace: Keyspace,
        rng_arrivals: np.random.Generator,
        rng_fanout: np.random.Generator,
        rng_keys: np.random.Generator,
        rng_kind: Optional[np.random.Generator] = None,
    ):
        if spec.fanout.max_fanout() > keyspace.size:
            raise WorkloadError(
                f"max fanout {spec.fanout.max_fanout()} exceeds keyspace "
                f"size {keyspace.size}"
            )
        if spec.put_fraction > 0 and rng_kind is None:
            raise WorkloadError("put_fraction > 0 requires rng_kind")
        self.spec = spec
        self.keyspace = keyspace
        self._arrivals = spec.arrivals.build(rng_arrivals)
        self._fanout = spec.fanout.build(rng_fanout)
        self._popularity = spec.popularity.build(keyspace.size, rng_keys)
        self._rng_kind = as_batched(rng_kind) if rng_kind is not None else None
        self.generated = 0

    def next_interarrival(self, now: float) -> float:
        """Gap until this client's next request."""
        return self._arrivals.next_interarrival(now)

    def make_request(self) -> RequestDescriptor:
        """Draw one multiget descriptor (one vectorized draw per field).

        Keys, sizes, and op kinds come from block draws and array lookups
        rather than N scalar calls; the draw sequences are bit-identical
        to the scalar path (see ``tests/workload/test_batched_equivalence``).
        """
        n = self._fanout.sample()
        indices = self._popularity.sample_distinct(n)
        keys = self.keyspace.key_names(indices)
        sizes = self.keyspace.value_sizes[indices].tolist()
        if self.spec.put_fraction > 0:
            is_put = (
                self._rng_kind.random_block(n) < self.spec.put_fraction
            ).tolist()
        else:
            is_put = [False] * n
        self.generated += 1
        return RequestDescriptor(
            key_indices=indices, keys=keys, sizes=sizes, is_put=is_put
        )

    def mean_ops_per_request(self) -> float:
        return self.spec.fanout.mean()


def offered_load(
    spec: RequestSpec,
    keyspace_mean_size: float,
    n_servers: int,
    per_op_overhead: float,
    byte_rate: float,
    mean_speed: float = 1.0,
) -> float:
    """Long-run offered load (utilization) of a request stream.

    ``rho = rate * mean_fanout * mean_demand / (n_servers * mean_speed)``.
    """
    mean_demand = per_op_overhead + keyspace_mean_size / byte_rate
    rate = spec.arrivals.mean_rate()
    return rate * spec.fanout.mean() * mean_demand / (n_servers * mean_speed)


def arrival_rate_for_load(
    target_load: float,
    fanout_mean: float,
    mean_demand: float,
    n_servers: int,
    mean_speed: float = 1.0,
) -> float:
    """Total arrival rate (requests/s) achieving ``target_load`` utilization."""
    if not 0 < target_load:
        raise WorkloadError("target_load must be positive")
    if mean_demand <= 0 or fanout_mean <= 0:
        raise WorkloadError("mean demand and fanout must be positive")
    return target_load * n_servers * mean_speed / (fanout_mean * mean_demand)


class TraceReplayFactory:
    """Drop-in replacement for :class:`RequestFactory` that replays a trace.

    Replays every ``stride``-th record starting at ``start`` (so N clients
    can partition one trace without coordination).  Interarrivals derive
    from the absolute record times; after the last record the factory
    reports an infinite gap, ending generation.
    """

    def __init__(self, records, start: int = 0, stride: int = 1):
        if stride < 1:
            raise WorkloadError("stride must be >= 1")
        if start < 0 or start >= stride:
            raise WorkloadError("need 0 <= start < stride")
        records = list(records)
        for i in range(1, len(records)):
            if records[i].t < records[i - 1].t:
                raise TraceFormatError(
                    f"record {i}: arrival times must be non-decreasing "
                    f"({records[i].t} after {records[i - 1].t})"
                )
        self._records = records[start::stride]
        self._idx = 0
        self.generated = 0

    def __len__(self) -> int:
        return len(self._records)

    def next_interarrival(self, now: float) -> float:
        if self._idx >= len(self._records):
            return float("inf")
        return max(0.0, self._records[self._idx].t - now)

    def make_request(self) -> RequestDescriptor:
        if self._idx >= len(self._records):
            raise WorkloadError("trace exhausted")
        record = self._records[self._idx]
        self._idx += 1
        self.generated += 1
        return RequestDescriptor(
            key_indices=np.asarray([], dtype=np.int64),
            keys=list(record.keys),
            sizes=list(record.sizes),
            is_put=list(record.is_put),
        )

    def mean_ops_per_request(self) -> float:
        if not self._records:
            return 0.0
        return sum(len(r.keys) for r in self._records) / len(self._records)
