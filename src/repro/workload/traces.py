"""Trace recording and replay (JSON Lines).

A trace is a sequence of request records — arrival time, keys, sizes, op
kinds — that can be written during one run and replayed exactly in
another (e.g. to compare schedulers on the *identical* arrival sequence,
eliminating workload variance from A/B comparisons).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Union

from repro.errors import TraceFormatError

_REQUIRED_FIELDS = ("t", "keys", "sizes")


@dataclass
class TraceRecord:
    """One request in a trace."""

    t: float
    keys: List[str]
    sizes: List[int]
    is_put: List[bool] = field(default_factory=list)

    def __post_init__(self):
        if self.t < 0:
            raise TraceFormatError(f"negative arrival time {self.t}")
        if len(self.keys) != len(self.sizes):
            raise TraceFormatError(
                f"keys/sizes length mismatch: {len(self.keys)} vs {len(self.sizes)}"
            )
        if not self.keys:
            raise TraceFormatError("empty request in trace")
        if self.is_put and len(self.is_put) != len(self.keys):
            raise TraceFormatError("is_put length mismatch")
        if not self.is_put:
            self.is_put = [False] * len(self.keys)

    def to_json(self) -> str:
        record = {"t": self.t, "keys": self.keys, "sizes": self.sizes}
        if any(self.is_put):
            record["is_put"] = self.is_put
        return json.dumps(record, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str, lineno: int = 0) -> "TraceRecord":
        try:
            raw = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"line {lineno}: invalid JSON: {exc}") from exc
        if not isinstance(raw, dict):
            raise TraceFormatError(f"line {lineno}: record must be an object")
        for name in _REQUIRED_FIELDS:
            if name not in raw:
                raise TraceFormatError(f"line {lineno}: missing field {name!r}")
        try:
            return cls(
                t=float(raw["t"]),
                keys=[str(k) for k in raw["keys"]],
                sizes=[int(s) for s in raw["sizes"]],
                is_put=[bool(p) for p in raw.get("is_put", [])],
            )
        except (TypeError, ValueError) as exc:
            raise TraceFormatError(f"line {lineno}: bad field value: {exc}") from exc


def write_trace(path: Union[str, Path], records: Iterable[TraceRecord]) -> int:
    """Write records to ``path`` in JSONL; returns the record count."""
    path = Path(path)
    count = 0
    previous_t = -float("inf")
    with path.open("w", encoding="utf-8") as fh:
        for record in records:
            if record.t < previous_t:
                raise TraceFormatError(
                    f"records out of order: {record.t} after {previous_t}"
                )
            previous_t = record.t
            fh.write(record.to_json())
            fh.write("\n")
            count += 1
    return count


def read_trace(path: Union[str, Path]) -> Iterator[TraceRecord]:
    """Lazily read records from a JSONL trace file."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        previous_t = -float("inf")
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            record = TraceRecord.from_json(line, lineno)
            if record.t < previous_t:
                raise TraceFormatError(
                    f"line {lineno}: arrival times must be non-decreasing"
                )
            previous_t = record.t
            yield record


def load_trace(path: Union[str, Path]) -> List[TraceRecord]:
    """Read an entire trace into memory."""
    return list(read_trace(path))
