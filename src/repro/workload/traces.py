"""Trace recording and replay (JSON Lines + cache-trace CSV).

A trace is a sequence of request records — arrival time, keys, sizes, op
kinds — that can be written during one run and replayed exactly in
another (e.g. to compare schedulers on the *identical* arrival sequence,
eliminating workload variance from A/B comparisons).

Two on-disk formats are supported (see ``docs/workloads.md`` for the
full column contract):

* **JSONL** (:func:`write_trace` / :func:`read_trace`) — this
  repository's native multiget format, one request object per line.
* **Cache-trace CSV** (:func:`read_csv_trace`) — the
  ``timestamp,key,op,size`` shape real KV-cache traces ship in
  (Twitter/Meta style, one *operation* per line).  Ingest converts each
  line into a single-key :class:`TraceRecord`; :func:`rescale_trace`
  and :func:`remap_keys` then deterministically fit the trace onto a
  simulated cluster's clock and keyspace.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Union

from repro.errors import TraceFormatError

_REQUIRED_FIELDS = ("t", "keys", "sizes")


@dataclass
class TraceRecord:
    """One request in a trace."""

    t: float
    keys: List[str]
    sizes: List[int]
    is_put: List[bool] = field(default_factory=list)

    def __post_init__(self):
        if self.t < 0:
            raise TraceFormatError(f"negative arrival time {self.t}")
        if len(self.keys) != len(self.sizes):
            raise TraceFormatError(
                f"keys/sizes length mismatch: {len(self.keys)} vs {len(self.sizes)}"
            )
        if not self.keys:
            raise TraceFormatError("empty request in trace")
        if self.is_put and len(self.is_put) != len(self.keys):
            raise TraceFormatError("is_put length mismatch")
        if not self.is_put:
            self.is_put = [False] * len(self.keys)

    def to_json(self) -> str:
        record = {"t": self.t, "keys": self.keys, "sizes": self.sizes}
        if any(self.is_put):
            record["is_put"] = self.is_put
        return json.dumps(record, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str, lineno: int = 0) -> "TraceRecord":
        try:
            raw = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"line {lineno}: invalid JSON: {exc}") from exc
        if not isinstance(raw, dict):
            raise TraceFormatError(f"line {lineno}: record must be an object")
        for name in _REQUIRED_FIELDS:
            if name not in raw:
                raise TraceFormatError(f"line {lineno}: missing field {name!r}")
        try:
            return cls(
                t=float(raw["t"]),
                keys=[str(k) for k in raw["keys"]],
                sizes=[int(s) for s in raw["sizes"]],
                is_put=[bool(p) for p in raw.get("is_put", [])],
            )
        except (TypeError, ValueError) as exc:
            raise TraceFormatError(f"line {lineno}: bad field value: {exc}") from exc


def write_trace(path: Union[str, Path], records: Iterable[TraceRecord]) -> int:
    """Write records to ``path`` in JSONL; returns the record count."""
    path = Path(path)
    count = 0
    previous_t = -float("inf")
    with path.open("w", encoding="utf-8") as fh:
        for record in records:
            if record.t < previous_t:
                raise TraceFormatError(
                    f"records out of order: {record.t} after {previous_t}"
                )
            previous_t = record.t
            fh.write(record.to_json())
            fh.write("\n")
            count += 1
    return count


def read_trace(path: Union[str, Path]) -> Iterator[TraceRecord]:
    """Lazily read records from a JSONL trace file."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        previous_t = -float("inf")
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            record = TraceRecord.from_json(line, lineno)
            if record.t < previous_t:
                raise TraceFormatError(
                    f"line {lineno}: arrival times must be non-decreasing"
                )
            previous_t = record.t
            yield record


def load_trace(path: Union[str, Path]) -> List[TraceRecord]:
    """Read an entire trace into memory."""
    return list(read_trace(path))


# ----------------------------------------------------------------------
# Cache-trace CSV ingest (Twitter/Meta-style ``timestamp,key,op,size``)
# ----------------------------------------------------------------------
#: Column order of the supported cache-trace CSV format.
CSV_COLUMNS = ("timestamp", "key", "op", "size")

#: Operation-name normalization: every alias a real cache trace uses for
#: a read or a write, mapped onto the boolean ``is_put`` flag.
_GET_OPS = frozenset({"get", "gets", "read", "lookup"})
_PUT_OPS = frozenset({"put", "set", "write", "add", "replace", "update", "cas"})


def read_csv_trace(
    path: Union[str, Path],
    limit: Optional[int] = None,
) -> List[TraceRecord]:
    """Ingest a ``timestamp,key,op,size`` cache-trace CSV.

    One line = one operation = one single-key :class:`TraceRecord`
    (real cache traces are per-op; multiget structure is a property of
    synthetic workloads).  Rules, each enforced with the offending line
    number in the error:

    * an optional header line (detected by a non-numeric first field)
      is skipped; blank lines and ``#`` comments are ignored;
    * every data line needs at least the four columns — extra trailing
      columns (TTL, client id, ...) are ignored;
    * timestamps must be non-negative and **non-decreasing** (a
      non-monotone line raises :class:`TraceFormatError` instead of
      silently producing negative inter-arrival gaps on replay);
    * ``op`` must be a known read/write alias (``get``/``gets``/
      ``read``/``lookup`` vs ``put``/``set``/``write``/``add``/
      ``replace``/``update``/``cas``, case-insensitive);
    * ``size`` must be a non-negative integer.

    ``limit`` caps the number of ingested records (for downsampled
    smoke runs).  Timestamps are kept verbatim — apply
    :func:`rescale_trace` to fit the trace onto a target duration.
    """
    path = Path(path)
    records: List[TraceRecord] = []
    previous_t = -float("inf")
    with path.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = [part.strip() for part in line.split(",")]
            if len(fields) < len(CSV_COLUMNS):
                raise TraceFormatError(
                    f"line {lineno}: expected {len(CSV_COLUMNS)} columns "
                    f"({','.join(CSV_COLUMNS)}), got {len(fields)}"
                )
            if lineno == 1 and records == []:
                # Header detection: a first line whose timestamp field is
                # not a number is a header, not data.
                try:
                    float(fields[0])
                except ValueError:
                    continue
            try:
                t = float(fields[0])
            except ValueError:
                raise TraceFormatError(
                    f"line {lineno}: bad timestamp {fields[0]!r}"
                ) from None
            if t < 0:
                raise TraceFormatError(f"line {lineno}: negative timestamp {t}")
            if t < previous_t:
                raise TraceFormatError(
                    f"line {lineno}: timestamps must be non-decreasing "
                    f"({t} after {previous_t})"
                )
            previous_t = t
            key = fields[1]
            if not key:
                raise TraceFormatError(f"line {lineno}: empty key")
            op = fields[2].lower()
            if op in _GET_OPS:
                is_put = False
            elif op in _PUT_OPS:
                is_put = True
            else:
                known = ", ".join(sorted(_GET_OPS | _PUT_OPS))
                raise TraceFormatError(
                    f"line {lineno}: unknown op {fields[2]!r}; known: {known}"
                )
            try:
                size = int(fields[3])
            except ValueError:
                raise TraceFormatError(
                    f"line {lineno}: bad size {fields[3]!r}"
                ) from None
            if size < 0:
                raise TraceFormatError(f"line {lineno}: negative size {size}")
            records.append(
                TraceRecord(t=t, keys=[key], sizes=[size], is_put=[is_put])
            )
            if limit is not None and len(records) >= limit:
                break
    if not records:
        raise TraceFormatError(f"{path.name}: trace has no records")
    return records


def rescale_trace(
    records: Sequence[TraceRecord],
    duration: Optional[float] = None,
    rate: Optional[float] = None,
) -> List[TraceRecord]:
    """Deterministically rescale a trace's clock onto a simulation's.

    The first arrival is shifted to ``t = 0`` and all inter-arrival gaps
    are multiplied by one constant factor so that either the whole trace
    spans ``duration`` seconds, or the mean request rate equals ``rate``
    (set exactly one; a single-record trace only shifts).  Rescaling
    never reorders records and never touches keys, sizes, or op kinds —
    the replayed *sequence* is the real trace, only its clock is fitted.
    """
    if (duration is None) == (rate is None):
        raise TraceFormatError("set exactly one of duration / rate")
    if duration is not None and duration <= 0:
        raise TraceFormatError("duration must be positive")
    if rate is not None and rate <= 0:
        raise TraceFormatError("rate must be positive")
    if not records:
        raise TraceFormatError("cannot rescale an empty trace")
    t0 = records[0].t
    span = records[-1].t - t0
    if span <= 0:
        factor = 1.0  # all arrivals coincide: only the shift applies
    elif duration is not None:
        factor = duration / span
    else:
        factor = ((len(records) - 1) / span) / rate
    return [
        TraceRecord(
            t=(record.t - t0) * factor,
            keys=list(record.keys),
            sizes=list(record.sizes),
            is_put=list(record.is_put),
        )
        for record in records
    ]


def remap_keys(
    records: Sequence[TraceRecord],
    keyspace_size: int,
    prefix: str = "key:",
) -> List[TraceRecord]:
    """Deterministically remap trace keys onto a simulated keyspace.

    Distinct keys are numbered in first-appearance order and wrapped
    modulo ``keyspace_size`` onto the simulator's canonical key names
    (``f"{prefix}{index:010d}"`` — the names :class:`Keyspace`
    preloads), so every replayed GET hits a stored key.  The mapping is
    a pure function of the record sequence: two ingests of the same
    file produce the same mapping.  Aliasing (more distinct trace keys
    than ``keyspace_size``) folds the coldest tail onto existing
    indices, preserving the head of the popularity distribution.
    """
    if keyspace_size < 1:
        raise TraceFormatError("keyspace_size must be >= 1")
    mapping: Dict[str, str] = {}
    remapped: List[TraceRecord] = []
    for record in records:
        keys = []
        for key in record.keys:
            name = mapping.get(key)
            if name is None:
                name = f"{prefix}{len(mapping) % keyspace_size:010d}"
                mapping[key] = name
            keys.append(name)
        remapped.append(
            TraceRecord(
                t=record.t,
                keys=keys,
                sizes=list(record.sizes),
                is_put=list(record.is_put),
            )
        )
    return remapped


@dataclass(frozen=True)
class TraceInfo:
    """Summary statistics of a trace (see :func:`trace_info`)."""

    records: int
    ops: int
    duration: float
    mean_rate: float
    distinct_keys: int
    put_fraction: float
    size_min: int
    size_mean: float
    size_max: int

    def describe(self) -> str:
        """One-paragraph human-readable summary (used by docs/CLI)."""
        return (
            f"{self.records} records / {self.ops} ops over "
            f"{self.duration:.3f}s ({self.mean_rate:.1f} req/s), "
            f"{self.distinct_keys} distinct keys, "
            f"{self.put_fraction * 100:.1f}% puts, "
            f"sizes {self.size_min}B..{self.size_max}B "
            f"(mean {self.size_mean:.0f}B)"
        )


def trace_info(records: Sequence[TraceRecord]) -> TraceInfo:
    """Summarize a trace: counts, span, key cardinality, size profile.

    The walkthrough in ``docs/workloads.md`` uses this to sanity-check
    an ingested trace before replaying it (does the span, rate, and
    size profile look like the source system?).
    """
    if not records:
        raise TraceFormatError("cannot summarize an empty trace")
    ops = sum(len(r.keys) for r in records)
    keys = set()
    puts = 0
    size_min = None
    size_max = None
    size_sum = 0
    for record in records:
        keys.update(record.keys)
        puts += sum(record.is_put)
        for size in record.sizes:
            size_sum += size
            size_min = size if size_min is None else min(size_min, size)
            size_max = size if size_max is None else max(size_max, size)
    duration = records[-1].t - records[0].t
    mean_rate = (len(records) - 1) / duration if duration > 0 else float("inf")
    return TraceInfo(
        records=len(records),
        ops=ops,
        duration=duration,
        mean_rate=mean_rate,
        distinct_keys=len(keys),
        put_fraction=puts / ops,
        size_min=int(size_min),
        size_mean=size_sum / ops,
        size_max=int(size_max),
    )
