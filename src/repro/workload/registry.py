"""Named workload registry: the bundled spec library and its lookup.

Bundled specs live next to this module in ``specs/*.toml`` — one file
per named workload, filename == spec name.  ``workload("mmpp-burst")``
returns the validated :class:`~repro.workload.spec.WorkloadSpec`;
``resolve_workload`` additionally accepts a filesystem path (anything
ending in ``.toml``/``.json`` or containing a path separator), which is
what ``ClusterConfig(workload=...)`` and the ``--workload`` CLI flags
pass through.  The registry table in ``docs/workloads.md`` describes
every bundled spec.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List

from repro.errors import WorkloadError
from repro.workload.spec import WorkloadSpec, load_spec

#: Directory holding the bundled ``<name>.toml`` spec files.
BUNDLED_SPECS_DIR = Path(__file__).parent / "specs"

#: The bundled downsampled cache-trace sample (``timestamp,key,op,size``
#: CSV) that ``trace-sample`` replays and docs/workloads.md walks through.
SAMPLE_TRACE = BUNDLED_SPECS_DIR / "sample_trace.csv"

#: Process-lifetime cache: specs are immutable and bundled files do not
#: change under a running process, so each file parses at most once.
_CACHE: Dict[str, WorkloadSpec] = {}


def list_workloads() -> List[str]:
    """Sorted names of every bundled workload spec."""
    return sorted(path.stem for path in BUNDLED_SPECS_DIR.glob("*.toml"))


def workload(name: str) -> WorkloadSpec:
    """Look up a bundled spec by name.

    An unknown name raises :class:`WorkloadError` listing the registry,
    so a typo in ``--workload`` shows the menu instead of a stack trace.
    """
    cached = _CACHE.get(name)
    if cached is not None:
        return cached
    path = BUNDLED_SPECS_DIR / f"{name}.toml"
    if not path.exists():
        raise WorkloadError(
            f"unknown workload {name!r}; bundled: {', '.join(list_workloads())}"
        )
    spec = load_spec(path)
    if spec.name != name:
        raise WorkloadError(
            f"bundled spec file {path.name} declares name {spec.name!r}; "
            "registry filenames must match the spec's name"
        )
    _CACHE[name] = spec
    return spec


def resolve_workload(ref: str) -> WorkloadSpec:
    """Resolve a workload reference: a registry name or a spec-file path."""
    if not isinstance(ref, str) or not ref:
        raise WorkloadError(f"workload reference must be a name or path, got {ref!r}")
    looks_like_path = (
        ref.endswith(".toml")
        or ref.endswith(".json")
        or os.sep in ref
        or "/" in ref
    )
    if looks_like_path:
        return load_spec(ref)
    return workload(ref)
