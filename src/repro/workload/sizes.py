"""Value-size distributions.

Sizes drive service demands (``demand = overhead + size / byte_rate``).
The lognormal and generalized-Pareto specs follow the shapes reported in
Facebook's memcached workload analysis (Atikoglu et al., SIGMETRICS 2012);
exact parameters differ per deployment, so all are configurable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.sim.rand import as_batched


class SizeSampler:
    def sample(self) -> int:
        raise NotImplementedError

    def sample_block(self, n: int) -> np.ndarray:
        """``n`` sizes, identical to ``n`` successive :meth:`sample` calls.

        Subclasses with a vectorizable draw override this; the fallback
        just loops (used by e.g. custom user samplers).
        """
        return np.asarray([self.sample() for _ in range(n)], dtype=np.int64)


class SizeSpec:
    def build(self, rng: np.random.Generator) -> SizeSampler:
        raise NotImplementedError

    def mean(self) -> float:
        """Analytic mean size in bytes (after truncation if any)."""
        raise NotImplementedError


@dataclass(frozen=True)
class FixedSize(SizeSpec):
    """All values are exactly ``size`` bytes."""

    size: int = 1024

    def __post_init__(self):
        if self.size < 0:
            raise WorkloadError("size must be >= 0")

    def build(self, rng: np.random.Generator) -> SizeSampler:
        return _FixedSizeSampler(self.size)

    def mean(self) -> float:
        return float(self.size)


class _FixedSizeSampler(SizeSampler):
    def __init__(self, size: int):
        self._size = size

    def sample(self) -> int:
        return self._size

    def sample_block(self, n: int) -> np.ndarray:
        return np.full(n, self._size, dtype=np.int64)


@dataclass(frozen=True)
class UniformSize(SizeSpec):
    """Sizes uniform on [lo, hi] bytes."""

    lo: int = 128
    hi: int = 4096

    def __post_init__(self):
        if self.lo < 0 or self.hi < self.lo:
            raise WorkloadError("need 0 <= lo <= hi")

    def build(self, rng: np.random.Generator) -> SizeSampler:
        return _UniformSizeSampler(self.lo, self.hi, rng)

    def mean(self) -> float:
        return (self.lo + self.hi) / 2.0


class _UniformSizeSampler(SizeSampler):
    def __init__(self, lo: int, hi: int, rng: np.random.Generator):
        self._lo = lo
        self._hi = hi
        self._rng = as_batched(rng)

    def sample(self) -> int:
        return self._rng.integers(self._lo, self._hi + 1)

    def sample_block(self, n: int) -> np.ndarray:
        return self._rng.integers_block(self._lo, self._hi + 1, n)


@dataclass(frozen=True)
class LognormalSize(SizeSpec):
    """Lognormal sizes with the given ``median`` and shape ``sigma``.

    Samples above ``cap`` are clamped (memcached-style slab limit).  The
    ``mean()`` accounts for the clamping analytically via the lognormal
    partial expectation.
    """

    median: float = 1024.0
    sigma: float = 1.0
    cap: int = 1 << 20

    def __post_init__(self):
        if self.median <= 0:
            raise WorkloadError("median must be positive")
        if self.sigma <= 0:
            raise WorkloadError("sigma must be positive")
        if self.cap < self.median:
            raise WorkloadError("cap must be >= median")

    def build(self, rng: np.random.Generator) -> SizeSampler:
        return _LognormalSampler(np.log(self.median), self.sigma, self.cap, rng)

    def mean(self) -> float:
        # E[min(X, cap)] for X ~ LogNormal(mu, sigma).
        from scipy.stats import norm

        mu = np.log(self.median)
        sigma = self.sigma
        cap = float(self.cap)
        z = (np.log(cap) - mu) / sigma
        below = np.exp(mu + sigma**2 / 2) * norm.cdf(z - sigma)
        above = cap * (1.0 - norm.cdf(z))
        return float(below + above)


class _LognormalSampler(SizeSampler):
    def __init__(self, mu: float, sigma: float, cap: int, rng: np.random.Generator):
        self._mu = mu
        self._sigma = sigma
        self._cap = cap
        self._rng = as_batched(rng)

    def sample(self) -> int:
        raw = self._rng.lognormal(self._mu, self._sigma)
        return int(min(max(1.0, raw), self._cap))

    def sample_block(self, n: int) -> np.ndarray:
        raw = self._rng.lognormal_block(self._mu, self._sigma, n)
        return np.clip(raw, 1.0, self._cap).astype(np.int64)


@dataclass(frozen=True)
class ParetoSize(SizeSpec):
    """Plain (type-I) Pareto tail over a minimum size (heavy-tailed values).

    ``X = lo * (1 - U)^(-1/alpha)`` with support ``[lo, inf)``, truncated
    at ``cap``.  Small ``alpha`` gives the heavy tail used in our
    "heavytail" traffic pattern; ``alpha <= 1`` (infinite untruncated
    mean) is allowed because the ``cap`` truncation keeps ``mean()``
    finite.
    """

    lo: float = 256.0
    alpha: float = 1.5
    cap: int = 1 << 22

    def __post_init__(self):
        if self.lo <= 0:
            raise WorkloadError("lo must be positive")
        if self.alpha <= 0:
            raise WorkloadError("alpha must be positive")
        if self.cap <= self.lo:
            raise WorkloadError("cap must exceed lo")

    def build(self, rng: np.random.Generator) -> SizeSampler:
        return _ParetoSampler(self.lo, self.alpha, self.cap, rng)

    def mean(self) -> float:
        # E[min(X, cap)] for Pareto(lo, alpha), any alpha > 0:
        #   = lo + lo^a * (cap^(1-a) - lo^(1-a)) / (1 - a)   for a != 1
        #   = lo * (1 + ln(cap / lo))                        for a == 1
        # (For a > 1 this equals the familiar
        # lo*a/(a-1) - lo^a/(a-1) * cap^(1-a) closed form.)
        a, lo, cap = self.alpha, self.lo, float(self.cap)
        if a == 1.0:
            return lo * (1.0 + np.log(cap / lo))
        return lo + lo**a * (cap ** (1 - a) - lo ** (1 - a)) / (1 - a)


class _ParetoSampler(SizeSampler):
    def __init__(self, lo: float, alpha: float, cap: int, rng: np.random.Generator):
        self._lo = lo
        self._alpha = alpha
        self._cap = cap
        self._rng = as_batched(rng)

    def sample(self) -> int:
        u = self._rng.random()
        raw = self._lo * (1.0 - u) ** (-1.0 / self._alpha)
        return int(min(raw, self._cap))

    def sample_block(self, n: int) -> np.ndarray:
        us = self._rng.random_block(n)
        raw = self._lo * (1.0 - us) ** (-1.0 / self._alpha)
        return np.minimum(raw, self._cap).astype(np.int64)


@dataclass(frozen=True)
class BimodalSize(SizeSpec):
    """Mostly-small values with an occasional large blob."""

    small: int = 512
    large: int = 262144
    p_large: float = 0.05

    def __post_init__(self):
        if self.small < 0 or self.large < 0:
            raise WorkloadError("sizes must be >= 0")
        if self.small >= self.large:
            raise WorkloadError("small must be < large")
        if not 0 < self.p_large < 1:
            raise WorkloadError("p_large must be in (0, 1)")

    def build(self, rng: np.random.Generator) -> SizeSampler:
        return _BimodalSizeSampler(self.small, self.large, self.p_large, rng)

    def mean(self) -> float:
        return self.small * (1 - self.p_large) + self.large * self.p_large


class _BimodalSizeSampler(SizeSampler):
    def __init__(self, small: int, large: int, p_large: float, rng: np.random.Generator):
        self._small = small
        self._large = large
        self._p_large = p_large
        self._rng = as_batched(rng)

    def sample(self) -> int:
        return self._large if self._rng.random() < self._p_large else self._small

    def sample_block(self, n: int) -> np.ndarray:
        us = self._rng.random_block(n)
        return np.where(us < self._p_large, self._large, self._small).astype(np.int64)


@dataclass(frozen=True)
class ExponentialSize(SizeSpec):
    """Exponentially distributed sizes (memoryless service demands).

    With a small per-operation overhead this makes single-key traffic an
    (approximate) M/M/1 system — the workhorse of the simulator-validation
    tests in ``repro.analysis.theory``.
    """

    mean_size: float = 1024.0
    cap: int = 1 << 24

    def __post_init__(self):
        if self.mean_size <= 0:
            raise WorkloadError("mean_size must be positive")
        if self.cap <= self.mean_size:
            raise WorkloadError("cap must exceed mean_size")

    def build(self, rng: np.random.Generator) -> SizeSampler:
        return _ExponentialSampler(self.mean_size, self.cap, rng)

    def mean(self) -> float:
        # E[min(X, cap)] = mean * (1 - exp(-cap/mean)).
        return self.mean_size * (1.0 - np.exp(-self.cap / self.mean_size))


class _ExponentialSampler(SizeSampler):
    def __init__(self, mean_size: float, cap: int, rng: np.random.Generator):
        self._mean = mean_size
        self._cap = cap
        self._rng = as_batched(rng)

    def sample(self) -> int:
        return int(min(self._rng.exponential(self._mean), self._cap))

    def sample_block(self, n: int) -> np.ndarray:
        raw = self._rng.exponential_block(self._mean, n)
        return np.minimum(raw, self._cap).astype(np.int64)
