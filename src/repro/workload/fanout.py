"""Multiget fan-out (keys per request) distributions.

Facebook's memcached analysis reports multiget batches from 1 to hundreds
of keys with a geometric-ish body; the paper sweeps fan-out directly.  All
specs expose analytic means so offered load can be calibrated exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.sim.rand import as_batched


class FanoutSampler:
    def sample(self) -> int:
        raise NotImplementedError


class FanoutSpec:
    def build(self, rng: np.random.Generator) -> FanoutSampler:
        raise NotImplementedError

    def mean(self) -> float:
        raise NotImplementedError

    def max_fanout(self) -> int:
        """Upper bound on a sample (for keyspace sanity checks)."""
        raise NotImplementedError


@dataclass(frozen=True)
class FixedFanout(FanoutSpec):
    """Every request touches exactly ``k`` keys."""

    k: int

    def __post_init__(self):
        if self.k < 1:
            raise WorkloadError(f"fanout must be >= 1, got {self.k}")

    def build(self, rng: np.random.Generator) -> FanoutSampler:
        return _FixedSampler(self.k)

    def mean(self) -> float:
        return float(self.k)

    def max_fanout(self) -> int:
        return self.k


class _FixedSampler(FanoutSampler):
    def __init__(self, k: int):
        self._k = k

    def sample(self) -> int:
        return self._k


@dataclass(frozen=True)
class UniformFanout(FanoutSpec):
    """Fan-out uniform on the integers [lo, hi]."""

    lo: int
    hi: int

    def __post_init__(self):
        if self.lo < 1:
            raise WorkloadError("lo must be >= 1")
        if self.hi < self.lo:
            raise WorkloadError("hi must be >= lo")

    def build(self, rng: np.random.Generator) -> FanoutSampler:
        return _UniformFanoutSampler(self.lo, self.hi, rng)

    def mean(self) -> float:
        return (self.lo + self.hi) / 2.0

    def max_fanout(self) -> int:
        return self.hi


class _UniformFanoutSampler(FanoutSampler):
    def __init__(self, lo: int, hi: int, rng: np.random.Generator):
        self._lo = lo
        self._hi = hi
        self._rng = as_batched(rng)

    def sample(self) -> int:
        return self._rng.integers(self._lo, self._hi + 1)


@dataclass(frozen=True)
class GeometricFanout(FanoutSpec):
    """Shifted geometric fan-out: 1 + Geometric, truncated at ``cap``.

    ``mean_target`` is the mean of the *untruncated* distribution; with a
    generous cap the truncation bias is negligible and ``mean()`` accounts
    for it exactly.
    """

    mean_target: float = 5.0
    cap: int = 64

    def __post_init__(self):
        if self.mean_target < 1:
            raise WorkloadError("geometric fanout mean must be >= 1")
        if self.cap < 1:
            raise WorkloadError("cap must be >= 1")

    @property
    def p(self) -> float:
        """Success probability of the underlying geometric."""
        return 1.0 / self.mean_target

    def build(self, rng: np.random.Generator) -> FanoutSampler:
        return _GeometricSampler(self.p, self.cap, rng)

    def mean(self) -> float:
        # E[min(X, cap)] for X ~ Geometric(p) on {1, 2, ...}:
        # = sum_{k>=1} P(X >= k) truncated at cap = (1 - q^cap) / p, q = 1-p.
        q = 1.0 - self.p
        return (1.0 - q**self.cap) / self.p

    def max_fanout(self) -> int:
        return self.cap


class _GeometricSampler(FanoutSampler):
    def __init__(self, p: float, cap: int, rng: np.random.Generator):
        self._p = p
        self._cap = cap
        self._rng = as_batched(rng)

    def sample(self) -> int:
        # numpy's geometric is supported on {1, 2, ...} already.
        return min(self._rng.geometric(self._p), self._cap)


@dataclass(frozen=True)
class BimodalFanout(FanoutSpec):
    """Small requests of ``small`` keys mixed with large ones of ``large``.

    ``p_large`` fraction of requests are large — the mix that exposes
    head-of-line blocking of small multigets behind large ones.
    """

    small: int = 2
    large: int = 32
    p_large: float = 0.1

    def __post_init__(self):
        if self.small < 1 or self.large < 1:
            raise WorkloadError("fanouts must be >= 1")
        if self.small >= self.large:
            raise WorkloadError("small must be < large")
        if not 0 < self.p_large < 1:
            raise WorkloadError("p_large must be in (0, 1)")

    def build(self, rng: np.random.Generator) -> FanoutSampler:
        return _BimodalSampler(self.small, self.large, self.p_large, rng)

    def mean(self) -> float:
        return self.small * (1 - self.p_large) + self.large * self.p_large

    def max_fanout(self) -> int:
        return self.large


class _BimodalSampler(FanoutSampler):
    def __init__(self, small: int, large: int, p_large: float, rng: np.random.Generator):
        self._small = small
        self._large = large
        self._p_large = p_large
        self._rng = as_batched(rng)

    def sample(self) -> int:
        return self._large if self._rng.random() < self._p_large else self._small
