"""Workload generation: arrivals, key popularity, fan-out, value sizes.

Every generator is described by a declarative *spec* (a small frozen
dataclass exposing ``build(rng)`` and analytic moments like ``mean()``)
so experiment configurations are self-describing, serializable, and the
offered load can be computed in closed form for calibration.
"""

from repro.workload.arrivals import (
    ArrivalSpec,
    DeterministicArrivals,
    MMPPArrivals,
    PhasedArrivals,
    PoissonArrivals,
    SinusoidalArrivals,
    TraceArrivals,
)
from repro.workload.fanout import (
    BimodalFanout,
    FanoutSpec,
    FixedFanout,
    GeometricFanout,
    UniformFanout,
)
from repro.workload.popularity import (
    HotspotPopularity,
    PopularitySpec,
    UniformPopularity,
    ZipfPopularity,
)
from repro.workload.requests import Keyspace, RequestFactory, RequestSpec
from repro.workload.sizes import (
    BimodalSize,
    ExponentialSize,
    FixedSize,
    LognormalSize,
    ParetoSize,
    SizeSpec,
    UniformSize,
)
from repro.workload.traces import (
    TraceInfo,
    TraceRecord,
    read_csv_trace,
    read_trace,
    remap_keys,
    rescale_trace,
    trace_info,
    write_trace,
)
from repro.workload.patterns import TRAFFIC_PATTERNS, traffic_pattern
from repro.workload.spec import WorkloadSpec, load_spec
from repro.workload.registry import (
    BUNDLED_SPECS_DIR,
    SAMPLE_TRACE,
    list_workloads,
    workload,
)

__all__ = [
    "ArrivalSpec",
    "BUNDLED_SPECS_DIR",
    "BimodalFanout",
    "BimodalSize",
    "DeterministicArrivals",
    "ExponentialSize",
    "FanoutSpec",
    "FixedFanout",
    "FixedSize",
    "GeometricFanout",
    "HotspotPopularity",
    "Keyspace",
    "LognormalSize",
    "MMPPArrivals",
    "ParetoSize",
    "PhasedArrivals",
    "PoissonArrivals",
    "PopularitySpec",
    "SinusoidalArrivals",
    "RequestFactory",
    "RequestSpec",
    "SAMPLE_TRACE",
    "SizeSpec",
    "TRAFFIC_PATTERNS",
    "TraceArrivals",
    "TraceInfo",
    "TraceRecord",
    "UniformFanout",
    "UniformPopularity",
    "UniformSize",
    "WorkloadSpec",
    "ZipfPopularity",
    "list_workloads",
    "load_spec",
    "read_csv_trace",
    "read_trace",
    "remap_keys",
    "rescale_trace",
    "trace_info",
    "traffic_pattern",
    "workload",
    "write_trace",
]
