"""Workload generation: arrivals, key popularity, fan-out, value sizes.

Every generator is described by a declarative *spec* (a small frozen
dataclass exposing ``build(rng)`` and analytic moments like ``mean()``)
so experiment configurations are self-describing, serializable, and the
offered load can be computed in closed form for calibration.
"""

from repro.workload.arrivals import (
    ArrivalSpec,
    DeterministicArrivals,
    MMPPArrivals,
    PoissonArrivals,
    SinusoidalArrivals,
    TraceArrivals,
)
from repro.workload.fanout import (
    BimodalFanout,
    FanoutSpec,
    FixedFanout,
    GeometricFanout,
    UniformFanout,
)
from repro.workload.popularity import (
    HotspotPopularity,
    PopularitySpec,
    UniformPopularity,
    ZipfPopularity,
)
from repro.workload.requests import Keyspace, RequestFactory, RequestSpec
from repro.workload.sizes import (
    BimodalSize,
    ExponentialSize,
    FixedSize,
    LognormalSize,
    ParetoSize,
    SizeSpec,
    UniformSize,
)
from repro.workload.traces import TraceRecord, read_trace, write_trace
from repro.workload.patterns import TRAFFIC_PATTERNS, traffic_pattern

__all__ = [
    "ArrivalSpec",
    "BimodalFanout",
    "BimodalSize",
    "DeterministicArrivals",
    "ExponentialSize",
    "FanoutSpec",
    "FixedFanout",
    "FixedSize",
    "GeometricFanout",
    "HotspotPopularity",
    "Keyspace",
    "LognormalSize",
    "MMPPArrivals",
    "ParetoSize",
    "PoissonArrivals",
    "PopularitySpec",
    "SinusoidalArrivals",
    "RequestFactory",
    "RequestSpec",
    "SizeSpec",
    "TRAFFIC_PATTERNS",
    "TraceArrivals",
    "TraceRecord",
    "UniformFanout",
    "UniformPopularity",
    "UniformSize",
    "ZipfPopularity",
    "read_trace",
    "traffic_pattern",
    "write_trace",
]
