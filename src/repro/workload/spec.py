"""Declarative workload specs: JSON/TOML descriptors for full workloads.

A :class:`WorkloadSpec` bundles everything that defines *what traffic a
cluster sees* — arrival pattern (including phases and bursts), key
popularity, value-size model, multiget fan-out, put ratio, and open- vs
closed-loop generation mode — into one validated, serializable object
that builds the existing ``workload/`` generator specs.  Specs load from
TOML or JSON files (``load_spec``), live in the bundled registry
(:mod:`repro.workload.registry`), and plug into the simulator via
``ClusterConfig(workload="name")`` and into the experiment CLIs via
``--workload``.  The file format is documented field-by-field in
``docs/workloads.md`` — that page is the contract; this module enforces
it.

Two load models:

* **absolute** — the ``[arrivals]`` table states rates in requests/s and
  the spec replays identically on any cluster;
* **calibrated** — a top-level ``load`` (target utilization in (0, 1])
  rescales the declared arrival shape so its *time-average* rate hits
  that utilization on the cluster at hand (via
  :func:`repro.workload.requests.arrival_rate_for_load`), which keeps
  one spec meaningful across cluster sizes.  The shape (MMPP rate
  ratios, phase ramps) is preserved; only the overall level moves.

A spec may instead declare a ``[trace]`` table: replay a recorded trace
(cache-trace CSV or JSONL) as the arrival+key+size source, with
deterministic time-rescaling and keyspace remapping.  A trace spec
ignores the synthetic generator tables.

Python 3.10 note: the stdlib gained ``tomllib`` in 3.11.  On 3.10 this
module falls back to a minimal built-in parser covering the TOML subset
the spec format uses (tables, scalar keys, single- or multi-line arrays)
so no third-party dependency is needed.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.errors import WorkloadError
from repro.workload.arrivals import (
    ArrivalSpec,
    DeterministicArrivals,
    MMPPArrivals,
    PhasedArrivals,
    PoissonArrivals,
    SinusoidalArrivals,
)
from repro.workload.fanout import (
    BimodalFanout,
    FanoutSpec,
    FixedFanout,
    GeometricFanout,
    UniformFanout,
)
from repro.workload.popularity import (
    HotspotPopularity,
    PopularitySpec,
    UniformPopularity,
    ZipfPopularity,
)
from repro.workload.requests import arrival_rate_for_load
from repro.workload.sizes import (
    BimodalSize,
    ExponentialSize,
    FixedSize,
    LognormalSize,
    ParetoSize,
    SizeSpec,
    UniformSize,
)

try:  # Python >= 3.11
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - exercised on 3.10 CI only
    tomllib = None


# ----------------------------------------------------------------------
# Component registries: spec-file "kind" string -> generator class.
# docs/workloads.md tables these kinds and their parameters.
# ----------------------------------------------------------------------
ARRIVAL_KINDS: Dict[str, type] = {
    "poisson": PoissonArrivals,
    "deterministic": DeterministicArrivals,
    "mmpp": MMPPArrivals,
    "sinusoidal": SinusoidalArrivals,
    "phased": PhasedArrivals,
}

FANOUT_KINDS: Dict[str, type] = {
    "fixed": FixedFanout,
    "uniform": UniformFanout,
    "geometric": GeometricFanout,
    "bimodal": BimodalFanout,
}

SIZE_KINDS: Dict[str, type] = {
    "fixed": FixedSize,
    "uniform": UniformSize,
    "lognormal": LognormalSize,
    "pareto": ParetoSize,
    "bimodal": BimodalSize,
    "exponential": ExponentialSize,
}

POPULARITY_KINDS: Dict[str, type] = {
    "uniform": UniformPopularity,
    "zipf": ZipfPopularity,
    "hotspot": HotspotPopularity,
}

_KIND_TABLES = {
    "arrivals": ARRIVAL_KINDS,
    "fanout": FANOUT_KINDS,
    "sizes": SIZE_KINDS,
    "popularity": POPULARITY_KINDS,
}

#: Top-level keys a spec file may contain (everything else is an error —
#: typos must not silently fall back to defaults).
_TOP_LEVEL_KEYS = frozenset(
    {
        "name",
        "description",
        "mode",
        "closed_concurrency",
        "load",
        "put_fraction",
        "keyspace_size",
        "tenants",
        "arrivals",
        "fanout",
        "sizes",
        "popularity",
        "trace",
    }
)

_TRACE_KEYS = frozenset(
    {"path", "format", "limit", "duration", "rate", "remap"}
)


def _tupled(value: Any) -> Any:
    """Lists (from TOML/JSON arrays) become tuples, recursively."""
    if isinstance(value, list):
        return tuple(_tupled(v) for v in value)
    return value


def _build_component(name: str, section_key: str, section: Any) -> Any:
    """Build one generator spec from a ``{"kind": ..., params...}`` table."""
    kinds = _KIND_TABLES[section_key]
    if not isinstance(section, dict):
        raise WorkloadError(
            f"spec {name!r}: {section_key} must be a table, got "
            f"{type(section).__name__}"
        )
    data = {key: _tupled(value) for key, value in section.items()}
    kind = data.pop("kind", None)
    if kind is None:
        raise WorkloadError(f"spec {name!r}: {section_key}.kind is required")
    cls = kinds.get(kind)
    if cls is None:
        raise WorkloadError(
            f"spec {name!r}: unknown {section_key}.kind {kind!r}; "
            f"known: {', '.join(sorted(kinds))}"
        )
    allowed = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise WorkloadError(
            f"spec {name!r}: unknown {section_key} parameter(s) "
            f"{', '.join(unknown)} for kind {kind!r}; "
            f"known: {', '.join(sorted(allowed))}"
        )
    try:
        return cls(**data)
    except WorkloadError as exc:
        raise WorkloadError(
            f"spec {name!r}: invalid {section_key} ({kind}): {exc}"
        ) from exc


def _component_dict(component: Any, kinds: Dict[str, type]) -> Dict[str, Any]:
    """Serialize a generator spec back to its ``{"kind": ...}`` table."""
    kind = next(k for k, cls in kinds.items() if type(component) is cls)
    table: Dict[str, Any] = {"kind": kind}
    for f in fields(component):
        value = getattr(component, f.name)
        if isinstance(value, tuple):
            value = [list(v) if isinstance(v, tuple) else v for v in value]
        table[f.name] = value
    return table


@dataclass(frozen=True)
class TraceSource:
    """Where and how a trace spec gets its records.

    ``path`` is resolved relative to the spec file at load time (the
    resolved directory lands in ``base_dir``, which never enters the
    fingerprint — the *records* do, via the cluster config).  Exactly
    one of ``duration`` / ``rate`` may rescale the trace clock; with
    neither, timestamps replay verbatim.  ``remap=True`` (default) maps
    trace keys onto the simulator's preloaded keyspace.
    """

    path: str
    format: str = "csv"
    limit: Optional[int] = None
    duration: Optional[float] = None
    rate: Optional[float] = None
    remap: bool = True
    base_dir: Optional[str] = None

    def __post_init__(self):
        if not self.path:
            raise WorkloadError("trace.path is required")
        if self.format not in ("csv", "jsonl"):
            raise WorkloadError(
                f"trace.format must be 'csv' or 'jsonl', got {self.format!r}"
            )
        if self.limit is not None and self.limit < 1:
            raise WorkloadError("trace.limit must be >= 1")
        if self.duration is not None and self.rate is not None:
            raise WorkloadError("set at most one of trace.duration / trace.rate")
        if self.duration is not None and self.duration <= 0:
            raise WorkloadError("trace.duration must be positive")
        if self.rate is not None and self.rate <= 0:
            raise WorkloadError("trace.rate must be positive")

    def resolved_path(self) -> Path:
        """Trace path resolved against the spec file's directory."""
        path = Path(self.path)
        if not path.is_absolute() and self.base_dir is not None:
            path = Path(self.base_dir) / path
        return path

    def load_records(self, keyspace_size: Optional[int] = None) -> tuple:
        """Read, rescale, and remap the trace into replayable records."""
        from repro.workload.traces import (
            load_trace,
            read_csv_trace,
            remap_keys,
            rescale_trace,
        )

        path = self.resolved_path()
        if not path.exists():
            raise WorkloadError(f"trace file not found: {path}")
        if self.format == "csv":
            records = read_csv_trace(path, limit=self.limit)
        else:
            records = load_trace(path)
            if self.limit is not None:
                records = records[: self.limit]
        if self.duration is not None:
            records = rescale_trace(records, duration=self.duration)
        elif self.rate is not None:
            records = rescale_trace(records, rate=self.rate)
        if self.remap and keyspace_size is not None:
            records = remap_keys(records, keyspace_size)
        return tuple(records)


@dataclass(frozen=True)
class WorkloadSpec:
    """One complete, validated workload description.

    Defaults mirror :class:`repro.kvstore.config.ClusterConfig` so a
    minimal spec (just a ``name``) is the simulator's default workload.
    """

    name: str
    description: str = ""
    #: "open" (arrival-clock driven, the sim default) or "closed"
    #: (fixed window of outstanding requests per client).
    mode: str = "open"
    #: Outstanding requests per client in closed mode (ignored in open).
    closed_concurrency: int = 4
    #: Target utilization in (0, 1]; rescales the arrival shape per
    #: cluster.  None = use the declared absolute rates.
    load: Optional[float] = None
    put_fraction: float = 0.0
    #: Overrides the cluster's keyspace size when set.
    keyspace_size: Optional[int] = None
    #: Multi-tenant key spaces: the keyspace is split into this many
    #: disjoint per-tenant partitions and each client's popularity law is
    #: confined to its tenant's slice (tenant = client_id mod tenants).
    tenants: int = 1
    arrivals: ArrivalSpec = field(
        default_factory=lambda: PoissonArrivals(rate=1000.0)
    )
    fanout: FanoutSpec = field(
        default_factory=lambda: GeometricFanout(mean_target=5.0)
    )
    sizes: SizeSpec = field(
        default_factory=lambda: LognormalSize(median=1024.0, sigma=1.0, cap=1 << 18)
    )
    popularity: PopularitySpec = field(
        default_factory=lambda: ZipfPopularity(s=0.99)
    )
    #: Replay a recorded trace instead of the synthetic generators.
    trace: Optional[TraceSource] = None

    def __post_init__(self):
        if not self.name:
            raise WorkloadError("spec name is required")
        if self.mode not in ("open", "closed"):
            raise WorkloadError(
                f"spec {self.name!r}: mode must be 'open' or 'closed', "
                f"got {self.mode!r}"
            )
        if self.closed_concurrency < 1:
            raise WorkloadError(
                f"spec {self.name!r}: closed_concurrency must be >= 1"
            )
        if self.load is not None and not 0 < self.load <= 1:
            raise WorkloadError(
                f"spec {self.name!r}: load must be in (0, 1], got {self.load}"
            )
        if not 0.0 <= self.put_fraction <= 1.0:
            raise WorkloadError(
                f"spec {self.name!r}: put_fraction must be in [0, 1]"
            )
        if self.keyspace_size is not None and self.keyspace_size < 1:
            raise WorkloadError(
                f"spec {self.name!r}: keyspace_size must be >= 1"
            )
        if self.tenants < 1:
            raise WorkloadError(
                f"spec {self.name!r}: tenants must be >= 1, got {self.tenants}"
            )
        if self.trace is not None and self.load is not None:
            raise WorkloadError(
                f"spec {self.name!r}: trace replay and load calibration "
                "are mutually exclusive (the trace fixes the arrival rate)"
            )

    # ------------------------------------------------------------------
    # Parsing
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(
        cls,
        data: Dict[str, Any],
        base_dir: Optional[Union[str, Path]] = None,
    ) -> "WorkloadSpec":
        """Validate a parsed spec file into a :class:`WorkloadSpec`.

        Every malformed field raises :class:`WorkloadError` naming the
        field, so spec typos fail loudly instead of silently taking a
        default.
        """
        if not isinstance(data, dict):
            raise WorkloadError(
                f"spec must be a table/object, got {type(data).__name__}"
            )
        # JSON canonical form spells unset optionals as null; treat an
        # explicit null exactly like an absent key.
        data = {key: value for key, value in data.items() if value is not None}
        unknown = sorted(set(data) - _TOP_LEVEL_KEYS)
        if unknown:
            raise WorkloadError(
                f"unknown spec key(s): {', '.join(unknown)}; "
                f"known: {', '.join(sorted(_TOP_LEVEL_KEYS))}"
            )
        name = data.get("name")
        if not isinstance(name, str) or not name:
            raise WorkloadError("spec requires a non-empty string 'name'")
        kwargs: Dict[str, Any] = {"name": name}
        for key, typ in (
            ("description", str),
            ("mode", str),
            ("closed_concurrency", int),
            ("put_fraction", (int, float)),
            ("load", (int, float)),
            ("keyspace_size", int),
            ("tenants", int),
        ):
            if key in data:
                value = data[key]
                if isinstance(value, bool) or not isinstance(value, typ):
                    raise WorkloadError(
                        f"spec {name!r}: {key} has wrong type "
                        f"{type(value).__name__}"
                    )
                kwargs[key] = float(value) if key in ("put_fraction", "load") else value
        for section_key in ("arrivals", "fanout", "sizes", "popularity"):
            if section_key in data:
                kwargs[section_key] = _build_component(
                    name, section_key, data[section_key]
                )
        if "trace" in data:
            section = data["trace"]
            if not isinstance(section, dict):
                raise WorkloadError(f"spec {name!r}: trace must be a table")
            section = {k: v for k, v in section.items() if v is not None}
            unknown = sorted(set(section) - _TRACE_KEYS)
            if unknown:
                raise WorkloadError(
                    f"spec {name!r}: unknown trace key(s): {', '.join(unknown)}; "
                    f"known: {', '.join(sorted(_TRACE_KEYS))}"
                )
            try:
                kwargs["trace"] = TraceSource(
                    base_dir=str(base_dir) if base_dir is not None else None,
                    **section,
                )
            except WorkloadError as exc:
                raise WorkloadError(f"spec {name!r}: {exc}") from exc
        return cls(**kwargs)

    # ------------------------------------------------------------------
    # Canonical form + fingerprint
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        """Canonical plain-data form (what TOML and JSON both parse to).

        Two spec files describing the same workload — regardless of
        format or key order — produce equal dicts; machine-local detail
        (the trace ``base_dir``) is excluded.
        """
        out: Dict[str, Any] = {
            "name": self.name,
            "description": self.description,
            "mode": self.mode,
            "closed_concurrency": self.closed_concurrency,
            "load": self.load,
            "put_fraction": self.put_fraction,
            "keyspace_size": self.keyspace_size,
            "tenants": self.tenants,
            "arrivals": _component_dict(self.arrivals, ARRIVAL_KINDS),
            "fanout": _component_dict(self.fanout, FANOUT_KINDS),
            "sizes": _component_dict(self.sizes, SIZE_KINDS),
            "popularity": _component_dict(self.popularity, POPULARITY_KINDS),
        }
        if self.trace is not None:
            out["trace"] = {
                "path": self.trace.path,
                "format": self.trace.format,
                "limit": self.trace.limit,
                "duration": self.trace.duration,
                "rate": self.trace.rate,
                "remap": self.trace.remap,
            }
        return out

    def fingerprint(self) -> str:
        """Stable content hash of the canonical form.

        Joins the cluster-config repr (see ``ClusterConfig.workload``),
        so parallel-engine checkpoints are invalidated whenever a named
        spec's *content* changes, not just its name.
        """
        payload = json.dumps(self.as_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def build_arrivals(
        self,
        n_servers: int,
        service: Any,
        mean_speed: float = 1.0,
    ) -> ArrivalSpec:
        """The arrival spec, load-calibrated for a concrete cluster.

        With ``load`` set, the declared shape is rescaled so its
        time-average rate yields that utilization given the cluster's
        capacity and this spec's fan-out and size moments; otherwise the
        declared spec is returned as-is.
        """
        if self.load is None:
            return self.arrivals
        target = arrival_rate_for_load(
            self.load,
            self.fanout.mean(),
            service.mean_demand(self.sizes.mean()),
            n_servers,
            mean_speed=mean_speed,
        )
        return self.arrivals.scaled(target / self.arrivals.mean_rate())

    def config_overrides(
        self,
        n_servers: int,
        service: Any,
        mean_speed: float = 1.0,
        default_keyspace: Optional[int] = None,
    ) -> Dict[str, Any]:
        """ClusterConfig field overrides realizing this spec.

        A workload spec fully owns the traffic definition: for a trace
        spec the synthetic generator fields keep their defaults and the
        replay records take over; for a synthetic spec any previously
        set ``trace`` is cleared.
        """
        keyspace = (
            self.keyspace_size
            if self.keyspace_size is not None
            else default_keyspace
        )
        overrides: Dict[str, Any] = {
            "fanout": self.fanout,
            "sizes": self.sizes,
            "popularity": self.popularity,
            "put_fraction": self.put_fraction,
            "closed_loop": self.mode == "closed",
            "closed_concurrency": self.closed_concurrency,
            "tenants": self.tenants,
        }
        if keyspace is not None:
            overrides["keyspace_size"] = keyspace
        if self.trace is not None:
            overrides["trace"] = self.trace.load_records(keyspace)
        else:
            overrides["trace"] = None
            overrides["arrivals"] = self.build_arrivals(
                n_servers, service, mean_speed
            )
        return overrides


# ----------------------------------------------------------------------
# File loading
# ----------------------------------------------------------------------
def load_spec(path: Union[str, Path]) -> WorkloadSpec:
    """Load and validate a workload spec from a ``.toml`` or ``.json`` file."""
    path = Path(path)
    if not path.exists():
        raise WorkloadError(f"workload spec file not found: {path}")
    text = path.read_text(encoding="utf-8")
    if path.suffix == ".toml":
        data = _parse_toml(text, str(path))
    elif path.suffix == ".json":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise WorkloadError(f"{path.name}: invalid JSON: {exc}") from exc
    else:
        raise WorkloadError(
            f"{path.name}: unsupported spec format {path.suffix!r} "
            "(use .toml or .json)"
        )
    return WorkloadSpec.from_dict(data, base_dir=path.parent)


def _parse_toml(text: str, origin: str) -> Dict[str, Any]:
    if tomllib is not None:
        try:
            return tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise WorkloadError(f"{origin}: invalid TOML: {exc}") from exc
    return _parse_toml_minimal(text, origin)


# ----------------------------------------------------------------------
# Minimal TOML-subset parser (Python 3.10 fallback; no tomllib, and the
# no-new-dependencies rule bars a third-party parser).  Covers exactly
# the subset docs/workloads.md's spec format uses: ``[table]`` headers,
# ``key = value`` with string/int/float/boolean values, and (possibly
# nested, possibly multi-line) arrays.
# ----------------------------------------------------------------------
def _strip_comment(line: str) -> str:
    in_string: Optional[str] = None
    for i, ch in enumerate(line):
        if in_string:
            if ch == in_string:
                in_string = None
        elif ch in "\"'":
            in_string = ch
        elif ch == "#":
            return line[:i]
    return line


def _split_top_level(body: str) -> list:
    parts, depth, current = [], 0, []
    for ch in body:
        if ch == "[":
            depth += 1
            current.append(ch)
        elif ch == "]":
            depth -= 1
            current.append(ch)
        elif ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def _parse_scalar(token: str, origin: str, lineno: int) -> Any:
    token = token.strip()
    if len(token) >= 2 and token[0] == token[-1] and token[0] in "\"'":
        return token[1:-1]
    if token == "true":
        return True
    if token == "false":
        return False
    if token.startswith("["):
        if not token.endswith("]"):
            raise WorkloadError(f"{origin}:{lineno}: unterminated array")
        return [
            _parse_scalar(part, origin, lineno)
            for part in _split_top_level(token[1:-1])
        ]
    try:
        if any(c in token for c in ".eE") and not token.startswith("0x"):
            return float(token)
        return int(token)
    except ValueError:
        raise WorkloadError(
            f"{origin}:{lineno}: cannot parse value {token!r}"
        ) from None


def _parse_toml_minimal(text: str, origin: str) -> Dict[str, Any]:
    root: Dict[str, Any] = {}
    table = root
    pending_key: Optional[str] = None
    pending_value: list = []
    pending_line = 0

    def close_pending():
        nonlocal pending_key
        value = " ".join(pending_value).strip()
        table[pending_key] = _parse_scalar(value, origin, pending_line)
        pending_key = None

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw).strip()
        if not line:
            continue
        if pending_key is not None:
            pending_value.append(line)
            joined = " ".join(pending_value)
            if joined.count("[") == joined.count("]"):
                close_pending()
            continue
        if line.startswith("[") and line.endswith("]"):
            header = line[1:-1].strip()
            if not header or "." in header or "[" in header:
                raise WorkloadError(
                    f"{origin}:{lineno}: unsupported table header {line!r} "
                    "(the 3.10 fallback parser supports single-level tables)"
                )
            table = root.setdefault(header, {})
            continue
        if "=" not in line:
            raise WorkloadError(f"{origin}:{lineno}: expected 'key = value'")
        key, _, value = line.partition("=")
        key = key.strip().strip('"').strip("'")
        value = value.strip()
        if value.count("[") != value.count("]"):
            pending_key, pending_value, pending_line = key, [value], lineno
            continue
        table[key] = _parse_scalar(value, origin, lineno)
    if pending_key is not None:
        raise WorkloadError(f"{origin}:{pending_line}: unterminated array")
    return root
