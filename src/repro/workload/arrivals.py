"""Request arrival processes.

Each spec builds a *sampler* whose ``next_interarrival(now)`` returns the
gap to the next request arrival.  The MMPP spec provides the time-varying
load the paper's adaptivity experiments need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.sim.rand import as_batched


class ArrivalSampler:
    """Stateful sampler interface."""

    def next_interarrival(self, now: float) -> float:
        raise NotImplementedError


class ArrivalSpec:
    """Base class for arrival specs."""

    def build(self, rng: np.random.Generator) -> ArrivalSampler:
        raise NotImplementedError

    def mean_rate(self) -> float:
        """Long-run average arrival rate (requests/second)."""
        raise NotImplementedError

    def scaled(self, factor: float) -> "ArrivalSpec":
        """A copy of this spec with the rate multiplied by ``factor``."""
        raise NotImplementedError


# ----------------------------------------------------------------------
# Poisson
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PoissonArrivals(ArrivalSpec):
    """Memoryless arrivals at constant ``rate`` requests/second."""

    rate: float

    def __post_init__(self):
        if self.rate <= 0:
            raise WorkloadError(f"arrival rate must be positive, got {self.rate}")

    def build(self, rng: np.random.Generator) -> ArrivalSampler:
        return _PoissonSampler(self.rate, rng)

    def mean_rate(self) -> float:
        return self.rate

    def scaled(self, factor: float) -> "PoissonArrivals":
        return PoissonArrivals(rate=self.rate * factor)


class _PoissonSampler(ArrivalSampler):
    def __init__(self, rate: float, rng: np.random.Generator):
        self._scale = 1.0 / rate
        self._rng = as_batched(rng)

    def next_interarrival(self, now: float) -> float:
        return self._rng.exponential(self._scale)


# ----------------------------------------------------------------------
# Deterministic
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DeterministicArrivals(ArrivalSpec):
    """Perfectly paced arrivals: one request every ``1/rate`` seconds."""

    rate: float

    def __post_init__(self):
        if self.rate <= 0:
            raise WorkloadError(f"arrival rate must be positive, got {self.rate}")

    def build(self, rng: np.random.Generator) -> ArrivalSampler:
        return _DeterministicSampler(self.rate)

    def mean_rate(self) -> float:
        return self.rate

    def scaled(self, factor: float) -> "DeterministicArrivals":
        return DeterministicArrivals(rate=self.rate * factor)


class _DeterministicSampler(ArrivalSampler):
    def __init__(self, rate: float):
        self._gap = 1.0 / rate

    def next_interarrival(self, now: float) -> float:
        return self._gap


# ----------------------------------------------------------------------
# Markov-modulated Poisson process (time-varying load)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MMPPArrivals(ArrivalSpec):
    """Markov-modulated Poisson arrivals.

    The process dwells in state ``i`` for an Exp(``1/dwell_means[i]``)
    sojourn emitting Poisson arrivals at ``rates[i]``, then moves to the
    next state cyclically.  Two states with rates (low, high) reproduce the
    paper's "time-varying load" scenario.
    """

    rates: Tuple[float, ...]
    dwell_means: Tuple[float, ...]

    def __post_init__(self):
        if len(self.rates) < 2:
            raise WorkloadError("MMPP needs at least two states")
        if len(self.rates) != len(self.dwell_means):
            raise WorkloadError("rates and dwell_means must have equal length")
        if any(r <= 0 for r in self.rates):
            raise WorkloadError("all MMPP rates must be positive")
        if any(d <= 0 for d in self.dwell_means):
            raise WorkloadError("all MMPP dwell means must be positive")

    def build(self, rng: np.random.Generator) -> ArrivalSampler:
        return _MMPPSampler(self.rates, self.dwell_means, rng)

    def mean_rate(self) -> float:
        # Time-average of rates weighted by expected dwell fraction.
        total_dwell = sum(self.dwell_means)
        return sum(r * d for r, d in zip(self.rates, self.dwell_means)) / total_dwell

    def scaled(self, factor: float) -> "MMPPArrivals":
        return MMPPArrivals(
            rates=tuple(r * factor for r in self.rates),
            dwell_means=self.dwell_means,
        )


class _MMPPSampler(ArrivalSampler):
    def __init__(
        self,
        rates: Sequence[float],
        dwell_means: Sequence[float],
        rng: np.random.Generator,
    ):
        self._rates = list(rates)
        self._dwells = list(dwell_means)
        # Batched: every exponential (any scale) serves from one shared
        # standard-exponential lane, so the sequence is bit-identical to
        # the scalar draws even as the state (and scale) changes.
        self._rng = as_batched(rng)
        self._state = 0
        self._state_until = self._rng.exponential(self._dwells[0])

    @property
    def state(self) -> int:
        return self._state

    def next_interarrival(self, now: float) -> float:
        """Sample the next gap, honouring state switches mid-gap.

        Uses the standard thinning-free construction: draw an exponential
        in the current state; if it crosses the state boundary, restart the
        draw from the boundary in the next state (valid by memorylessness).
        """
        t = now
        gap = 0.0
        while True:
            candidate = self._rng.exponential(1.0 / self._rates[self._state])
            if t + candidate <= self._state_until:
                return gap + candidate
            # Advance to the state switch and redraw in the new state.
            gap += self._state_until - t
            t = self._state_until
            self._state = (self._state + 1) % len(self._rates)
            self._state_until = t + self._rng.exponential(self._dwells[self._state])


# ----------------------------------------------------------------------
# Phased (deterministic schedule of Poisson rates)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PhasedArrivals(ArrivalSpec):
    """Poisson arrivals following a deterministic cyclic phase schedule.

    ``phases`` is a sequence of ``(duration, rate)`` pairs; the process
    emits Poisson arrivals at ``rate`` for ``duration`` seconds, then
    moves to the next phase, cycling back to the first after the last.
    Unlike :class:`MMPPArrivals` the phase boundaries are *deterministic*
    (wall-clock, not exponentially distributed), which is what workload
    specs need for warmup ramps and reproducible step loads.
    """

    phases: Tuple[Tuple[float, float], ...]

    def __post_init__(self):
        if not self.phases:
            raise WorkloadError("phased arrivals need at least one phase")
        for i, phase in enumerate(self.phases):
            if len(phase) != 2:
                raise WorkloadError(
                    f"phase {i}: expected (duration, rate), got {phase!r}"
                )
            duration, rate = phase
            if duration <= 0:
                raise WorkloadError(f"phase {i}: duration must be positive")
            if rate <= 0:
                raise WorkloadError(f"phase {i}: rate must be positive")

    def build(self, rng: np.random.Generator) -> ArrivalSampler:
        return _PhasedSampler(self.phases, rng)

    def mean_rate(self) -> float:
        total = sum(d for d, _ in self.phases)
        return sum(d * r for d, r in self.phases) / total

    def scaled(self, factor: float) -> "PhasedArrivals":
        return PhasedArrivals(
            phases=tuple((d, r * factor) for d, r in self.phases)
        )


class _PhasedSampler(ArrivalSampler):
    def __init__(
        self,
        phases: Sequence[Tuple[float, float]],
        rng: np.random.Generator,
    ):
        self._phases = list(phases)
        self._cycle = sum(d for d, _ in self._phases)
        self._rng = as_batched(rng)

    def _phase_at(self, t: float) -> Tuple[float, float]:
        """Return (rate, end-of-phase time) for wall-clock time ``t``."""
        offset = t % self._cycle
        base = t - offset
        elapsed = 0.0
        for duration, rate in self._phases:
            if offset < elapsed + duration:
                return rate, base + elapsed + duration
            elapsed += duration
        # Floating-point edge: t lands exactly on the cycle boundary.
        duration, rate = self._phases[0]
        return rate, base + self._cycle + duration

    def next_interarrival(self, now: float) -> float:
        """Sample the next gap, honouring phase switches mid-gap.

        Same thinning-free construction as the MMPP sampler: draw an
        exponential at the current phase's rate; if it crosses the phase
        boundary, restart the draw from the boundary (memorylessness),
        except here the boundaries are deterministic clock times.
        """
        t = now
        gap = 0.0
        while True:
            rate, until = self._phase_at(t)
            candidate = self._rng.exponential(1.0 / rate)
            if t + candidate <= until:
                return gap + candidate
            gap += until - t
            t = until


# ----------------------------------------------------------------------
# Trace-driven
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TraceArrivals(ArrivalSpec):
    """Replay absolute arrival times from a recorded trace."""

    times: Tuple[float, ...] = field(default_factory=tuple)

    def __post_init__(self):
        if not self.times:
            raise WorkloadError("trace has no arrivals")
        previous = -float("inf")
        for t in self.times:
            if t < previous:
                raise WorkloadError("trace arrival times must be non-decreasing")
            previous = t
        if self.times[0] < 0:
            raise WorkloadError("trace arrival times must be non-negative")

    def build(self, rng: np.random.Generator) -> ArrivalSampler:
        return _TraceSampler(self.times)

    def mean_rate(self) -> float:
        span = self.times[-1] - self.times[0]
        if span <= 0:
            return float("inf")
        return (len(self.times) - 1) / span

    def scaled(self, factor: float) -> "TraceArrivals":
        # Scaling a trace rate by f compresses time by f.
        return TraceArrivals(times=tuple(t / factor for t in self.times))


class _TraceSampler(ArrivalSampler):
    def __init__(self, times: Sequence[float]):
        self._times = list(times)
        self._idx = 0

    def next_interarrival(self, now: float) -> float:
        if self._idx >= len(self._times):
            return float("inf")  # trace exhausted: no more arrivals
        gap = max(0.0, self._times[self._idx] - now)
        self._idx += 1
        return gap


# ----------------------------------------------------------------------
# Sinusoidal (diurnal) modulation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SinusoidalArrivals(ArrivalSpec):
    """Poisson arrivals with a sinusoidally modulated rate (diurnal load).

    Instantaneous rate: ``base_rate * (1 + amplitude * sin(2*pi*t /
    period))``.  Sampled by thinning against the peak rate, so the
    process is an exact non-homogeneous Poisson process.
    """

    base_rate: float
    amplitude: float = 0.5
    period: float = 10.0

    def __post_init__(self):
        if self.base_rate <= 0:
            raise WorkloadError("base_rate must be positive")
        if not 0 <= self.amplitude < 1:
            raise WorkloadError("amplitude must be in [0, 1)")
        if self.period <= 0:
            raise WorkloadError("period must be positive")

    def build(self, rng: np.random.Generator) -> ArrivalSampler:
        return _SinusoidalSampler(self.base_rate, self.amplitude, self.period, rng)

    def mean_rate(self) -> float:
        # The sine term averages to zero over a full period.
        return self.base_rate

    def scaled(self, factor: float) -> "SinusoidalArrivals":
        return SinusoidalArrivals(
            base_rate=self.base_rate * factor,
            amplitude=self.amplitude,
            period=self.period,
        )


class _SinusoidalSampler(ArrivalSampler):
    def __init__(
        self,
        base_rate: float,
        amplitude: float,
        period: float,
        rng: np.random.Generator,
    ):
        self._base = base_rate
        self._amplitude = amplitude
        self._period = period
        self._peak = base_rate * (1.0 + amplitude)
        self._rng = rng

    def _rate_at(self, t: float) -> float:
        import math

        return self._base * (
            1.0 + self._amplitude * math.sin(2.0 * math.pi * t / self._period)
        )

    def next_interarrival(self, now: float) -> float:
        # Ogata thinning: candidate gaps at the peak rate, accepted with
        # probability rate(t)/peak.
        #
        # SCALAR FALLBACK (no BatchedStream): thinning interleaves
        # exponential and uniform draws on one stream, so prefetching
        # either lane would consume the bit stream in a different order
        # than these scalar calls and silently change the sequence.
        t = now
        while True:
            t += float(self._rng.exponential(1.0 / self._peak))
            if self._rng.random() <= self._rate_at(t) / self._peak:
                return t - now
