"""Named traffic patterns used by the evaluation (experiment E6).

Each pattern bundles a fan-out spec, a value-size spec, and a popularity
spec.  The arrival process is supplied separately because the experiment
harness calibrates its rate to a target load.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.workload.fanout import (
    BimodalFanout,
    FanoutSpec,
    FixedFanout,
    GeometricFanout,
    UniformFanout,
)
from repro.workload.popularity import (
    HotspotPopularity,
    PopularitySpec,
    UniformPopularity,
    ZipfPopularity,
)
from repro.workload.sizes import (
    BimodalSize,
    FixedSize,
    LognormalSize,
    ParetoSize,
    SizeSpec,
)


@dataclass(frozen=True)
class TrafficPattern:
    """A named (fanout, size, popularity) bundle."""

    name: str
    description: str
    fanout: FanoutSpec
    sizes: SizeSpec
    popularity: PopularitySpec


TRAFFIC_PATTERNS = {
    "baseline": TrafficPattern(
        name="baseline",
        description=(
            "The default evaluation workload: geometric fan-out (mean 5), "
            "lognormal value sizes, Zipf(0.99) key popularity — the "
            "standard memcached-style mix."
        ),
        fanout=GeometricFanout(mean_target=5.0, cap=64),
        sizes=LognormalSize(median=1024.0, sigma=1.0, cap=1 << 18),
        popularity=ZipfPopularity(s=0.99),
    ),
    "uniform": TrafficPattern(
        name="uniform",
        description="Uniform everything: no skew in keys, sizes, or fan-out.",
        fanout=UniformFanout(lo=1, hi=9),
        sizes=FixedSize(size=1024),
        popularity=UniformPopularity(),
    ),
    "bimodal": TrafficPattern(
        name="bimodal",
        description=(
            "Mostly-small multigets with an occasional very large one — "
            "maximizes head-of-line blocking of small requests."
        ),
        fanout=BimodalFanout(small=2, large=32, p_large=0.1),
        sizes=FixedSize(size=1024),
        popularity=ZipfPopularity(s=0.99),
    ),
    "heavytail": TrafficPattern(
        name="heavytail",
        description=(
            "Pareto value sizes (alpha=1.5): heavy-tailed service demands; "
            "a few huge values dominate server time."
        ),
        fanout=GeometricFanout(mean_target=5.0, cap=64),
        sizes=ParetoSize(lo=256.0, alpha=1.5, cap=1 << 20),
        popularity=ZipfPopularity(s=0.99),
    ),
    "hotspot": TrafficPattern(
        name="hotspot",
        description=(
            "10% of keys receive 90% of accesses; a hotspotted key range "
            "concentrates load on few servers."
        ),
        fanout=GeometricFanout(mean_target=5.0, cap=64),
        sizes=LognormalSize(median=1024.0, sigma=1.0, cap=1 << 18),
        popularity=HotspotPopularity(hot_fraction=0.1, hot_probability=0.9),
    ),
    "large-values": TrafficPattern(
        name="large-values",
        description="Bimodal sizes: 5% of keys hold 256 KiB blobs.",
        fanout=GeometricFanout(mean_target=5.0, cap=64),
        sizes=BimodalSize(small=512, large=262144, p_large=0.05),
        popularity=ZipfPopularity(s=0.99),
    ),
    "single-get": TrafficPattern(
        name="single-get",
        description=(
            "Fan-out 1: degenerates to independent M/G/1 queues; all "
            "multiget-aware schedulers should collapse toward SRPT/FCFS."
        ),
        fanout=FixedFanout(k=1),
        sizes=LognormalSize(median=1024.0, sigma=1.0, cap=1 << 18),
        popularity=ZipfPopularity(s=0.99),
    ),
}


def traffic_pattern(name: str) -> TrafficPattern:
    """Look up a named pattern; raises with the known names on miss."""
    try:
        return TRAFFIC_PATTERNS[name]
    except KeyError:
        known = ", ".join(sorted(TRAFFIC_PATTERNS))
        raise WorkloadError(f"unknown traffic pattern {name!r}; known: {known}") from None
