"""Key popularity distributions.

A popularity spec builds a sampler that draws *distinct* key indices in
``[0, keyspace_size)`` for a multiget.  Zipf is the workhorse (the standard
model for KV-store key skew); hotspot models a small set of very hot keys
over a uniform base.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.sim.rand import as_batched


class PopularitySampler:
    """Draws distinct key indices for a request."""

    def __init__(self, keyspace_size: int, rng: np.random.Generator):
        if keyspace_size < 1:
            raise WorkloadError("keyspace_size must be >= 1")
        self.keyspace_size = keyspace_size
        self._rng = rng

    def sample_one(self) -> int:
        raise NotImplementedError

    def sample_distinct(self, n: int) -> np.ndarray:
        """Draw ``n`` distinct indices (rejection over the marginal law)."""
        if n > self.keyspace_size:
            raise WorkloadError(
                f"cannot draw {n} distinct keys from a keyspace of "
                f"{self.keyspace_size}"
            )
        chosen: list[int] = []
        seen: set[int] = set()
        # Rejection sampling; with realistic skew and fanout << keyspace the
        # expected number of redraws is tiny.
        guard = 0
        limit = 1000 * n + 1000
        while len(chosen) < n:
            idx = self.sample_one()
            if idx not in seen:
                seen.add(idx)
                chosen.append(idx)
            guard += 1
            if guard > limit:
                # Extremely skewed distribution: fill the remainder from
                # the least-popular tail deterministically rather than loop.
                # (Guarded on len < n: filling an already-complete draw
                # would overshoot past the == n check below.)
                if len(chosen) < n:
                    for idx in range(self.keyspace_size):
                        if idx not in seen:
                            seen.add(idx)
                            chosen.append(idx)
                            if len(chosen) == n:
                                break
                break
        return np.asarray(chosen, dtype=np.int64)


class PopularitySpec:
    """Base class for popularity specs."""

    def build(self, keyspace_size: int, rng: np.random.Generator) -> PopularitySampler:
        raise NotImplementedError


@dataclass(frozen=True)
class UniformPopularity(PopularitySpec):
    """Every key equally likely."""

    def build(self, keyspace_size: int, rng: np.random.Generator) -> PopularitySampler:
        return _UniformSampler(keyspace_size, rng)


class _UniformSampler(PopularitySampler):
    # SCALAR FALLBACK (no BatchedStream): sample_distinct delegates to
    # numpy's without-replacement ``choice``, whose bit-stream consumption
    # has no scalar-loop equivalent to stay identical to.
    def sample_one(self) -> int:
        return int(self._rng.integers(0, self.keyspace_size))

    def sample_distinct(self, n: int) -> np.ndarray:
        if n > self.keyspace_size:
            raise WorkloadError(
                f"cannot draw {n} distinct keys from a keyspace of "
                f"{self.keyspace_size}"
            )
        return self._rng.choice(self.keyspace_size, size=n, replace=False)


@dataclass(frozen=True)
class ZipfPopularity(PopularitySpec):
    """Zipfian popularity: P(key rank i) proportional to 1/i^s.

    ``s = 0.99`` is the YCSB default and the skew most KV-store papers use.
    Key ranks are shuffled onto key indices so popular keys spread across
    the ring instead of clustering.
    """

    s: float = 0.99
    shuffle: bool = True

    def __post_init__(self):
        if self.s < 0:
            raise WorkloadError(f"zipf exponent must be >= 0, got {self.s}")

    def build(self, keyspace_size: int, rng: np.random.Generator) -> PopularitySampler:
        return _ZipfSampler(keyspace_size, rng, self.s, self.shuffle)


class _ZipfSampler(PopularitySampler):
    def __init__(
        self, keyspace_size: int, rng: np.random.Generator, s: float, shuffle: bool
    ):
        super().__init__(keyspace_size, rng)
        ranks = np.arange(1, keyspace_size + 1, dtype=np.float64)
        weights = ranks ** (-s)
        self._cum = np.cumsum(weights / weights.sum())
        self._cum[-1] = 1.0  # guard against floating-point shortfall
        if shuffle:
            # One-time permutation on the raw generator, *before* the
            # batched wrapper prefetches anything from the stream.
            self._perm = rng.permutation(keyspace_size)
        else:
            self._perm = np.arange(keyspace_size)
        self._bstream = as_batched(rng)

    def sample_one(self) -> int:
        u = self._bstream.random()
        rank = int(np.searchsorted(self._cum, u, side="left"))
        return int(self._perm[min(rank, self.keyspace_size - 1)])

    def sample_distinct(self, n: int) -> np.ndarray:
        """Vectorized rejection sampling, draw-for-draw equal to the base.

        Each round draws exactly as many uniforms as keys still missing
        (capped by the remaining rejection budget), maps them through one
        ``searchsorted``, and accepts new indices in draw order — the
        uniform consumption, acceptance decisions, and tail-fill fallback
        are identical to the scalar loop in
        :meth:`PopularitySampler.sample_distinct`.
        """
        if n > self.keyspace_size:
            raise WorkloadError(
                f"cannot draw {n} distinct keys from a keyspace of "
                f"{self.keyspace_size}"
            )
        chosen: list[int] = []
        seen: set[int] = set()
        guard = 0
        limit = 1000 * n + 1000
        last = self.keyspace_size - 1
        while len(chosen) < n:
            take = min(n - len(chosen), limit - guard + 1)
            us = self._bstream.random_block(take)
            ranks = np.searchsorted(self._cum, us, side="left")
            np.minimum(ranks, last, out=ranks)
            for idx in self._perm[ranks]:
                idx = int(idx)
                if idx not in seen:
                    seen.add(idx)
                    chosen.append(idx)
            guard += take
            if guard > limit and len(chosen) < n:
                # Extremely skewed distribution: fill the remainder from
                # the least-popular tail deterministically (same fallback
                # as the scalar path).
                for idx in range(self.keyspace_size):
                    if idx not in seen:
                        seen.add(idx)
                        chosen.append(idx)
                        if len(chosen) == n:
                            break
                break
        return np.asarray(chosen, dtype=np.int64)


@dataclass(frozen=True)
class PartitionedPopularity(PopularitySpec):
    """One tenant's slice of a partitioned keyspace.

    Multi-tenant key spaces: the keyspace is split into ``tenants``
    contiguous equal slices and this spec confines an ``inner``
    popularity law to slice ``tenant`` (inner indices are drawn over the
    slice span and offset into place).  Tenants therefore never share
    keys — the fleet-scale X5 setting where no single client's traffic
    covers the whole fleet.
    """

    inner: PopularitySpec
    tenant: int
    tenants: int

    def __post_init__(self):
        if self.tenants < 1:
            raise WorkloadError(f"tenants must be >= 1, got {self.tenants}")
        if not 0 <= self.tenant < self.tenants:
            raise WorkloadError(
                f"tenant must be in [0, {self.tenants}), got {self.tenant}"
            )

    def build(self, keyspace_size: int, rng: np.random.Generator) -> PopularitySampler:
        span = keyspace_size // self.tenants
        if span < 1:
            raise WorkloadError(
                f"keyspace of {keyspace_size} cannot be split into "
                f"{self.tenants} tenant slices"
            )
        return _PartitionedSampler(
            keyspace_size, rng, self.inner.build(span, rng), self.tenant * span
        )


class _PartitionedSampler(PopularitySampler):
    """Offsets an inner sampler's draws into this tenant's slice."""

    def __init__(
        self,
        keyspace_size: int,
        rng: np.random.Generator,
        inner: PopularitySampler,
        offset: int,
    ):
        super().__init__(keyspace_size, rng)
        self._inner = inner
        self._offset = offset

    def sample_one(self) -> int:
        return self._offset + self._inner.sample_one()

    def sample_distinct(self, n: int) -> np.ndarray:
        # Distinctness within the slice is distinctness globally (slices
        # are disjoint), so the inner draw carries the whole guarantee.
        return self._inner.sample_distinct(n) + self._offset


@dataclass(frozen=True)
class HotspotPopularity(PopularitySpec):
    """A ``hot_fraction`` of keys receives ``hot_probability`` of accesses.

    The classic YCSB "hotspot" distribution: uniform within each of the hot
    and cold regions.
    """

    hot_fraction: float = 0.1
    hot_probability: float = 0.9

    def __post_init__(self):
        if not 0 < self.hot_fraction < 1:
            raise WorkloadError("hot_fraction must be in (0, 1)")
        if not 0 < self.hot_probability < 1:
            raise WorkloadError("hot_probability must be in (0, 1)")

    def build(self, keyspace_size: int, rng: np.random.Generator) -> PopularitySampler:
        return _HotspotSampler(
            keyspace_size, rng, self.hot_fraction, self.hot_probability
        )


class _HotspotSampler(PopularitySampler):
    def __init__(
        self,
        keyspace_size: int,
        rng: np.random.Generator,
        hot_fraction: float,
        hot_probability: float,
    ):
        super().__init__(keyspace_size, rng)
        self._hot_count = max(1, int(round(keyspace_size * hot_fraction)))
        if self._hot_count >= keyspace_size:
            raise WorkloadError("hot region covers the whole keyspace")
        self._hot_probability = hot_probability
        # Spread the hot region across key indices.
        self._perm = rng.permutation(keyspace_size)

    def sample_one(self) -> int:
        # SCALAR FALLBACK (no BatchedStream): each draw interleaves a
        # uniform with one of two differently-bounded integer draws on one
        # stream; per-lane prefetching would consume the bit stream in a
        # different order than these scalar calls and change the sequence.
        if self._rng.random() < self._hot_probability:
            raw = int(self._rng.integers(0, self._hot_count))
        else:
            raw = int(self._rng.integers(self._hot_count, self.keyspace_size))
        return int(self._perm[raw])
