"""The simulation environment: virtual clock plus event loop.

Since the event-core rework the pending-event set lives behind a
swappable backend (:mod:`repro.sim.eventcore`): the default ``array``
backend is a calendar-queue over preallocated numpy slot storage, and
``heap`` is the original binary-heap engine kept as the bit-identity
oracle and escape hatch.  Both implement the same ``(time, priority,
seq)`` total order, so runs are trace-identical across backends; select
with ``Environment(engine=...)`` or ``$REPRO_ENGINE``.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Generator, Optional, Union

from repro.sim.eventcore import NORMAL, URGENT, make_event_core, resolve_engine
from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    Process,
    StopSimulation,
    Timeout,
)

__all__ = [
    "URGENT",
    "NORMAL",
    "EmptySchedule",
    "Environment",
]


class EmptySchedule(Exception):
    """Raised internally when the event queue runs dry."""


class Environment:
    """Execution environment for a discrete-event simulation.

    Time is a float starting at ``initial_time`` and only moves forward.
    Events scheduled for the same instant run in FIFO order within the same
    priority class, which makes runs fully deterministic.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock.
    engine:
        Event-core backend: ``"array"`` (calendar queue over numpy slot
        storage, the default) or ``"heap"`` (the original binary heap).
        ``None`` reads ``$REPRO_ENGINE``, falling back to ``"array"``.
        Firing order is bit-identical either way.
    """

    #: Free-list bounds: enough to absorb every in-flight pooled object of
    #: a large cell without pinning unbounded garbage after a burst.
    _TIMEOUT_POOL_MAX = 4096
    _CB_POOL_MAX = 8192

    def __init__(self, initial_time: float = 0.0, engine: Optional[str] = None):
        self._now = float(initial_time)
        self._engine = resolve_engine(engine)
        self._core = make_event_core(self._engine)
        #: Heap fast path: the run loop pushes/pops the heap list directly
        #: (None under the array backend, where the core's calendar is
        #: the hot path instead).
        self._queue: Optional[list[tuple[float, int, int, Event]]] = (
            self._core.entries if self._engine == "heap" else None
        )
        self._core_schedule = self._core.schedule
        self._eid = count()
        self._active_process: Optional[Process] = None
        #: Free lists (see :meth:`pooled_timeout`): recycled Timeout
        #: objects and recycled callback lists.  ``_cb_pool`` must exist
        #: before any Event is constructed — Event.__init__ reads it.
        self._cb_pool: list[list] = []
        self._timeout_pool: list[Timeout] = []
        self.timeout_pool_hits = 0
        self.timeout_pool_misses = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def engine(self) -> str:
        """Name of the event-core backend (``"heap"`` or ``"array"``)."""
        return self._engine

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    @property
    def active_process_generator(self):
        """The running process's generator (SimPy-compat convenience)."""
        proc = self._active_process
        return proc._generator if proc is not None else None

    def core_stats(self) -> dict:
        """The event core's counters (pending, resizes, slot reuse...)."""
        return self._core.stats()

    def __repr__(self) -> str:
        return (
            f"<Environment now={self._now} queued={len(self._core)} "
            f"engine={self._engine}>"
        )

    # ------------------------------------------------------------------
    # Event factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def pooled_timeout(self, delay: float, value: Any = None) -> Timeout:
        """A :class:`Timeout` recycled through a free list after it fires.

        Identical semantics to :meth:`timeout` up to the firing, after
        which the object is returned to the pool and later reused —
        callers must not retain a reference past the callbacks (internal
        hot paths: network delivery, service waits, interarrival gaps, op
        timers).  Wrapping one in :class:`AllOf`/:class:`AnyOf` is safe:
        conditions pin their members.  Event allocation is a measurable
        slice of kernel time (see ``BENCH_engine.json``'s ``sampling``
        section for the hit rate), which is the whole point.
        """
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise ValueError(f"negative delay {delay}")
            self.timeout_pool_hits += 1
            t = pool.pop()
            t._delay = float(delay)
            t._ok = True
            t._value = value
            t.defused = False
            t._recyclable = True
            cb_pool = self._cb_pool
            t.callbacks = cb_pool.pop() if cb_pool else []
            self._schedule(t, delay=t._delay, priority=NORMAL)
            return t
        self.timeout_pool_misses += 1
        t = Timeout(self, delay, value)
        t._recyclable = True
        return t

    def pool_stats(self) -> dict:
        """Free-list counters: hits, misses, and the resulting hit rate."""
        hits, misses = self.timeout_pool_hits, self.timeout_pool_misses
        total = hits + misses
        return {
            "timeout_pool_hits": hits,
            "timeout_pool_misses": misses,
            "timeout_pool_hit_rate": hits / total if total else 0.0,
        }

    def process(self, generator: Generator) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator)

    def all_of(self, events) -> AllOf:
        """Event that fires once all of ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Event that fires once any of ``events`` has succeeded."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # Scheduling and stepping
    # ------------------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = URGENT) -> None:
        """Put a triggered event on the queue ``delay`` from now.

        Callers pass the right priority themselves (:class:`Timeout`
        schedules itself at NORMAL) — this method is the hottest function
        in the simulator and does no classification of its own.
        """
        queue = self._queue
        if queue is not None:
            heapq.heappush(queue, (self._now + delay, priority, next(self._eid), event))
        else:
            self._core_schedule(self._now + delay, priority, next(self._eid), event)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._core.peek_time()

    def step(self) -> None:
        """Process the single next event; advance the clock to it."""
        try:
            when, _, _, event = self._core.pop()
        except IndexError:
            raise EmptySchedule(self._core.empty_message(self._now)) from None
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event.defused:
            # Nobody consumed the failure: surface it rather than losing it.
            exc = event._value
            raise exc
        self._recycle(event, callbacks)

    def _recycle(self, event: Event, callbacks: list) -> None:
        """Return a processed event's dead carcass to the free lists."""
        callbacks.clear()
        if len(self._cb_pool) < self._CB_POOL_MAX:
            self._cb_pool.append(callbacks)
        if (
            type(event) is Timeout
            and event._recyclable
            and len(self._timeout_pool) < self._TIMEOUT_POOL_MAX
        ):
            event._value = None  # drop the payload reference while pooled
            self._timeout_pool.append(event)

    def run(self, until: Union[Event, float, None] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` — run until no events remain.
            a number — run until the clock reaches that time; must be
            finite-or-inf, non-negative, not NaN, and not in the past
            (``ValueError`` otherwise).
            an :class:`Event` — run until that event triggers, returning its
            value (or raising its failure).
        """
        stop_event: Optional[Event] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is None:
                # Already processed: nothing to run.
                if stop_event._ok:
                    return stop_event._value
                stop_event.defused = True
                raise stop_event._value
            stop_event.callbacks.append(_stop_callback)
        else:
            at = float(until)
            if at != at:
                raise ValueError("until must not be NaN")
            if at < 0.0:
                raise ValueError(f"until={at} is negative")
            if at < self._now:
                raise ValueError(f"until={at} is in the past (now={self._now})")
            stop_event = Event(self)
            stop_event._ok = True
            stop_event._value = None
            stop_event.callbacks.append(_stop_callback)
            self._core.schedule(at, URGENT, -1, stop_event)

        try:
            if self._queue is not None:
                self._run_heap()
            else:
                self._run_array()
        except StopSimulation as stop:
            return stop.value
        if stop_event is not None and not stop_event.triggered:
            if isinstance(until, Event):
                raise RuntimeError(
                    "simulation ran out of events before the awaited "
                    f"event {until!r} triggered"
                )
        return None

    def _run_heap(self) -> None:
        """Drain the heap backend until empty or :class:`StopSimulation`."""
        # Inlined event loop (rather than `while True: self.step()`): the
        # loop body runs once per simulated event, so the method-call and
        # attribute-lookup overhead of delegating to step() is measurable
        # (~15% of kernel throughput, see benchmarks/bench_engine.py).
        queue = self._queue
        pop = heapq.heappop
        cb_pool = self._cb_pool
        timeout_pool = self._timeout_pool
        cb_pool_max = self._CB_POOL_MAX
        timeout_pool_max = self._TIMEOUT_POOL_MAX
        while queue:
            when, _, _, event = pop(queue)
            self._now = when
            callbacks = event.callbacks
            event.callbacks = None
            for callback in callbacks:
                callback(event)
            if not event._ok and not event.defused:
                # Nobody consumed the failure: surface it rather than
                # losing it.
                raise event._value
            # Inlined _recycle (same reasoning as inlining the loop).
            callbacks.clear()
            if len(cb_pool) < cb_pool_max:
                cb_pool.append(callbacks)
            if (
                type(event) is Timeout
                and event._recyclable
                and len(timeout_pool) < timeout_pool_max
            ):
                event._value = None
                timeout_pool.append(event)

    def _run_array(self) -> None:
        """Drain the calendar backend until empty or :class:`StopSimulation`.

        Same inlined body as :meth:`_run_heap`; only the pop source
        differs (the core's scalar lane instead of ``heapq``).
        """
        pop = self._core.pop
        cb_pool = self._cb_pool
        timeout_pool = self._timeout_pool
        cb_pool_max = self._CB_POOL_MAX
        timeout_pool_max = self._TIMEOUT_POOL_MAX
        while True:
            try:
                when, _, _, event = pop()
            except IndexError:
                return
            self._now = when
            callbacks = event.callbacks
            event.callbacks = None
            for callback in callbacks:
                callback(event)
            if not event._ok and not event.defused:
                # Nobody consumed the failure: surface it rather than
                # losing it.
                raise event._value
            # Inlined _recycle (same reasoning as inlining the loop).
            callbacks.clear()
            if len(cb_pool) < cb_pool_max:
                cb_pool.append(callbacks)
            if (
                type(event) is Timeout
                and event._recyclable
                and len(timeout_pool) < timeout_pool_max
            ):
                event._value = None
                timeout_pool.append(event)

    def run_until_idle(self) -> None:
        """Drain every remaining event (alias of ``run()`` with no bound)."""
        self.run(until=None)


def _stop_callback(event: Event) -> None:
    if event._ok:
        raise StopSimulation(event._value)
    event.defused = True
    raise event._value
