"""Waitable containers for the simulation kernel.

:class:`Store` is an asynchronous FIFO queue: ``put`` and ``get`` both
return events, so processes block when the store is full or empty.
:class:`PriorityStore` hands out the smallest item first.  :class:`Resource`
models a server with fixed capacity (e.g. a CPU with ``capacity`` cores).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING, Any

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment


class StorePut(Event):
    """Event returned by :meth:`Store.put`; succeeds once the item is in."""

    __slots__ = ("item",)

    def __init__(self, env: "Environment", item: Any):
        super().__init__(env)
        self.item = item


class StoreGet(Event):
    """Event returned by :meth:`Store.get`; succeeds with the item."""

    __slots__ = ()


class Store:
    """FIFO queue with blocking ``put``/``get`` semantics.

    Parameters
    ----------
    env:
        Owning environment.
    capacity:
        Maximum number of stored items; ``inf`` for unbounded (default).
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        # Deques, not lists: put/get consume from the left and a list's
        # pop(0) is O(n) — quadratic once a store backs up.
        self._items: deque[Any] = deque()
        self._put_waiters: deque[StorePut] = deque()
        self._get_waiters: deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> list[Any]:
        """Snapshot of currently stored items (FIFO order)."""
        return list(self._items)

    def put(self, item: Any) -> StorePut:
        """Insert ``item``; the returned event fires when there is room."""
        event = StorePut(self.env, item)
        self._put_waiters.append(event)
        self._dispatch()
        return event

    def get(self) -> StoreGet:
        """Remove and return the next item via the returned event."""
        event = StoreGet(self.env)
        self._get_waiters.append(event)
        self._dispatch()
        return event

    # -- internals ------------------------------------------------------
    def _store_item(self, item: Any) -> None:
        self._items.append(item)

    def _take_item(self) -> Any:
        return self._items.popleft()

    def _dispatch(self) -> None:
        """Match queued puts with free slots, then gets with items."""
        progressed = True
        while progressed:
            progressed = False
            if self._put_waiters and len(self._items) < self.capacity:
                put = self._put_waiters.popleft()
                self._store_item(put.item)
                put.succeed()
                progressed = True
            if self._get_waiters and self._items:
                get = self._get_waiters.popleft()
                get.succeed(self._take_item())
                progressed = True


class PriorityStore(Store):
    """A store that yields the smallest item first.

    Items must be mutually comparable; wrap payloads in ``(priority, seq,
    payload)`` tuples or use :class:`PriorityItem`.
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")):
        super().__init__(env, capacity)
        self._heap: list[Any] = []

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def items(self) -> list[Any]:
        return sorted(self._heap)

    def _store_item(self, item: Any) -> None:
        heapq.heappush(self._heap, item)

    def _take_item(self) -> Any:
        return heapq.heappop(self._heap)

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._put_waiters and len(self._heap) < self.capacity:
                put = self._put_waiters.popleft()
                self._store_item(put.item)
                put.succeed()
                progressed = True
            if self._get_waiters and self._heap:
                get = self._get_waiters.popleft()
                get.succeed(self._take_item())
                progressed = True


class PriorityItem:
    """Orderable wrapper pairing a sortable key with an arbitrary payload."""

    __slots__ = ("key", "payload")

    def __init__(self, key: Any, payload: Any):
        self.key = key
        self.payload = payload

    def __lt__(self, other: "PriorityItem") -> bool:
        return self.key < other.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PriorityItem) and self.key == other.key

    def __repr__(self) -> str:
        return f"PriorityItem(key={self.key!r}, payload={self.payload!r})"


class ResourceRequest(Event):
    """Event returned by :meth:`Resource.request`; fires once granted."""

    __slots__ = ("resource",)

    def __init__(self, env: "Environment", resource: "Resource"):
        super().__init__(env)
        self.resource = resource

    def release(self) -> None:
        """Give the slot back (convenience alias)."""
        self.resource.release(self)


class Resource:
    """A pool of ``capacity`` identical slots granted in FIFO order."""

    def __init__(self, env: "Environment", capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        # Keyed by object identity: release() must be O(1), not an O(n)
        # list scan (requests are unhashable-by-value anyway — they are
        # events, identity is the right notion).
        self._users: dict[int, ResourceRequest] = {}
        self._waiters: deque[ResourceRequest] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiters)

    @property
    def users(self) -> list[ResourceRequest]:
        """Snapshot of the requests currently holding a slot (grant order)."""
        return list(self._users.values())

    def request(self) -> ResourceRequest:
        """Ask for a slot; the returned event fires when granted."""
        req = ResourceRequest(self.env, self)
        if len(self._users) < self.capacity:
            self._users[id(req)] = req
            req.succeed()
        else:
            self._waiters.append(req)
        return req

    def release(self, request: ResourceRequest) -> None:
        """Return a previously granted slot, waking the next waiter."""
        if self._users.pop(id(request), None) is None:
            # Request was still waiting: cancel it instead.
            try:
                self._waiters.remove(request)
            except ValueError:
                raise RuntimeError("release() of a request not held or queued") from None
            return
        if self._waiters and len(self._users) < self.capacity:
            nxt = self._waiters.popleft()
            self._users[id(nxt)] = nxt
            nxt.succeed()


