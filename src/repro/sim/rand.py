"""Seeded random-number streams and the batched-draw sampling layer.

Every stochastic component of an experiment (arrivals, key choice, value
sizes, network jitter, ...) draws from its own independent stream derived
from a single root seed.  Two runs with the same root seed are bit-for-bit
identical, and changing one component's draw count never perturbs another
component's sequence.

:class:`BatchedStream` is the performance layer on top: it prefetches
blocks of draws per (distribution, params) lane and serves scalars from a
cursor, cutting the per-draw cost of ``numpy.random.Generator`` scalar
calls by roughly an order of magnitude.  Batching is only admissible
because it is *bit-identical* to the scalar calls it replaces — see the
class docstring for the exact contract and
``tests/workload/test_batched_equivalence.py`` for the per-distribution
proofs.
"""

from __future__ import annotations

from typing import Dict, Tuple, Union

import numpy as np

#: spawn_key suffix marking child-family derivation.  Outside the 0-255
#: byte range, so a spawned family can never collide with a stream name.
_SPAWN_MARK = 1 << 20


class RandomStreams:
    """A family of independent, named ``numpy.random.Generator`` streams.

    Parameters
    ----------
    root_seed:
        Root of the seed tree.  Streams are derived deterministically from
        ``(root_seed, name)`` so stream identity is stable across runs and
        across creation order.

    Example
    -------
    >>> streams = RandomStreams(42)
    >>> a = streams.stream("arrivals")
    >>> b = streams.stream("keys")
    >>> a is streams.stream("arrivals")
    True
    """

    def __init__(self, root_seed: int = 0):
        if root_seed < 0:
            raise ValueError("root_seed must be non-negative")
        self.root_seed = int(root_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            # Derive child entropy from the name so ordering is irrelevant.
            digest = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
            spawn_key = tuple(int(b) for b in digest)
            seq = np.random.SeedSequence(self.root_seed, spawn_key=spawn_key)
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a child family, e.g. one per simulated client.

        The child's root seed is a full 64-bit ``SeedSequence`` derivation
        of ``(root_seed, name)``.  (Earlier versions derived it from a
        single 31-bit ``integers()`` draw, which made birthday collisions
        between sibling families likely beyond a few tens of thousands of
        spawns; the fix changes the seeds ``spawn`` hands out — see
        ``docs/benchmarking.md`` "Determinism guarantees".)
        """
        spawn_key = tuple(name.encode("utf-8")) + (_SPAWN_MARK,)
        seq = np.random.SeedSequence(self.root_seed, spawn_key=spawn_key)
        child_seed = int(seq.generate_state(1, np.uint64)[0])
        return RandomStreams(child_seed)

    def names(self) -> list[str]:
        """Names of streams created so far (for diagnostics)."""
        return sorted(self._streams)

    def __repr__(self) -> str:
        return f"RandomStreams(root_seed={self.root_seed}, streams={len(self._streams)})"


#: Lane key: distribution tag plus the parameters that select the block.
_LaneKey = Union[str, Tuple]


class BatchedStream:
    """Block-prefetching façade over one ``numpy.random.Generator``.

    Draws are served from prefetched arrays ("lanes"), one lane per
    (distribution, bit-stream-relevant params):

    ========================  =======================================
    method                    lane / block drawn
    ========================  =======================================
    ``random``                ``gen.random(block)``
    ``exponential(scale)``    ``gen.standard_exponential(block)``
                              (scaled on the way out — numpy's scalar
                              ``exponential(scale)`` is exactly
                              ``scale * standard_exponential()``, so
                              one lane serves every scale)
    ``integers(lo, hi)``      ``gen.integers(lo, hi, size=block)``
    ``geometric(p)``          ``gen.geometric(p, size=block)``
    ``lognormal(m, s)``       ``gen.lognormal(m, s, size=block)``
    ========================  =======================================

    **Determinism contract.**  For every supported distribution, numpy
    fills arrays by repeated calls to the same per-element routine the
    scalar path uses, so a batched sequence is bit-identical to the scalar
    sequence from the same generator state (pinned per distribution by
    ``tests/workload/test_batched_equivalence.py``).  What batching *does*
    change is the interleaving of the underlying bit stream **across
    lanes**: a component that alternates distributions (or integer bounds)
    on one stream would consume bits in a different order than its scalar
    version.  Such components must keep scalar draws on the raw generator
    — the sinusoidal arrival sampler and the hotspot popularity sampler do
    exactly that (flagged at their call sites) — or tolerate a new
    sequence.  Components that draw a single distribution per stream (the
    repository norm; see ``RandomStreams``) get batching for free with
    experiment outputs unchanged.

    A generator must be wrapped at most once: two live wrappers over the
    same generator would each prefetch from the shared bit stream and
    interleave unpredictably.  Use :func:`as_batched` at the single
    ownership point of each stream.
    """

    __slots__ = ("gen", "block_size", "_lanes", "blocks_filled")

    def __init__(self, gen: np.random.Generator, block_size: int = 4096):
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self.gen = gen
        self.block_size = block_size
        #: lane key -> [buffer ndarray, cursor]
        self._lanes: Dict[_LaneKey, list] = {}
        self.blocks_filled = 0

    # -- scalar draws ---------------------------------------------------
    def random(self) -> float:
        """Next uniform double in [0, 1)."""
        lane = self._lanes.get("u")
        if lane is None or lane[1] >= lane[0].shape[0]:
            lane = [self.gen.random(self.block_size), 0]
            self._lanes["u"] = lane
            self.blocks_filled += 1
        i = lane[1]
        lane[1] = i + 1
        return lane[0].item(i)

    def exponential(self, scale: float) -> float:
        """Next Exp(scale) draw; all scales share one std-exp lane."""
        lane = self._lanes.get("e")
        if lane is None or lane[1] >= lane[0].shape[0]:
            lane = [self.gen.standard_exponential(self.block_size), 0]
            self._lanes["e"] = lane
            self.blocks_filled += 1
        i = lane[1]
        lane[1] = i + 1
        return scale * lane[0].item(i)

    def integers(self, low: int, high: int) -> int:
        """Next integer in [low, high) — numpy half-open convention."""
        key = ("i", low, high)
        lane = self._lanes.get(key)
        if lane is None or lane[1] >= lane[0].shape[0]:
            lane = [self.gen.integers(low, high, size=self.block_size), 0]
            self._lanes[key] = lane
            self.blocks_filled += 1
        i = lane[1]
        lane[1] = i + 1
        return lane[0].item(i)

    def geometric(self, p: float) -> int:
        """Next Geometric(p) draw on {1, 2, ...}."""
        key = ("g", p)
        lane = self._lanes.get(key)
        if lane is None or lane[1] >= lane[0].shape[0]:
            lane = [self.gen.geometric(p, size=self.block_size), 0]
            self._lanes[key] = lane
            self.blocks_filled += 1
        i = lane[1]
        lane[1] = i + 1
        return lane[0].item(i)

    def lognormal(self, mean: float, sigma: float) -> float:
        """Next LogNormal(mean, sigma) draw.

        Lanes are keyed by (mean, sigma): numpy's array fill is
        bit-identical to the scalar loop, but reconstructing from a
        standard-normal lane (``exp(mean + sigma*z)``) is *not* — the
        vectorized ``exp`` rounds differently — so the parameters stay in
        the lane key rather than being applied on the way out.
        """
        key = ("ln", mean, sigma)
        lane = self._lanes.get(key)
        if lane is None or lane[1] >= lane[0].shape[0]:
            lane = [self.gen.lognormal(mean, sigma, size=self.block_size), 0]
            self._lanes[key] = lane
            self.blocks_filled += 1
        i = lane[1]
        lane[1] = i + 1
        return lane[0].item(i)

    # -- block draws (same lanes, same sequence) ------------------------
    def _take_block(self, key: _LaneKey, n: int, fill) -> np.ndarray:
        """``n`` draws from a lane, exactly as ``n`` scalar calls would."""
        lane = self._lanes.get(key)
        if lane is None:
            lane = [fill(self.block_size), 0]
            self._lanes[key] = lane
            self.blocks_filled += 1
        out = np.empty(n, dtype=lane[0].dtype)
        filled = 0
        while filled < n:
            buf, cur = lane
            if cur >= buf.shape[0]:
                lane[0] = buf = fill(self.block_size)
                lane[1] = cur = 0
                self.blocks_filled += 1
            take = min(n - filled, buf.shape[0] - cur)
            out[filled : filled + take] = buf[cur : cur + take]
            lane[1] = cur + take
            filled += take
        return out

    def random_block(self, n: int) -> np.ndarray:
        """``n`` uniforms, identical to ``n`` successive :meth:`random`."""
        return self._take_block("u", n, lambda b: self.gen.random(b))

    def exponential_block(self, scale: float, n: int) -> np.ndarray:
        """``n`` Exp(scale) draws from the shared std-exp lane."""
        return scale * self._take_block(
            "e", n, lambda b: self.gen.standard_exponential(b)
        )

    def integers_block(self, low: int, high: int, n: int) -> np.ndarray:
        """``n`` integers in [low, high)."""
        return self._take_block(
            ("i", low, high), n, lambda b: self.gen.integers(low, high, size=b)
        )

    def geometric_block(self, p: float, n: int) -> np.ndarray:
        """``n`` Geometric(p) draws."""
        return self._take_block(
            ("g", p), n, lambda b: self.gen.geometric(p, size=b)
        )

    def lognormal_block(self, mean: float, sigma: float, n: int) -> np.ndarray:
        """``n`` LogNormal(mean, sigma) draws."""
        return self._take_block(
            ("ln", mean, sigma), n, lambda b: self.gen.lognormal(mean, sigma, size=b)
        )

    def __repr__(self) -> str:
        return (
            f"BatchedStream(block={self.block_size}, lanes={len(self._lanes)}, "
            f"blocks_filled={self.blocks_filled})"
        )


def as_batched(
    rng: Union[np.random.Generator, BatchedStream], block_size: int = 4096
) -> BatchedStream:
    """Wrap ``rng`` in a :class:`BatchedStream` (idempotent).

    The caller must be the stream's sole consumer from this point on — see
    the :class:`BatchedStream` single-wrapper rule.
    """
    if isinstance(rng, BatchedStream):
        return rng
    return BatchedStream(rng, block_size=block_size)
