"""Seeded random-number streams.

Every stochastic component of an experiment (arrivals, key choice, value
sizes, network jitter, ...) draws from its own independent stream derived
from a single root seed.  Two runs with the same root seed are bit-for-bit
identical, and changing one component's draw count never perturbs another
component's sequence.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


class RandomStreams:
    """A family of independent, named ``numpy.random.Generator`` streams.

    Parameters
    ----------
    root_seed:
        Root of the seed tree.  Streams are derived deterministically from
        ``(root_seed, name)`` so stream identity is stable across runs and
        across creation order.

    Example
    -------
    >>> streams = RandomStreams(42)
    >>> a = streams.stream("arrivals")
    >>> b = streams.stream("keys")
    >>> a is streams.stream("arrivals")
    True
    """

    def __init__(self, root_seed: int = 0):
        if root_seed < 0:
            raise ValueError("root_seed must be non-negative")
        self.root_seed = int(root_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            # Derive child entropy from the name so ordering is irrelevant.
            digest = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
            spawn_key = tuple(int(b) for b in digest)
            seq = np.random.SeedSequence(self.root_seed, spawn_key=spawn_key)
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a child family, e.g. one per simulated client."""
        child_seed = int(self.stream(f"__spawn__/{name}").integers(0, 2**31 - 1))
        return RandomStreams(child_seed)

    def names(self) -> list[str]:
        """Names of streams created so far (for diagnostics)."""
        return sorted(self._streams)

    def __repr__(self) -> str:
        return f"RandomStreams(root_seed={self.root_seed}, streams={len(self._streams)})"
