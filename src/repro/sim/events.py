"""Event primitives for the simulation kernel.

This module is the bottom of the simulator stack (`docs/architecture.md`
§1): every simulated occurrence — a request arrival, a service completion,
a network delivery — is an :class:`Event` scheduled on the
:class:`~repro.sim.core.Environment` heap, so its cost bounds how many
operations per second the experiment harness can simulate
(``benchmarks/bench_engine.py`` tracks the number).  Event classes
declare ``__slots__``: millions are created per run and the per-instance
``__dict__`` they would otherwise carry dominates allocation cost.

Events are one-shot: they start *pending*, become *triggered* exactly once
(either succeeding with a value or failing with an exception), and are then
*processed* by the environment, which runs their callbacks.  Processes are
themselves events that trigger when their generator terminates, so processes
can wait on other processes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable, Optional

from repro.sim.eventcore import NORMAL, URGENT  # noqa: F401  (re-exported)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.core import Environment

#: Sentinel for "this event has not been given a value yet".
PENDING = object()


class StopSimulation(Exception):
    """Raised inside the event loop to end :meth:`Environment.run` early."""

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The interrupting party supplies a ``cause`` that the interrupted process
    can inspect to decide how to react (e.g. a server noticing its current
    operation was cancelled).
    """

    @property
    def cause(self) -> Any:
        """Whatever :meth:`Process.interrupt` was called with."""
        return self.args[0]


class Event:
    """A one-shot occurrence that processes can wait for.

    Parameters
    ----------
    env:
        The environment this event belongs to.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "defused")

    def __init__(self, env: "Environment"):
        self.env = env
        # Callback lists are recycled by the environment after processing
        # (every event allocates one and drops it within a few events of
        # its creation — a textbook free-list case).
        cb_pool = env._cb_pool
        self.callbacks: Optional[list[Callable[["Event"], None]]] = (
            cb_pool.pop() if cb_pool else []
        )
        self._value: Any = PENDING
        self._ok: bool = True
        #: Set to True once a process (or ``run(until=...)``) consumed a
        #: failure, so unhandled failures can be detected.
        self.defused: bool = False

    def __repr__(self) -> str:
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"

    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not be processed yet)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the environment has run this event's callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        if not self.triggered:
            raise RuntimeError("event is not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event succeeded with (or its failure exception)."""
        if self._value is PENDING:
            raise RuntimeError("event is not yet triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with a failure.

        Waiting processes will have ``exception`` raised at their ``yield``.
        """
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self


class Timeout(Event):
    """An event that fires ``delay`` time units after its creation.

    Timeouts created via :meth:`Environment.pooled_timeout` are marked
    recyclable: the environment returns them to a free list right after
    their callbacks run (timeouts are single-shot, so the object is dead
    at that point) and hands the same object out again later.  Holding a
    reference to a recyclable timeout past its firing is therefore
    undefined; the plain :meth:`Environment.timeout` factory never
    recycles.
    """

    __slots__ = ("_delay", "_recyclable")

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self._delay = float(delay)
        self._ok = True
        self._value = value
        self._recyclable = False
        env._schedule(self, delay=self._delay, priority=NORMAL)

    @property
    def delay(self) -> float:
        """The delay this timeout was scheduled with."""
        return self._delay


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env._schedule(self, priority=URGENT)


class Process(Event):
    """Wraps a generator into a simulation process.

    The process is itself an event: it triggers when the generator returns
    (succeeding with the return value) or raises (failing with the
    exception).
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = Initialize(env, self)

    def __repr__(self) -> str:
        name = getattr(self._generator, "__name__", str(self._generator))
        return f"<Process {name} at {id(self):#x}>"

    @property
    def is_alive(self) -> bool:
        """True while the wrapped generator has not terminated."""
        return not self.triggered

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on (if any)."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        if self._generator is self.env.active_process_generator:
            raise RuntimeError("a process is not allowed to interrupt itself")
        # Deliver the interrupt through a failed event scheduled immediately,
        # so interrupts respect event ordering.
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event.defused = True
        event.callbacks.append(self._resume)
        self.env._schedule(event, priority=URGENT)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the value (or error) of ``event``."""
        env = self.env
        env._active_process = self
        while True:
            # Detach from the event that woke us.
            if self._target is not None and self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._resume)
                except ValueError:
                    pass
            self._target = None
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event.defused = True
                    next_event = self._generator.throw(event._value)
            except StopIteration as exc:
                env._active_process = None
                self._ok = True
                self._value = exc.value
                env._schedule(self)
                return
            except BaseException as exc:
                env._active_process = None
                self._ok = False
                self._value = exc
                env._schedule(self)
                return

            if not isinstance(next_event, Event):
                env._active_process = None
                error = RuntimeError(
                    f"process {self!r} yielded a non-event: {next_event!r}"
                )
                self._generator.throw(error)
                return

            if next_event.callbacks is not None:
                # Event still pending or triggered-but-unprocessed: register
                # and go to sleep.
                self._target = next_event
                next_event.callbacks.append(self._resume)
                env._active_process = None
                return

            # The event was already processed: continue synchronously with
            # its stored value.
            event = next_event
            if not event._ok and not event.defused:
                event.defused = True


class Condition(Event):
    """Base class for composite events (:class:`AllOf` / :class:`AnyOf`)."""

    __slots__ = ("_events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        for event in self._events:
            if event.env is not env:
                raise ValueError("cannot mix events from different environments")
        for event in self._events:
            # Pin pooled timeouts: _collect reads member values after they
            # are processed, so a recycled (reused) member would corrupt
            # the condition's result.
            if isinstance(event, Timeout):
                event._recyclable = False
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)
        if not self._events and not self.triggered:
            # Vacuously satisfied.
            self.succeed(self._collect())

    @property
    def events(self) -> list[Event]:
        """The events this condition waits on (copy)."""
        return list(self._events)

    def _collect(self) -> dict[Event, Any]:
        return {e: e._value for e in self._events if e.triggered and e._ok}

    def _satisfied(self, count: int, total: int) -> bool:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event.defused = True
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._satisfied(self._count, len(self._events)):
            self.succeed(self._collect())


class AllOf(Condition):
    """Triggers when every component event has succeeded."""

    __slots__ = ()

    def _satisfied(self, count: int, total: int) -> bool:
        return count == total


class AnyOf(Condition):
    """Triggers when at least one component event has succeeded."""

    __slots__ = ()

    def _satisfied(self, count: int, total: int) -> bool:
        return count >= 1
