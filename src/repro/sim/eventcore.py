"""Array-based event cores: the pending-event set behind the environment.

This module is the new bottom of the simulator stack.  An *event core*
owns the set of scheduled-but-not-yet-fired events and answers exactly
two hot questions: "here is an event for time ``t``" (:meth:`schedule`)
and "what fires next?" (:meth:`pop`).  Everything above it —
:class:`~repro.sim.core.Environment`, :class:`~repro.sim.events.Event`,
processes, stores — is unchanged; the core is swappable via the
``REPRO_ENGINE`` environment variable (``heap`` or ``array``) or the
``engine=`` argument of :class:`~repro.sim.core.Environment`.

Both cores implement the same total order — ``(time, priority, seq)``
lexicographically, ``seq`` breaking ties by insertion order — so a run
under either backend fires events **bit-identically** (determinism
guarantee #7 in ``docs/benchmarking.md``; pinned by
``tests/sim/test_eventcore.py`` and the full-cell trace-equality tests
in ``tests/experiments/test_engine_backends.py``).

:class:`HeapEventCore` is the reference implementation: the PR-3 binary
heap of ``(time, priority, seq, payload)`` tuples, unchanged.

:class:`ArrayEventCore` is the performance implementation, two lanes
over one calendar-queue index:

* **Scalar lane** (what the :class:`Environment` facade uses): events
  are radix-bucketed by ``floor(time / bucket_width)`` into plain
  Python buckets of key tuples.  A bucket is sorted **lazily** — once,
  with the C ``list.sort``, when the clock reaches it — and drained
  from a reversed run list, so the steady-state cost per event is one
  append plus one pop instead of a ``heapq`` sift.  Events that land
  at or before the loaded run (same-instant cascades: ``succeed``,
  interrupts, zero timeouts) go to a small *overlay* heap that is
  head-merged with the run, which keeps insert-during-drain exact
  without re-sorting.
* **Bulk lane** (:meth:`schedule_many` / :meth:`pop_many`): events live
  as *slots* in preallocated numpy structured-array columns
  (``time`` / ``prio`` / ``seq`` / ``kind``; the slot id doubles as the
  payload index into a parallel payload table).  Slots are recycled
  through a free list (the array-side analogue of the PR-4 ``Timeout``
  pool) and the arrays grow geometrically.  Scheduling, bucket
  partition, intra-bucket ordering (``numpy.lexsort``) and draining are
  all vectorized, which is what takes the core past the 5M events/s
  target in ``benchmarks/bench_engine.py`` — per-object heap entries
  cannot get there in CPython.

The calendar index self-tunes: a bucket whose scalar population exceeds
``split_threshold`` triggers a width shrink, chronically near-empty
buckets trigger a width growth, and events beyond the bucketed horizon
wait in an overflow area that is re-bucketed (with a fresh width
estimate) when the clock reaches it.  Every re-bucket is counted in
``stats()["bucket_resizes"]``.
"""

from __future__ import annotations

import math
import os
from heapq import heappop, heappush
from typing import Any, Iterator, Optional

import numpy as np

__all__ = [
    "URGENT",
    "NORMAL",
    "KIND_IMMEDIATE",
    "KIND_TIMEOUT",
    "KIND_STOP",
    "EVENT_DTYPE",
    "ENGINE_ENV_VAR",
    "DEFAULT_ENGINE",
    "ENGINES",
    "resolve_engine",
    "make_event_core",
    "HeapEventCore",
    "ArrayEventCore",
]

#: Scheduling priorities.  URGENT is used for already-triggered events
#: (succeed/fail/interrupt) so they run before timeouts scheduled for
#: the same instant; NORMAL is used for timeouts.  These historically
#: lived in :mod:`repro.sim.events`, which still re-exports them.
URGENT = 0
NORMAL = 1

#: Event-kind codes for the structured array's ``kind`` column.  The
#: scalar facade does not classify (it would cost an isinstance per
#: event); bulk callers tag their batches so dumps are readable.
KIND_IMMEDIATE = 0
KIND_TIMEOUT = 1
KIND_STOP = 2

#: Column layout of the preallocated event store.  The slot id is the
#: payload index: ``payload_table[slot]`` holds the Python-side payload
#: for the row, so no object pointer lives inside the numpy array.
EVENT_DTYPE = np.dtype(
    [("time", "f8"), ("prio", "i4"), ("seq", "i8"), ("kind", "i2")]
)

ENGINE_ENV_VAR = "REPRO_ENGINE"
DEFAULT_ENGINE = "array"
ENGINES = ("heap", "array")


def resolve_engine(engine: Optional[str] = None) -> str:
    """Resolve the backend name: explicit arg > ``REPRO_ENGINE`` > default."""
    name = engine if engine is not None else os.environ.get(ENGINE_ENV_VAR)
    if name is None or name == "":
        name = DEFAULT_ENGINE
    if name not in ENGINES:
        raise ValueError(
            f"unknown event-core engine {name!r}; expected one of {ENGINES} "
            f"(set via the engine= argument or ${ENGINE_ENV_VAR})"
        )
    return name


def make_event_core(engine: Optional[str] = None):
    """Build the event core selected by ``engine`` / ``$REPRO_ENGINE``."""
    name = resolve_engine(engine)
    return HeapEventCore() if name == "heap" else ArrayEventCore()


class HeapEventCore:
    """Reference pending-set: a binary heap of ``(time, prio, seq, payload)``.

    This is the PR-3 implementation factored out of the environment.  It
    exists as the bit-identity oracle for :class:`ArrayEventCore` and as
    an escape hatch (``REPRO_ENGINE=heap``); the environment still
    inlines ``heappush``/``heappop`` against :attr:`entries` on its hot
    path, so selecting this backend reproduces the old engine exactly.
    """

    __slots__ = ("entries",)

    name = "heap"

    def __init__(self):
        #: The live heap list.  Exposed so the Environment's inlined
        #: loop can push/pop without a method call per event.
        self.entries: list[tuple] = []

    def __len__(self) -> int:
        return len(self.entries)

    def schedule(self, time: float, prio: int, seq: int, payload: Any) -> None:
        """Add one pending event."""
        heappush(self.entries, (time, prio, seq, payload))

    def pop(self) -> tuple:
        """Remove and return the next ``(time, prio, seq, payload)``.

        Raises ``IndexError`` when empty (like ``list.pop``).
        """
        return heappop(self.entries)

    def peek_time(self) -> float:
        """Time of the next event, or ``inf`` when empty."""
        return self.entries[0][0] if self.entries else math.inf

    def stats(self) -> dict:
        """Introspection counters (schema shared with the array core)."""
        return {
            "backend": "heap",
            "pending": len(self.entries),
            "bucket_resizes": 0,
            "slot_reuse_hits": 0,
            "slot_reuse_misses": 0,
            "slot_reuse_hit_rate": 0.0,
        }

    def empty_message(self, now: float) -> str:
        """Describe the pending-set state for :class:`EmptySchedule`."""
        return (
            f"event core is empty: 0 pending events at now={now} "
            "(backend=heap)"
        )


class ArrayEventCore:
    """Calendar-queue pending-set over preallocated numpy slot storage.

    Parameters
    ----------
    capacity:
        Initial slot count of the structured-array store (grows ×2).
    bucket_width:
        Initial calendar bucket width in simulated time units.  The
        width self-tunes (see module docstring); the starting value only
        matters for the first few thousand events.
    nbuckets:
        Bucketed horizon: events later than ``nbuckets`` buckets past
        the current base wait in the overflow area until the calendar
        advances (classic calendar-queue "next year" handling, without
        the modulo wraparound).
    split_threshold:
        Scalar-tuple population above which a bucket triggers a width
        shrink instead of being sorted wholesale.
    """

    __slots__ = (
        "_time", "_prio", "_seq", "_kind", "_payload",
        "_free", "_free_top", "_next_fresh",
        "_buckets", "_idheap", "_inv_width", "_width", "_nbuckets",
        "_horizon_base", "_horizon_time",
        "_run", "_run_max", "_overlay",
        "_crun_time", "_crun_prio", "_crun_seq", "_crun_slots", "_crun_pos",
        "_overflow_tuples", "_overflow_chunks",
        "_len", "_split_threshold", "_widen_floor",
        "_occ_ewma", "_loads", "_resizes", "_grows",
        "_slot_hits", "_slot_misses", "_bulk_payloads_used",
    )

    name = "array"

    _WIDEN_CHECK_EVERY = 64

    #: Pending-set size below which scalar schedules go straight to the
    #: overlay heap: a ~6-deep binary heap beats bucket bookkeeping, and
    #: small sims (the M/M/1 validation runs, unit tests) never touch
    #: the calendar at all.  Order stays exact because pop() merges the
    #: overlay against loaded buckets by tuple comparison.
    _SMALL_HEAP_MAX = 64

    def __init__(
        self,
        capacity: int = 4096,
        bucket_width: float = 1.0,
        nbuckets: int = 4096,
        split_threshold: int = 4096,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if not (bucket_width > 0.0 and math.isfinite(bucket_width)):
            raise ValueError("bucket_width must be positive and finite")
        if nbuckets < 2:
            raise ValueError("nbuckets must be >= 2")
        if split_threshold < 8:
            raise ValueError("split_threshold must be >= 8")
        # Slot store: one structured array, column views cached because
        # ``arr["time"]`` builds a new view object per access.
        store = np.zeros(capacity, EVENT_DTYPE)
        self._time = store["time"]
        self._prio = store["prio"]
        self._seq = store["seq"]
        self._kind = store["kind"]
        self._payload: list[Any] = [None] * capacity
        # Free list as a numpy stack: bulk alloc/free are slice ops.
        self._free = np.empty(capacity, dtype=np.int64)
        self._free_top = 0
        self._next_fresh = 0
        # Calendar index.
        self._buckets: dict[int, list] = {}
        self._idheap: list[int] = []
        self._width = float(bucket_width)
        self._inv_width = 1.0 / float(bucket_width)
        self._nbuckets = int(nbuckets)
        self._horizon_base = 0
        self._horizon_time = nbuckets * float(bucket_width)
        # Active run (the loaded, sorted bucket) in one of two forms:
        # a reversed tuple list (scalar) or columnar arrays (bulk).
        self._run: list[tuple] = []
        self._run_max = -math.inf
        self._overlay: list[tuple] = []
        self._crun_time: Optional[np.ndarray] = None
        self._crun_prio: Optional[np.ndarray] = None
        self._crun_seq: Optional[np.ndarray] = None
        self._crun_slots: Optional[np.ndarray] = None
        self._crun_pos = 0
        # Overflow area beyond the bucketed horizon.
        self._overflow_tuples: list[tuple] = []
        self._overflow_chunks: list[np.ndarray] = []
        self._len = 0
        self._split_threshold = int(split_threshold)
        self._widen_floor = max(4, split_threshold // 1024)
        self._occ_ewma = 0.0
        self._loads = 0
        self._resizes = 0
        self._grows = 0
        self._slot_hits = 0
        self._slot_misses = 0
        self._bulk_payloads_used = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._len

    def __repr__(self) -> str:
        return (
            f"<ArrayEventCore pending={self._len} width={self._width:g} "
            f"buckets={len(self._buckets)} capacity={self._time.shape[0]}>"
        )

    @property
    def capacity(self) -> int:
        """Current slot capacity of the structured-array store."""
        return int(self._time.shape[0])

    @property
    def bucket_width(self) -> float:
        """Current calendar bucket width (self-tuned)."""
        return self._width

    def stats(self) -> dict:
        """Counters: calendar resizes, slot reuse, growth, occupancy."""
        allocs = self._slot_hits + self._slot_misses
        return {
            "backend": "array",
            "pending": self._len,
            "capacity": self.capacity,
            "bucket_width": self._width,
            "buckets": len(self._buckets),
            "overflow": len(self._overflow_tuples)
            + sum(int(c.shape[0]) for c in self._overflow_chunks),
            "bucket_resizes": self._resizes,
            "array_grows": self._grows,
            "slot_reuse_hits": self._slot_hits,
            "slot_reuse_misses": self._slot_misses,
            "slot_reuse_hit_rate": self._slot_hits / allocs if allocs else 0.0,
        }

    def empty_message(self, now: float) -> str:
        """Describe the pending-set state for :class:`EmptySchedule`."""
        return (
            f"event core is empty: 0 pending events at now={now} "
            f"(backend=array, bucket_width={self._width:g}, "
            f"capacity={self.capacity}, bucket_resizes={self._resizes})"
        )

    # ------------------------------------------------------------------
    # Scalar lane
    # ------------------------------------------------------------------
    def schedule(self, time: float, prio: int, seq: int, payload: Any) -> None:
        """Add one pending event at ``time``.

        Hot path: one key-tuple append into the calendar.  Events at or
        before the loaded run's horizon (``time <= run_max``) go to the
        overlay heap so insert-during-drain keeps the exact
        ``(time, prio, seq)`` order without re-sorting the run; tiny
        pending sets (``<= _SMALL_HEAP_MAX``) go there too, because at
        that size a binary heap beats bucket bookkeeping and :meth:`pop`
        merges the overlay against the calendar exactly either way.
        """
        if time != time:  # NaN has no place in a total order
            raise ValueError("cannot schedule an event at time NaN")
        self._len += 1
        entry = (time, prio, seq, payload)
        if time <= self._run_max or self._len <= self._SMALL_HEAP_MAX:
            heappush(self._overlay, entry)
            return
        if time >= self._horizon_time:
            self._overflow_tuples.append(entry)
            return
        bid = math.floor(time * self._inv_width)
        bucket = self._buckets.get(bid)
        if bucket is None:
            self._buckets[bid] = [entry]
            heappush(self._idheap, bid)
        else:
            bucket.append(entry)

    def pop(self) -> tuple:
        """Remove and return the next ``(time, prio, seq, payload)``.

        Raises ``IndexError`` when empty.
        """
        run = self._run
        if run:
            overlay = self._overlay
            if overlay and overlay[0] < run[-1]:
                self._len -= 1
                return heappop(overlay)
            self._len -= 1
            return run.pop()
        overlay = self._overlay
        if overlay and not self._idheap and self._crun_slots is None:
            # Small-N heap mode: the overlay is the whole pending set
            # (bar overflow, which is checked in the slow path).
            if not self._overflow_tuples and not self._overflow_chunks:
                self._len -= 1
                return heappop(overlay)
        return self._pop_slow()

    def _pop_slow(self) -> tuple:
        """Pop when the tuple run is empty: columnar run, calendar, overlay.

        Overlay entries are not assumed to precede bucketed ones (the
        small-N heap mode puts arbitrary times there): whenever the
        calendar still holds events, the next bucket is loaded and
        :meth:`pop` head-merges it against the overlay, which is exact
        tuple comparison — no float bucket-boundary reasoning.
        """
        if self._crun_slots is not None:
            self._materialize_crun()
            return self.pop()
        if self._idheap or self._overflow_tuples or self._overflow_chunks:
            self._advance()
            return self.pop()
        if self._overlay:
            self._len -= 1
            return heappop(self._overlay)
        raise IndexError("pop from an empty ArrayEventCore")

    def peek_time(self) -> float:
        """Time of the next event, or ``inf`` when empty.

        May load the next bucket (idempotent; does not change firing
        order) so the answer is exact rather than a bucket bound.
        """
        if self._len == 0:
            return math.inf
        while (
            not self._run
            and self._crun_slots is None
            and (self._idheap or self._overflow_tuples or self._overflow_chunks)
        ):
            self._advance()
        candidates = []
        if self._run:
            candidates.append(self._run[-1][0])
        elif self._crun_slots is not None:
            candidates.append(float(self._crun_time[self._crun_pos]))
        if self._overlay:
            candidates.append(self._overlay[0][0])
        return min(candidates)

    # ------------------------------------------------------------------
    # Bulk lane
    # ------------------------------------------------------------------
    def schedule_many(
        self,
        times: np.ndarray,
        prios,
        seqs: np.ndarray,
        kinds=KIND_TIMEOUT,
        payloads: Optional[list] = None,
    ) -> np.ndarray:
        """Vectorized schedule: one slot per event, columns written in bulk.

        ``times``/``seqs`` are arrays; ``prios``/``kinds`` may be arrays
        or scalars.  Returns the allocated slot ids (the payload
        indices).  Events are partitioned into calendar buckets in one
        argsort; events at or before the loaded run fall back to the
        overlay scalar-wise (rare — bulk callers schedule ahead).
        """
        times = np.ascontiguousarray(times, dtype=np.float64)
        n = int(times.shape[0])
        if n == 0:
            return np.empty(0, dtype=np.int64)
        if np.isnan(times).any():
            raise ValueError("cannot schedule events at time NaN")
        seqs = np.ascontiguousarray(seqs, dtype=np.int64)
        if seqs.shape[0] != n:
            raise ValueError("times and seqs must have the same length")
        if payloads is not None and len(payloads) != n:
            raise ValueError("payloads must match times in length")
        slots = self._alloc_slots(n)
        self._time[slots] = times
        self._prio[slots] = prios
        self._seq[slots] = seqs
        self._kind[slots] = kinds
        if payloads is not None:
            table = self._payload
            for slot, payload in zip(slots.tolist(), payloads):
                table[slot] = payload
            self._bulk_payloads_used = True
        self._len += n

        near = times <= self._run_max
        if near.any():
            self._spill_to_overlay(slots[near])
            keep = ~near
            slots_left, times_left = slots[keep], times[keep]
        else:
            slots_left, times_left = slots, times
        if slots_left.shape[0]:
            far = times_left >= self._horizon_time
            if far.any():
                self._overflow_chunks.append(slots_left[far].copy())
                keep = ~far
                slots_left, times_left = slots_left[keep], times_left[keep]
        if slots_left.shape[0]:
            self._bucket_chunk(slots_left, times_left)
        return slots

    def pop_many(
        self, max_n: int, with_payloads: bool = False
    ) -> tuple[np.ndarray, np.ndarray, Optional[list]]:
        """Drain up to ``max_n`` events in firing order, columnar when possible.

        Returns ``(times, slots, payloads)``; ``payloads`` is ``None``
        unless requested.  When the active run is a pure bulk bucket and
        the overlay is empty the result is two array slices (no
        per-event Python work); otherwise it falls back to scalar pops
        (scalar-lane events report slot ``-1``).  Popped slots are
        returned to the free list before this call returns — callers
        must copy anything they need beyond the returned arrays.
        """
        payloads: Optional[list] = [] if with_payloads else None
        if max_n <= 0 or self._len == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty.astype(np.float64), empty, payloads
        t_parts: list[np.ndarray] = []
        s_parts: list[np.ndarray] = []
        remaining = min(max_n, self._len)
        while remaining and self._len:
            if (
                self._crun_slots is None
                and not self._run
                and not self._overlay
            ):
                self._advance()
            if (
                self._crun_slots is not None
                and not self._overlay
                and not self._run
            ):
                pos = self._crun_pos
                k = min(remaining, self._crun_slots.shape[0] - pos)
                out_times = self._crun_time[pos : pos + k].copy()
                out_slots = self._crun_slots[pos : pos + k].copy()
                if with_payloads:
                    table = self._payload
                    payloads.extend(table[s] for s in out_slots.tolist())
                self._release_slots(out_slots)
                self._crun_pos = pos + k
                self._len -= k
                if self._crun_pos == self._crun_slots.shape[0]:
                    self._clear_crun()
                t_parts.append(out_times)
                s_parts.append(out_slots)
                remaining -= k
                continue
            # Mixed path: exact order via scalar pops until the tuple
            # run / overlay drain (then back to columnar buckets).
            times_list: list[float] = []
            slots_list: list[int] = []
            while remaining and (self._run or self._overlay):
                _entry = self.pop()
                times_list.append(_entry[0])
                slots_list.append(-1)
                if with_payloads:
                    payloads.append(_entry[3])
                remaining -= 1
            t_parts.append(np.asarray(times_list, dtype=np.float64))
            s_parts.append(np.asarray(slots_list, dtype=np.int64))
        if len(t_parts) == 1:
            return t_parts[0], s_parts[0], payloads
        return np.concatenate(t_parts), np.concatenate(s_parts), payloads

    def drain(self) -> Iterator[tuple]:
        """Iterate ``(time, prio, seq, payload)`` until the core is empty."""
        while self._len:
            yield self.pop()

    # ------------------------------------------------------------------
    # Slot store
    # ------------------------------------------------------------------
    def _alloc_slots(self, n: int) -> np.ndarray:
        """Take ``n`` slots: recycled first (free-list hits), then fresh."""
        slots = np.empty(n, dtype=np.int64)
        top = self._free_top
        take = top if top < n else n
        if take:
            slots[:take] = self._free[top - take : top]
            self._free_top = top - take
            self._slot_hits += take
        fresh = n - take
        if fresh:
            while self._next_fresh + fresh > self._time.shape[0]:
                self._grow()
            start = self._next_fresh
            slots[take:] = np.arange(start, start + fresh, dtype=np.int64)
            self._next_fresh = start + fresh
            self._slot_misses += fresh
        return slots

    def _release_slots(self, slots: np.ndarray) -> None:
        """Return slots to the free list (clearing payload refs if used)."""
        n = slots.shape[0]
        if self._bulk_payloads_used:
            table = self._payload
            for s in slots.tolist():
                table[s] = None
        top = self._free_top
        self._free[top : top + n] = slots
        self._free_top = top + n

    def _grow(self) -> None:
        """Double the slot store (geometric growth)."""
        old = self._time.shape[0]
        new = old * 2
        store = np.zeros(new, EVENT_DTYPE)
        store["time"][:old] = self._time
        store["prio"][:old] = self._prio
        store["seq"][:old] = self._seq
        store["kind"][:old] = self._kind
        self._time = store["time"]
        self._prio = store["prio"]
        self._seq = store["seq"]
        self._kind = store["kind"]
        self._payload.extend([None] * (new - old))
        free = np.empty(new, dtype=np.int64)
        free[: self._free_top] = self._free[: self._free_top]
        self._free = free
        self._grows += 1

    # ------------------------------------------------------------------
    # Calendar internals
    # ------------------------------------------------------------------
    def _bucket_chunk(self, slots: np.ndarray, times: np.ndarray) -> None:
        """Distribute a bulk chunk over calendar buckets (vectorized)."""
        bids = np.floor(times * self._inv_width).astype(np.int64)
        first = int(bids[0])
        if bids.shape[0] == 1 or (bids == first).all():
            self._append_chunk(first, slots)
            return
        order = np.argsort(bids, kind="stable")
        bids = bids[order]
        slots = slots[order]
        uniq, starts = np.unique(bids, return_index=True)
        bounds = np.append(starts, bids.shape[0])
        for i, bid in enumerate(uniq.tolist()):
            self._append_chunk(bid, slots[bounds[i] : bounds[i + 1]])

    def _append_chunk(self, bid: int, slots: np.ndarray) -> None:
        bucket = self._buckets.get(bid)
        if bucket is None:
            self._buckets[bid] = [slots]
            heappush(self._idheap, bid)
        else:
            bucket.append(slots)

    def _spill_to_overlay(self, slots: np.ndarray) -> None:
        """Move bulk-scheduled events into the overlay heap (near inserts)."""
        table = self._payload
        slot_list = slots.tolist()
        entries = zip(
            self._time[slots].tolist(),
            self._prio[slots].tolist(),
            self._seq[slots].tolist(),
            [table[s] for s in slot_list],
        )
        overlay = self._overlay
        for entry in entries:
            heappush(overlay, entry)
        self._release_slots(slots)

    def _advance(self) -> None:
        """Load the next non-empty bucket as the active run.

        Raises ``IndexError`` when the core is truly empty.
        """
        while True:
            idheap = self._idheap
            if idheap:
                bid = heappop(idheap)
                bucket = self._buckets.pop(bid)
                if self._maybe_split(bid, bucket):
                    continue
                self._load(bucket)
                return
            if self._overflow_tuples or self._overflow_chunks:
                self._rebucket_overflow()
                if self._run:
                    # Nothing bucketable remained (inf-only times): the
                    # overflow became the run directly.
                    return
                continue
            raise IndexError("pop from an empty ArrayEventCore")

    def _load(self, bucket: list) -> None:
        """Sort one bucket into the active run (lazy intra-bucket sort)."""
        self._loads += 1
        n_entries = 0
        if len(bucket) > 1 or type(bucket[0]) is tuple:
            tuples = []
            chunks = []
            for e in bucket:
                if type(e) is tuple:
                    tuples.append(e)
                else:
                    chunks.append(e)
            if chunks:
                tuples.extend(self._chunk_tuples(chunks))
            tuples.sort(reverse=True)
            self._run = tuples
            self._run_max = tuples[0][0]
            n_entries = len(tuples)
        else:
            # Pure bulk bucket: keep it columnar so pop_many stays
            # vectorized end to end.
            slots = bucket[0]
            t = self._time[slots]
            p = self._prio[slots]
            s = self._seq[slots]
            order = np.lexsort((s, p, t))
            self._crun_time = t[order]
            self._crun_prio = p[order]
            self._crun_seq = s[order]
            self._crun_slots = slots[order]
            self._crun_pos = 0
            self._run_max = float(self._crun_time[-1])
            n_entries = int(slots.shape[0])
        self._occ_ewma += 0.125 * (n_entries - self._occ_ewma)
        if self._loads % self._WIDEN_CHECK_EVERY == 0:
            self._maybe_widen()

    def _chunk_tuples(self, chunks: list[np.ndarray]) -> list[tuple]:
        """Materialize bulk chunks as key tuples, releasing their slots."""
        slots = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
        table = self._payload
        payloads = [table[s] for s in slots.tolist()]
        out = list(
            zip(
                self._time[slots].tolist(),
                self._prio[slots].tolist(),
                self._seq[slots].tolist(),
                payloads,
            )
        )
        self._release_slots(slots)
        return out

    def _materialize_crun(self) -> None:
        """Convert the columnar run's remainder into a tuple run."""
        pos = self._crun_pos
        slots = self._crun_slots[pos:]
        table = self._payload
        payloads = [table[s] for s in slots.tolist()]
        run = list(
            zip(
                self._crun_time[pos:].tolist(),
                self._crun_prio[pos:].tolist(),
                self._crun_seq[pos:].tolist(),
                payloads,
            )
        )
        self._release_slots(slots)
        run.reverse()
        self._run = run
        self._clear_crun()

    def _clear_crun(self) -> None:
        self._crun_time = None
        self._crun_prio = None
        self._crun_seq = None
        self._crun_slots = None
        self._crun_pos = 0

    # -- width adaptation ----------------------------------------------
    def _maybe_split(self, bid: int, bucket: list) -> bool:
        """Shrink the width when a bucket's scalar population is too big.

        Returns True when a re-bucket happened (the caller re-advances).
        Pure bulk buckets never trigger a split: their sort is
        vectorized, so size costs nothing per event.
        """
        n_tuples = 0
        for e in bucket:
            if type(e) is tuple:
                n_tuples += 1
                if n_tuples > self._split_threshold:
                    break
        if n_tuples <= self._split_threshold:
            return False
        times = [e[0] for e in bucket if type(e) is tuple]
        span = max(times) - min(times)
        if span <= 0.0:
            return False  # same-instant mass: no width can split it
        target = max(self._widen_floor * 4, self._split_threshold // 8)
        new_width = span / max(1, len(times) // target)
        return self._rebucket(new_width, extra=bucket)

    def _maybe_widen(self) -> None:
        """Grow the width when buckets are chronically near-empty."""
        if self._occ_ewma >= self._widen_floor:
            return
        if len(self._buckets) < self._WIDEN_CHECK_EVERY:
            return  # not enough future structure to justify a rebuild
        self._rebucket(self._width * 8.0)

    def _rebucket(self, new_width: float, extra: Optional[list] = None) -> bool:
        """Re-key every future bucket (and overflow) under ``new_width``."""
        if not (new_width > 0.0 and math.isfinite(new_width)):
            return False
        entries: list[tuple] = list(self._overflow_tuples)
        if self._overflow_chunks:
            entries.extend(self._chunk_tuples(self._overflow_chunks))
            # _chunk_tuples re-counts nothing; chunks simply change form.
        chunks: list[np.ndarray] = []
        buckets_snapshot = list(self._buckets.values())
        if extra is not None:
            buckets_snapshot.append(extra)
        for bucket in buckets_snapshot:
            for e in bucket:
                if type(e) is tuple:
                    entries.append(e)
                else:
                    chunks.append(e)
        if chunks:
            entries.extend(self._chunk_tuples(chunks))
        self._buckets.clear()
        self._idheap.clear()
        self._overflow_tuples = []
        self._overflow_chunks = []
        self._width = float(new_width)
        self._inv_width = 1.0 / float(new_width)
        finite_min = None
        for e in entries:
            if math.isfinite(e[0]):
                finite_min = e[0] if finite_min is None else min(finite_min, e[0])
        if finite_min is None:
            # Only non-finite times remain: park them in overflow and
            # let _rebucket_overflow serve them as a direct run.
            self._overflow_tuples = entries
            self._horizon_time = math.inf
            self._resizes += 1
            return True
        base = math.floor(finite_min * self._inv_width)
        self._horizon_base = base
        self._horizon_time = (base + self._nbuckets) * self._width
        buckets = self._buckets
        idheap = self._idheap
        inv = self._inv_width
        horizon_time = self._horizon_time
        overflow = self._overflow_tuples
        for e in entries:
            t = e[0]
            if t >= horizon_time:
                overflow.append(e)
                continue
            bid = math.floor(t * inv)
            b = buckets.get(bid)
            if b is None:
                buckets[bid] = [e]
                heappush(idheap, bid)
            else:
                b.append(e)
        self._resizes += 1
        return True

    def _rebucket_overflow(self) -> None:
        """Bring the overflow area into the calendar once the clock reaches it."""
        entries: list[tuple] = self._overflow_tuples
        if self._overflow_chunks:
            entries = entries + self._chunk_tuples(self._overflow_chunks)
        self._overflow_tuples = []
        self._overflow_chunks = []
        finite = [e for e in entries if math.isfinite(e[0])]
        if not finite:
            # Nothing left but inf-time events: serve them directly.
            entries.sort(reverse=True)
            self._run = entries
            self._run_max = math.inf
            return
        # Fresh width estimate from the overflow population density, so
        # a long-idle calendar lands on a sane width in one step.
        lo = min(e[0] for e in finite)
        hi = max(e[0] for e in finite)
        span = hi - lo
        if span > 0.0 and len(finite) >= self._widen_floor * 4:
            target = max(self._widen_floor * 4, self._split_threshold // 8)
            width = span / max(1, len(finite) // target)
        else:
            width = self._width
        self._width = float(width)
        self._inv_width = 1.0 / float(width)
        base = math.floor(lo * self._inv_width)
        self._horizon_base = base
        self._horizon_time = (base + self._nbuckets) * self._width
        self._resizes += 1
        buckets = self._buckets
        idheap = self._idheap
        inv = self._inv_width
        horizon_time = self._horizon_time
        overflow = self._overflow_tuples
        for e in entries:
            t = e[0]
            if t >= horizon_time:
                overflow.append(e)
                continue
            bid = math.floor(t * inv)
            b = buckets.get(bid)
            if b is None:
                buckets[bid] = [e]
                heappush(idheap, bid)
            else:
                b.append(e)
