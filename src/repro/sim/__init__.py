"""Discrete-event simulation kernel.

A small, self-contained process-based discrete-event simulation engine in
the style of SimPy.  Simulation *processes* are Python generator functions
that ``yield`` events; the :class:`~repro.sim.core.Environment` advances
virtual time and resumes processes when the events they wait on fire.

The kernel is deliberately dependency-free so the rest of the library (the
key-value cluster model, the schedulers, the experiment harness) can run in
any offline environment.

Example
-------
>>> from repro.sim import Environment
>>> env = Environment()
>>> log = []
>>> def proc(env):
...     yield env.timeout(3)
...     log.append(env.now)
>>> _ = env.process(proc(env))
>>> env.run()
>>> log
[3.0]
"""

from repro.sim.core import Environment
from repro.sim.eventcore import (
    ArrayEventCore,
    HeapEventCore,
    make_event_core,
    resolve_engine,
)
from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    StopSimulation,
    Timeout,
)
from repro.sim.queues import PriorityStore, Resource, Store
from repro.sim.rand import RandomStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "ArrayEventCore",
    "Environment",
    "Event",
    "HeapEventCore",
    "Interrupt",
    "PriorityStore",
    "Process",
    "RandomStreams",
    "Resource",
    "StopSimulation",
    "Store",
    "Timeout",
    "make_event_core",
    "resolve_engine",
]
