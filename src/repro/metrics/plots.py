"""Terminal plots: sparklines and multi-series line charts in ASCII.

The experiment harness is headless (no matplotlib dependency), so figures
are rendered as aligned character plots — good enough to see crossovers,
spikes, and who-wins at a glance, and they paste into Markdown verbatim.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.errors import ConfigError

_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line sparkline of ``values`` scaled to their own range."""
    data = [float(v) for v in values]
    if not data:
        raise ConfigError("cannot sparkline zero values")
    lo, hi = min(data), max(data)
    span = hi - lo
    if span == 0:
        return _SPARK_BLOCKS[0] * len(data)
    steps = len(_SPARK_BLOCKS) - 1
    return "".join(
        _SPARK_BLOCKS[int(round((v - lo) / span * steps))] for v in data
    )


def line_chart(
    series: Dict[str, Sequence[float]],
    x_labels: Sequence[object],
    height: int = 12,
    width_per_point: int = 8,
    value_format: str = "{:.3g}",
) -> str:
    """Multi-series character chart: one column block per x point.

    Each series gets a marker letter (a, b, c, ...); coinciding points
    render as ``*``.  A legend and the y-range are appended.
    """
    if not series:
        raise ConfigError("no series to plot")
    lengths = {len(v) for v in series.values()}
    if len(lengths) != 1 or lengths.pop() != len(x_labels):
        raise ConfigError("all series must match the x-label count")
    if height < 2:
        raise ConfigError("height must be >= 2")

    all_values = [float(v) for vs in series.values() for v in vs]
    lo, hi = min(all_values), max(all_values)
    span = (hi - lo) or 1.0

    names = list(series)
    markers = {name: chr(ord("a") + i) for i, name in enumerate(names)}
    n_points = len(x_labels)
    grid = [[" "] * (n_points * width_per_point) for _ in range(height)]

    for name in names:
        marker = markers[name]
        for i, value in enumerate(series[name]):
            row = height - 1 - int(round((float(value) - lo) / span * (height - 1)))
            col = i * width_per_point + width_per_point // 2
            grid[row][col] = "*" if grid[row][col] not in (" ", marker) else marker

    lines = ["".join(row).rstrip() for row in grid]
    axis = "".join(
        str(x).center(width_per_point)[:width_per_point] for x in x_labels
    ).rstrip()
    legend = "   ".join(f"{markers[name]}={name}" for name in names)
    y_range = (
        f"y: {value_format.format(lo)} .. {value_format.format(hi)}"
    )
    return "\n".join(lines + ["-" * max(len(axis), 1), axis, legend, y_range])


def bar_chart(
    values: Dict[str, float],
    width: int = 40,
    value_format: str = "{:.3g}",
) -> str:
    """Horizontal bar chart, one row per labeled value."""
    if not values:
        raise ConfigError("no values to plot")
    label_width = max(len(str(k)) for k in values)
    peak = max(float(v) for v in values.values())
    scale = (width / peak) if peak > 0 else 0.0
    rows = []
    for label, value in values.items():
        bar = "█" * max(1 if value > 0 else 0, int(round(float(value) * scale)))
        rows.append(
            f"{str(label).rjust(label_width)} |{bar.ljust(width)}| "
            f"{value_format.format(float(value))}"
        )
    return "\n".join(rows)


def scenario_chart(result, metric: str | None = None, height: int = 10) -> str:
    """Line chart of a :class:`~repro.experiments.runner.ScenarioResult`."""
    scenario = result.scenario
    metric = metric or scenario.metric
    series = {
        spec.label: result.series(spec.label, metric)
        for spec in scenario.schedulers
    }
    title = f"{scenario.experiment_id}: {metric} vs {scenario.x_label}"
    return title + "\n" + line_chart(series, result.xs(), height=height)
