"""Request-level metrics collection during a simulation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ConfigError
from repro.kvstore.items import Request
from repro.metrics.summary import SummaryStats, summarize


@dataclass(frozen=True)
class RequestRecord:
    """Flat record of one completed request (detached from live objects)."""

    request_id: int
    client_id: int
    arrival_time: float
    completion_time: float
    fanout: int
    total_demand: float
    bottleneck_demand: float
    total_bytes: int

    @property
    def rct(self) -> float:
        return self.completion_time - self.arrival_time

    @property
    def slowdown(self) -> float:
        """RCT normalized by the request's own bottleneck demand.

        A slowdown of 1 means the request finished as fast as its largest
        server-slice could possibly allow (no queueing, nominal speed).
        """
        return self.rct / max(self.bottleneck_demand, 1e-12)


class MetricsCollector:
    """Accumulates completed requests and answers summary queries."""

    def __init__(self):
        self._records: List[RequestRecord] = []
        self.ops_completed = 0
        self.ops_failed = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_request(self, request: Request) -> None:
        """Snapshot a completed request."""
        if not request.done:
            raise ConfigError(f"request {request.request_id} has not completed")
        self._records.append(
            RequestRecord(
                request_id=request.request_id,
                client_id=request.client_id,
                arrival_time=request.arrival_time,
                completion_time=request.completion_time,
                fanout=request.fanout,
                total_demand=request.total_demand,
                bottleneck_demand=request.bottleneck_demand(),
                total_bytes=request.total_bytes,
            )
        )

    def record_op_completion(self, ok: bool) -> None:
        if ok:
            self.ops_completed += 1
        else:
            self.ops_failed += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> List[RequestRecord]:
        return list(self._records)

    def filtered(
        self,
        warmup_time: float = 0.0,
        cooldown_time: Optional[float] = None,
    ) -> List[RequestRecord]:
        """Records arriving in the steady-state window.

        ``warmup_time`` drops requests that arrived before it; an optional
        ``cooldown_time`` drops those arriving after it (end effects).
        """
        out = [r for r in self._records if r.arrival_time >= warmup_time]
        if cooldown_time is not None:
            out = [r for r in out if r.arrival_time <= cooldown_time]
        return out

    def rcts(self, warmup_time: float = 0.0) -> np.ndarray:
        """Array of request completion times in the steady-state window."""
        return np.asarray(
            [r.rct for r in self.filtered(warmup_time)], dtype=np.float64
        )

    def slowdowns(self, warmup_time: float = 0.0) -> np.ndarray:
        return np.asarray(
            [r.slowdown for r in self.filtered(warmup_time)], dtype=np.float64
        )

    def summary(self, warmup_time: float = 0.0) -> SummaryStats:
        """Full summary of RCTs in the steady-state window."""
        return summarize(self.rcts(warmup_time))

    def warmup_time_for_fraction(self, fraction: float) -> float:
        """Arrival time below which the first ``fraction`` of requests fall."""
        if not 0 <= fraction < 1:
            raise ConfigError("fraction must be in [0, 1)")
        if not self._records or fraction == 0:
            return 0.0
        arrivals = sorted(r.arrival_time for r in self._records)
        idx = int(fraction * len(arrivals))
        return arrivals[min(idx, len(arrivals) - 1)]

    def mean_rct(self, warmup_time: float = 0.0) -> float:
        rcts = self.rcts(warmup_time)
        if rcts.size == 0:
            raise ConfigError("no completed requests after warmup")
        return float(rcts.mean())
