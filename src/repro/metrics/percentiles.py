"""Percentile estimation: exact (numpy) and streaming (P² algorithm).

The streaming estimator lets long simulations track tail latency without
retaining every sample; the exact path is used whenever samples fit in
memory (all shipped experiments) and in tests validating the stream
estimator's accuracy.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigError


def _validate_percentile(q: float) -> None:
    """Percentiles live in (0, 100]: q=100 is the max, q=0 is undefined."""
    if not 0 < q <= 100:
        raise ConfigError(f"percentile must be in (0, 100], got {q}")


def exact_percentile(samples: Sequence[float], q: float) -> float:
    """Exact ``q``-th percentile (0 < q <= 100) with linear interpolation."""
    _validate_percentile(q)
    arr = np.asarray(samples, dtype=np.float64)
    if arr.size == 0:
        raise ConfigError("cannot take a percentile of zero samples")
    return float(np.percentile(arr, q))


class P2Quantile:
    """Jain & Chlamtac's P² streaming quantile estimator.

    Maintains five markers; O(1) memory and per-sample time.  Accurate to
    a few percent for smooth distributions once a few hundred samples have
    been seen.
    """

    def __init__(self, q: float):
        if not 0 < q < 1:
            raise ConfigError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self._initial: list[float] = []
        self._n: list[float] = []  # marker positions
        self._ns: list[float] = []  # desired positions
        self._heights: list[float] = []
        self.count = 0

    def update(self, x: float) -> None:
        """Fold in one sample."""
        self.count += 1
        if len(self._initial) < 5:
            self._initial.append(float(x))
            if len(self._initial) == 5:
                self._initial.sort()
                self._heights = list(self._initial)
                self._n = [1.0, 2.0, 3.0, 4.0, 5.0]
                q = self.q
                self._ns = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
            return

        q = self.q
        heights = self._heights
        n = self._n
        # Locate the cell and update extreme heights.
        if x < heights[0]:
            heights[0] = float(x)
            k = 0
        elif x >= heights[4]:
            heights[4] = float(x)
            k = 3
        else:
            k = 0
            for i in range(1, 5):
                if x < heights[i]:
                    k = i - 1
                    break
        for i in range(k + 1, 5):
            n[i] += 1.0
        # Desired positions advance by their quantile fractions.
        self._ns[1] += q / 2.0
        self._ns[2] += q
        self._ns[3] += (1.0 + q) / 2.0
        self._ns[4] += 1.0
        # Adjust the three interior markers.
        for i in (1, 2, 3):
            d = self._ns[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                d <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                n[i] += step

    def _parabolic(self, i: int, d: float) -> float:
        n, h = self._n, self._heights
        return h[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        n, h = self._n, self._heights
        j = i + int(d)
        return h[i] + d * (h[j] - h[i]) / (n[j] - n[i])

    @property
    def value(self) -> float:
        """Current quantile estimate."""
        if self.count == 0:
            raise ConfigError("no samples seen")
        if len(self._initial) < 5 and not self._heights:
            data = sorted(self._initial)
            idx = min(len(data) - 1, int(round(self.q * (len(data) - 1))))
            return data[idx]
        return self._heights[2]


def percentile_profile(
    samples: Sequence[float], qs: Iterable[float] = (50, 90, 95, 99, 99.9)
) -> dict[float, float]:
    """Exact percentiles at several points at once (each in (0, 100])."""
    qs = list(qs)
    for q in qs:
        _validate_percentile(q)
    arr = np.asarray(samples, dtype=np.float64)
    if arr.size == 0:
        raise ConfigError("cannot profile zero samples")
    values = np.percentile(arr, qs)
    return {q: float(v) for q, v in zip(qs, values)}
