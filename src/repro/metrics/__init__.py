"""Measurement: request-completion-time collection and summaries."""

from repro.metrics.collector import MetricsCollector, RequestRecord
from repro.metrics.percentiles import P2Quantile, exact_percentile, percentile_profile
from repro.metrics.summary import SummaryStats, compare_means, mean_confidence_interval
from repro.metrics.timeseries import WindowedSeries

__all__ = [
    "MetricsCollector",
    "P2Quantile",
    "RequestRecord",
    "SummaryStats",
    "WindowedSeries",
    "compare_means",
    "exact_percentile",
    "mean_confidence_interval",
    "percentile_profile",
]
