"""Windowed time series — per-interval means for timeline plots (E4/E5)."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import ConfigError


class WindowedSeries:
    """Aggregates (time, value) points into fixed-width window means.

    Used to plot mean RCT over time during load transitions and server
    degradations: each completed request contributes its RCT to the window
    containing its completion time.
    """

    def __init__(self, window: float):
        if window <= 0:
            raise ConfigError("window must be positive")
        self.window = window
        self._sums: dict[int, float] = {}
        self._counts: dict[int, int] = {}

    def add(self, t: float, value: float) -> None:
        """Record ``value`` at time ``t``."""
        if t < 0:
            raise ConfigError(f"negative time {t}")
        idx = int(t / self.window)
        self._sums[idx] = self._sums.get(idx, 0.0) + value
        self._counts[idx] = self._counts.get(idx, 0) + 1

    def __len__(self) -> int:
        return len(self._counts)

    def series(self) -> List[Tuple[float, float, int]]:
        """Sorted (window_center_time, mean_value, count) triples."""
        out = []
        for idx in sorted(self._counts):
            center = (idx + 0.5) * self.window
            out.append((center, self._sums[idx] / self._counts[idx], self._counts[idx]))
        return out

    def times(self) -> np.ndarray:
        return np.asarray([t for t, _, _ in self.series()])

    def means(self) -> np.ndarray:
        return np.asarray([m for _, m, _ in self.series()])

    def max_mean(self) -> float:
        """Worst window mean (the 'spike height' in adaptivity plots)."""
        series = self.series()
        if not series:
            raise ConfigError("series is empty")
        return max(m for _, m, _ in series)
