"""Summary statistics with confidence intervals."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy import stats

from repro.errors import ConfigError


@dataclass(frozen=True)
class SummaryStats:
    """Distributional summary of a latency sample."""

    count: int
    mean: float
    std: float
    p50: float
    p90: float
    p95: float
    p99: float
    p999: float
    minimum: float
    maximum: float

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "p50": self.p50,
            "p90": self.p90,
            "p95": self.p95,
            "p99": self.p99,
            "p999": self.p999,
            "min": self.minimum,
            "max": self.maximum,
        }

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean * 1e3:.3f}ms "
            f"p50={self.p50 * 1e3:.3f}ms p99={self.p99 * 1e3:.3f}ms"
        )


def summarize(samples: Sequence[float]) -> SummaryStats:
    """Compute a :class:`SummaryStats` from raw samples."""
    arr = np.asarray(samples, dtype=np.float64)
    if arr.size == 0:
        raise ConfigError("cannot summarize zero samples")
    p50, p90, p95, p99, p999 = np.percentile(arr, [50, 90, 95, 99, 99.9])
    return SummaryStats(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        p50=float(p50),
        p90=float(p90),
        p95=float(p95),
        p99=float(p99),
        p999=float(p999),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )


def mean_confidence_interval(
    samples: Sequence[float], confidence: float = 0.95
) -> Tuple[float, float, float]:
    """(mean, lower, upper) Student-t confidence interval for the mean."""
    if not 0 < confidence < 1:
        raise ConfigError("confidence must be in (0, 1)")
    arr = np.asarray(samples, dtype=np.float64)
    if arr.size < 2:
        raise ConfigError("need at least two samples for a confidence interval")
    mean = float(arr.mean())
    sem = float(stats.sem(arr))
    half = sem * float(stats.t.ppf((1 + confidence) / 2.0, arr.size - 1))
    return mean, mean - half, mean + half


def compare_means(
    baseline: Sequence[float], treatment: Sequence[float]
) -> dict[str, float]:
    """Reduction of the treatment mean vs the baseline mean, with a t-test.

    Returns ``reduction`` as a fraction (0.25 = 25% lower mean than the
    baseline — the headline metric the paper reports), plus Welch-t ``p``.
    """
    base = np.asarray(baseline, dtype=np.float64)
    treat = np.asarray(treatment, dtype=np.float64)
    if base.size == 0 or treat.size == 0:
        raise ConfigError("both samples must be non-empty")
    reduction = 1.0 - treat.mean() / base.mean()
    if base.size > 1 and treat.size > 1:
        _, p_value = stats.ttest_ind(base, treat, equal_var=False)
    else:
        p_value = float("nan")
    return {
        "baseline_mean": float(base.mean()),
        "treatment_mean": float(treat.mean()),
        "reduction": float(reduction),
        "p_value": float(p_value),
    }
