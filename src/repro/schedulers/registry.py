"""Registry mapping scheduler names to policy classes."""

from __future__ import annotations

from typing import Any, Dict, Type

from repro.errors import SchedulerError, UnknownSchedulerError
from repro.schedulers.base import SchedulingPolicy

_REGISTRY: Dict[str, Type[SchedulingPolicy]] = {}


def register_policy(cls: Type[SchedulingPolicy]) -> Type[SchedulingPolicy]:
    """Class decorator adding a policy to the registry under ``cls.name``."""
    name = getattr(cls, "name", None)
    if not name or name == "abstract":
        raise SchedulerError(f"policy class {cls.__name__} must define a name")
    if name in _REGISTRY and _REGISTRY[name] is not cls:
        raise SchedulerError(f"scheduler name {name!r} already registered")
    _REGISTRY[name] = cls
    return cls


def create_policy(name: str, **params: Any) -> SchedulingPolicy:
    """Instantiate a registered policy by name with keyword parameters."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise UnknownSchedulerError(name, sorted(_REGISTRY)) from None
    return cls(**params)


def available_schedulers() -> list[str]:
    """Sorted names of all registered policies."""
    return sorted(_REGISTRY)
