"""Start-time fair queueing (SFQ) across clients.

The classic fairness baseline (Goyal et al., SIGCOMM 1996), adapted to
non-preemptive operation scheduling: each *client* is a flow; an arriving
operation gets a start tag ``max(virtual_time, flow's last finish tag)``
and a finish tag ``start + demand / weight``; the server serves the
smallest start tag first and advances virtual time to the tag of the
operation in service.  Guarantees each client a weighted share of server
capacity regardless of its request sizes — the opposite trade to
size-based policies like SBF/DAS.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Dict

from repro.errors import ConfigError
from repro.kvstore.items import Operation
from repro.schedulers.base import QueueContext, SchedulingPolicy, ServerQueue
from repro.schedulers.registry import register_policy


class SfqQueue(ServerQueue):
    """Per-client start-time fair queueing at one server."""

    def __init__(self, context: QueueContext, default_weight: float = 1.0):
        super().__init__(context)
        if default_weight <= 0:
            raise ConfigError("default_weight must be positive")
        self._heap: list[tuple[float, int, Operation]] = []
        self._seq = count()
        self._virtual_time = 0.0
        self._flow_finish: Dict[int, float] = {}
        self._weight = default_weight

    @property
    def virtual_time(self) -> float:
        return self._virtual_time

    def _push(self, op: Operation, now: float) -> None:
        flow = op.request.client_id
        start = max(self._virtual_time, self._flow_finish.get(flow, 0.0))
        finish = start + op.demand / self._weight
        self._flow_finish[flow] = finish
        heapq.heappush(self._heap, (start, next(self._seq), op))

    def _pop(self, now: float) -> Operation:
        start, _, op = heapq.heappop(self._heap)
        # Virtual time advances to the start tag of the op entering service.
        self._virtual_time = max(self._virtual_time, start)
        return op


@register_policy
class SfqPolicy(SchedulingPolicy):
    """Start-time fair queueing across clients (fairness baseline).

    Parameters
    ----------
    default_weight:
        Service share weight applied to every client (default 1.0 —
        equal shares).
    """

    name = "sfq"

    def __init__(self, default_weight: float = 1.0):
        super().__init__(default_weight=default_weight)
        self.default_weight = default_weight

    def make_queue(self, context: QueueContext) -> ServerQueue:
        return SfqQueue(context, default_weight=self.default_weight)
