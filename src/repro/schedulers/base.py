"""Scheduler interfaces: client tagger + per-server queue.

Information model
-----------------
The client knows: the request it is dispatching (all its keys, sizes, and
target servers) and its own *estimates* of server state (from piggybacked
feedback).  The server knows: the operations in its own queue, their tags,
and its own measured service rate.  Neither side has global state —
policies that respect this split are deployable; the interfaces make the
split explicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Optional

import numpy as np

from repro.errors import SchedulerError
from repro.kvstore.items import Operation, Request

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.estimator import ServerEstimates


@dataclass
class QueueContext:
    """Server-local facilities handed to a queue at construction time."""

    server_id: int
    rng: np.random.Generator


class ServerQueue:
    """Per-server queue discipline.

    Subclasses implement ``_push``/``_pop``; the base class maintains the
    length and total-queued-demand bookkeeping every policy needs for
    feedback.  ``pop`` must only be called when the queue is non-empty.
    """

    def __init__(self, context: QueueContext):
        self.context = context
        self._length = 0
        self._queued_demand = 0.0

    # -- bookkeeping ------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    @property
    def queued_demand(self) -> float:
        """Total service demand (reference seconds) of queued operations."""
        return self._queued_demand

    # -- public API -------------------------------------------------------
    def push(self, op: Operation, now: float) -> None:
        """Enqueue an operation arriving at ``now``."""
        op.enqueue_time = now
        self._push(op, now)
        self._length += 1
        self._queued_demand += op.demand

    def pop(self, now: float) -> Operation:
        """Dequeue the next operation to serve."""
        if self._length == 0:
            raise SchedulerError("pop() from an empty queue")
        op = self._pop(now)
        self._length -= 1
        self._queued_demand -= op.demand
        if self._queued_demand < 0 and self._queued_demand > -1e-12:
            self._queued_demand = 0.0  # absorb float drift
        return op

    # -- policy hooks -------------------------------------------------------
    def _push(self, op: Operation, now: float) -> None:
        raise NotImplementedError

    def _pop(self, now: float) -> Operation:
        raise NotImplementedError

    def on_service_complete(self, op: Operation, now: float) -> None:
        """Called after an operation finishes service (for adaptive state)."""


class ClientTagger:
    """Stamps scheduler metadata onto a request's operations at dispatch."""

    def tag_request(
        self, request: Request, now: float, estimates: Optional["ServerEstimates"]
    ) -> None:
        raise NotImplementedError


class NullTagger(ClientTagger):
    """Tagger for policies that need nothing from the client."""

    def tag_request(
        self, request: Request, now: float, estimates: Optional["ServerEstimates"]
    ) -> None:
        return None


class SchedulingPolicy:
    """Factory pairing a tagger with a queue implementation.

    Attributes
    ----------
    name:
        Registry name.
    needs_feedback:
        True when the policy's tagger uses server-state estimates, so the
        cluster knows to enable the feedback path.
    """

    name: str = "abstract"
    needs_feedback: bool = False

    def __init__(self, **params: Any):
        self.params: Dict[str, Any] = params

    def make_queue(self, context: QueueContext) -> ServerQueue:
        raise NotImplementedError

    def make_tagger(self) -> ClientTagger:
        return NullTagger()

    def describe(self) -> str:
        if not self.params:
            return self.name
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self.params.items()))
        return f"{self.name}({inner})"

    def __repr__(self) -> str:
        return f"<SchedulingPolicy {self.describe()}>"


def total_demand_tag(request: Request) -> float:
    """Helper: the request's total service demand (used by several taggers)."""
    return request.total_demand
