"""Scheduling policies for per-server operation queues.

A policy has two halves mirroring the system's information split:

* a **client tagger** that stamps each operation with whatever priority
  metadata the policy needs (computed from client-local state only), and
* a **server queue** that orders queued operations using those tags plus
  server-local state.

Baselines: FCFS (the default the paper improves on), random, per-op SJF,
per-request SJF, LRPT-last, EDF, Rein's SBF, and Rein SBF with multilevel
feedback.  The paper's contribution, DAS, lives in :mod:`repro.core` and
registers itself here under ``"das"``.
"""

from repro.schedulers.base import (
    ClientTagger,
    NullTagger,
    QueueContext,
    SchedulingPolicy,
    ServerQueue,
)
from repro.schedulers.registry import (
    available_schedulers,
    create_policy,
    register_policy,
)

# Import modules for their registration side effects.
from repro.schedulers import edf as _edf  # noqa: F401
from repro.schedulers import fcfs as _fcfs  # noqa: F401
from repro.schedulers import lrpt as _lrpt  # noqa: F401
from repro.schedulers import random_order as _random_order  # noqa: F401
from repro.schedulers import rein as _rein  # noqa: F401
from repro.schedulers import sfq as _sfq  # noqa: F401
from repro.schedulers import sjf as _sjf  # noqa: F401
from repro.core import das as _das  # noqa: F401
from repro.sharding import policy as _laned  # noqa: F401

__all__ = [
    "ClientTagger",
    "NullTagger",
    "QueueContext",
    "SchedulingPolicy",
    "ServerQueue",
    "available_schedulers",
    "create_policy",
    "register_policy",
]
