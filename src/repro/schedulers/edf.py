"""Earliest-deadline-first baseline.

Each request gets a synthetic deadline ``arrival + slack_factor × total
demand`` at dispatch; servers serve the earliest deadline first.  EDF is
the classic real-time baseline: good when deadlines encode size (small
requests get near deadlines), but non-adaptive.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Optional

from repro.errors import ConfigError
from repro.kvstore.items import Operation, Request
from repro.schedulers.base import (
    ClientTagger,
    QueueContext,
    SchedulingPolicy,
    ServerQueue,
)
from repro.schedulers.registry import register_policy

TAG_DEADLINE = "deadline"


class DeadlineTagger(ClientTagger):
    """Stamps ``deadline = arrival + base_slack + slack_factor * demand``."""

    def __init__(self, slack_factor: float, base_slack: float):
        self._slack_factor = slack_factor
        self._base_slack = base_slack

    def tag_request(self, request: Request, now: float, estimates: Optional[object]) -> None:
        deadline = (
            request.arrival_time
            + self._base_slack
            + self._slack_factor * request.total_demand
        )
        for op in request.operations:
            op.tag[TAG_DEADLINE] = deadline


class EdfQueue(ServerQueue):
    """Earliest tagged deadline first; FIFO among equals."""

    def __init__(self, context: QueueContext):
        super().__init__(context)
        self._heap: list[tuple[float, int, Operation]] = []
        self._seq = count()

    def _push(self, op: Operation, now: float) -> None:
        deadline = op.tag.get(TAG_DEADLINE, op.enqueue_time)
        heapq.heappush(self._heap, (deadline, next(self._seq), op))

    def _pop(self, now: float) -> Operation:
        return heapq.heappop(self._heap)[2]


@register_policy
class EdfPolicy(SchedulingPolicy):
    """Earliest-deadline-first with size-proportional synthetic deadlines.

    Parameters
    ----------
    slack_factor:
        Deadline slack per unit of request demand (default 10.0).
    base_slack:
        Constant slack added to every deadline in seconds (default 1 ms).
    """

    name = "edf"

    def __init__(self, slack_factor: float = 10.0, base_slack: float = 1e-3):
        if slack_factor < 0 or base_slack < 0:
            raise ConfigError("slack parameters must be >= 0")
        super().__init__(slack_factor=slack_factor, base_slack=base_slack)
        self.slack_factor = slack_factor
        self.base_slack = base_slack

    def make_queue(self, context: QueueContext) -> ServerQueue:
        return EdfQueue(context)

    def make_tagger(self) -> ClientTagger:
        return DeadlineTagger(self.slack_factor, self.base_slack)
