"""First-come-first-served — the default policy the paper improves on."""

from __future__ import annotations

from collections import deque

from repro.kvstore.items import Operation
from repro.schedulers.base import QueueContext, SchedulingPolicy, ServerQueue
from repro.schedulers.registry import register_policy


class FcfsQueue(ServerQueue):
    """Plain FIFO over operation arrival order at this server."""

    def __init__(self, context: QueueContext):
        super().__init__(context)
        self._fifo: deque[Operation] = deque()

    def _push(self, op: Operation, now: float) -> None:
        self._fifo.append(op)

    def _pop(self, now: float) -> Operation:
        return self._fifo.popleft()


@register_policy
class FcfsPolicy(SchedulingPolicy):
    """FCFS: serve operations in the order they reached the server."""

    name = "fcfs"

    def make_queue(self, context: QueueContext) -> ServerQueue:
        return FcfsQueue(context)
