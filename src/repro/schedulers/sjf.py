"""Shortest-job-first variants.

``sjf-op`` orders by the *operation's own* demand — classic size-based
scheduling that ignores the multiget structure entirely.

``sjf-req`` orders by the *request's total* demand, stamped by the client
at dispatch — the non-adaptive "SRPT-first" half of DAS in isolation
(demands are static after dispatch, so this is shortest-job, not
shortest-remaining).
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Optional

from repro.kvstore.items import Operation, Request
from repro.schedulers.base import (
    ClientTagger,
    QueueContext,
    SchedulingPolicy,
    ServerQueue,
)
from repro.schedulers.registry import register_policy

TAG_TOTAL_DEMAND = "total_demand"


class SjfOpQueue(ServerQueue):
    """Smallest operation demand first; FIFO among equals."""

    def __init__(self, context: QueueContext):
        super().__init__(context)
        self._heap: list[tuple[float, int, Operation]] = []
        self._seq = count()

    def _push(self, op: Operation, now: float) -> None:
        heapq.heappush(self._heap, (op.demand, next(self._seq), op))

    def _pop(self, now: float) -> Operation:
        return heapq.heappop(self._heap)[2]


@register_policy
class SjfOpPolicy(SchedulingPolicy):
    """Per-operation shortest-job-first (multiget-oblivious)."""

    name = "sjf-op"

    def make_queue(self, context: QueueContext) -> ServerQueue:
        return SjfOpQueue(context)


class TotalDemandTagger(ClientTagger):
    """Stamps each operation with its request's total demand."""

    def tag_request(self, request: Request, now: float, estimates: Optional[object]) -> None:
        total = request.total_demand
        for op in request.operations:
            op.tag[TAG_TOTAL_DEMAND] = total


class SjfReqQueue(ServerQueue):
    """Smallest request total-demand first; FIFO among equals."""

    def __init__(self, context: QueueContext):
        super().__init__(context)
        self._heap: list[tuple[float, int, Operation]] = []
        self._seq = count()

    def _push(self, op: Operation, now: float) -> None:
        key = op.tag.get(TAG_TOTAL_DEMAND, op.demand)
        heapq.heappush(self._heap, (key, next(self._seq), op))

    def _pop(self, now: float) -> Operation:
        return heapq.heappop(self._heap)[2]


@register_policy
class SjfReqPolicy(SchedulingPolicy):
    """Per-request shortest-job-first on total demand."""

    name = "sjf-req"

    def make_queue(self, context: QueueContext) -> ServerQueue:
        return SjfReqQueue(context)

    def make_tagger(self) -> ClientTagger:
        return TotalDemandTagger()
