"""Rein-style multiget scheduling: Shortest Bottleneck First.

Rein (Reda et al., EuroSys 2017) observed that a multiget's completion is
governed by its *bottleneck* — the largest per-server slice of the request
— and schedules the smallest bottleneck first.  Two variants:

* ``sbf``: pure shortest-bottleneck-first priority queue (the "Rein-SBF"
  the paper compares against).
* ``rein-ml``: SBF split into priority levels with aging promotion, the
  starvation-bounded variant Rein deploys.

Both are static per-dispatch: the bottleneck is computed from the request
itself and never reflects queue state — exactly the gap DAS's adaptive
estimates close.
"""

from __future__ import annotations

import heapq
from collections import deque
from itertools import count
from typing import Optional

from repro.errors import ConfigError
from repro.kvstore.items import Operation, Request
from repro.schedulers.base import (
    ClientTagger,
    QueueContext,
    SchedulingPolicy,
    ServerQueue,
)
from repro.schedulers.registry import register_policy

TAG_BOTTLENECK = "bottleneck"


class BottleneckTagger(ClientTagger):
    """Stamps each operation with its request's bottleneck demand."""

    def tag_request(self, request: Request, now: float, estimates: Optional[object]) -> None:
        bottleneck = request.bottleneck_demand()
        for op in request.operations:
            op.tag[TAG_BOTTLENECK] = bottleneck


class SbfQueue(ServerQueue):
    """Smallest tagged bottleneck first; FIFO among equals."""

    def __init__(self, context: QueueContext):
        super().__init__(context)
        self._heap: list[tuple[float, int, Operation]] = []
        self._seq = count()

    def _push(self, op: Operation, now: float) -> None:
        key = op.tag.get(TAG_BOTTLENECK, op.demand)
        heapq.heappush(self._heap, (key, next(self._seq), op))

    def _pop(self, now: float) -> Operation:
        return heapq.heappop(self._heap)[2]


@register_policy
class SbfPolicy(SchedulingPolicy):
    """Rein's Shortest Bottleneck First (pure priority form)."""

    name = "sbf"

    def make_queue(self, context: QueueContext) -> ServerQueue:
        return SbfQueue(context)

    def make_tagger(self) -> ClientTagger:
        return BottleneckTagger()


class ReinMlQueue(ServerQueue):
    """SBF split into priority levels with aging promotion.

    Operations with bottleneck below the running-mean-scaled split go to
    the high level, others to the low level.  High is served SBF-ordered;
    low is served FIFO only when high is empty.  A low-level operation
    waiting longer than ``aging_limit × mean bottleneck`` is promoted so
    large multigets cannot starve.
    """

    def __init__(
        self,
        context: QueueContext,
        split_k: float,
        aging_limit: float,
        ewma_alpha: float,
    ):
        super().__init__(context)
        if split_k <= 0:
            raise ConfigError("split_k must be positive")
        if aging_limit <= 0:
            raise ConfigError("aging_limit must be positive")
        if not 0 < ewma_alpha <= 1:
            raise ConfigError("ewma_alpha must be in (0, 1]")
        self._high: list[tuple[float, int, Operation]] = []
        self._low: deque[Operation] = deque()
        self._seq = count()
        self._split_k = split_k
        self._aging_limit = aging_limit
        self._alpha = ewma_alpha
        self._mean_bottleneck: Optional[float] = None
        self.promotions = 0

    def _push(self, op: Operation, now: float) -> None:
        bottleneck = op.tag.get(TAG_BOTTLENECK, op.demand)
        # Classify against the mean *before* folding this item in, so an
        # outlier cannot raise the split past itself.
        demote = (
            self._mean_bottleneck is not None
            and bottleneck > self._split_k * self._mean_bottleneck
        )
        if self._mean_bottleneck is None:
            self._mean_bottleneck = bottleneck
        else:
            self._mean_bottleneck += self._alpha * (bottleneck - self._mean_bottleneck)
        if demote:
            self._low.append(op)
        else:
            heapq.heappush(self._high, (bottleneck, next(self._seq), op))

    def _pop(self, now: float) -> Operation:
        # Aging: promote the low head if it has waited too long.  Promoted
        # operations jump to the very front (key 0) regardless of size.
        scale = self._mean_bottleneck or 0.0
        while self._low and scale > 0:
            head = self._low[0]
            if now - head.enqueue_time > self._aging_limit * scale:
                self._low.popleft()
                heapq.heappush(self._high, (0.0, next(self._seq), head))
                self.promotions += 1
            else:
                break
        if self._high:
            return heapq.heappop(self._high)[2]
        return self._low.popleft()


@register_policy
class ReinMlPolicy(SchedulingPolicy):
    """Rein SBF with multilevel feedback (starvation-bounded).

    Parameters
    ----------
    split_k:
        High/low split at ``split_k × running mean bottleneck`` (default 4).
    aging_limit:
        Low-level wait budget in units of the mean bottleneck (default 50).
    ewma_alpha:
        Smoothing of the running mean bottleneck (default 0.05).
    """

    name = "rein-ml"

    def __init__(
        self,
        split_k: float = 4.0,
        aging_limit: float = 50.0,
        ewma_alpha: float = 0.05,
    ):
        super().__init__(split_k=split_k, aging_limit=aging_limit, ewma_alpha=ewma_alpha)
        self.split_k = split_k
        self.aging_limit = aging_limit
        self.ewma_alpha = ewma_alpha

    def make_queue(self, context: QueueContext) -> ServerQueue:
        return ReinMlQueue(context, self.split_k, self.aging_limit, self.ewma_alpha)

    def make_tagger(self) -> ClientTagger:
        return BottleneckTagger()
