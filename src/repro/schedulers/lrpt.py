"""Pure LRPT-last: demote the largest requests to a background band.

Requests whose total demand exceeds a (static) multiple of the running
mean are served only when no other work is queued.  This is the second
half of DAS in isolation — it helps the small-request majority but has no
ordering inside the front band and no adaptation.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.errors import ConfigError
from repro.kvstore.items import Operation
from repro.schedulers.base import (
    ClientTagger,
    QueueContext,
    SchedulingPolicy,
    ServerQueue,
)
from repro.schedulers.registry import register_policy
from repro.schedulers.sjf import TAG_TOTAL_DEMAND, TotalDemandTagger


class LrptLastQueue(ServerQueue):
    """FIFO front band + FIFO "last" band for oversized requests.

    An operation goes to the last band when its request's total demand
    exceeds ``threshold_k`` times the running mean of tagged demands seen
    by this queue.  The mean uses an EWMA so the threshold follows the
    workload's demand scale without being adaptive to *load* (that is
    DAS's job).
    """

    def __init__(self, context: QueueContext, threshold_k: float, ewma_alpha: float):
        super().__init__(context)
        if threshold_k <= 0:
            raise ConfigError("threshold_k must be positive")
        if not 0 < ewma_alpha <= 1:
            raise ConfigError("ewma_alpha must be in (0, 1]")
        self._front: deque[Operation] = deque()
        self._last: deque[Operation] = deque()
        self._threshold_k = threshold_k
        self._alpha = ewma_alpha
        self._mean_demand: Optional[float] = None

    @property
    def demand_scale(self) -> Optional[float]:
        return self._mean_demand

    def _push(self, op: Operation, now: float) -> None:
        total = op.tag.get(TAG_TOTAL_DEMAND, op.demand)
        # Classify against the mean *before* folding this item in, so an
        # outlier cannot raise the threshold past itself.
        demote = (
            self._mean_demand is not None
            and total > self._threshold_k * self._mean_demand
        )
        if self._mean_demand is None:
            self._mean_demand = total
        else:
            self._mean_demand += self._alpha * (total - self._mean_demand)
        if demote:
            self._last.append(op)
        else:
            self._front.append(op)

    def _pop(self, now: float) -> Operation:
        if self._front:
            return self._front.popleft()
        return self._last.popleft()


@register_policy
class LrptLastPolicy(SchedulingPolicy):
    """Largest-remaining-processing-time-last with a static threshold.

    Parameters
    ----------
    threshold_k:
        Requests with total demand above ``threshold_k × running mean``
        are demoted (default 4.0).
    ewma_alpha:
        Smoothing of the running mean demand (default 0.05).
    """

    name = "lrpt-last"

    def __init__(self, threshold_k: float = 4.0, ewma_alpha: float = 0.05):
        super().__init__(threshold_k=threshold_k, ewma_alpha=ewma_alpha)
        self.threshold_k = threshold_k
        self.ewma_alpha = ewma_alpha

    def make_queue(self, context: QueueContext) -> ServerQueue:
        return LrptLastQueue(context, self.threshold_k, self.ewma_alpha)

    def make_tagger(self) -> ClientTagger:
        return TotalDemandTagger()
