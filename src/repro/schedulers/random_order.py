"""Random-order service — a sanity baseline.

Random order has the same mean queue as FCFS under Poisson arrivals but a
worse tail; it mainly serves as a control that the harness measures what
it should.
"""

from __future__ import annotations

from repro.kvstore.items import Operation
from repro.schedulers.base import QueueContext, SchedulingPolicy, ServerQueue
from repro.schedulers.registry import register_policy


class RandomQueue(ServerQueue):
    """Pop a uniformly random queued operation."""

    def __init__(self, context: QueueContext):
        super().__init__(context)
        self._ops: list[Operation] = []

    def _push(self, op: Operation, now: float) -> None:
        self._ops.append(op)

    def _pop(self, now: float) -> Operation:
        idx = int(self.context.rng.integers(0, len(self._ops)))
        # Swap-remove keeps pop O(1).
        self._ops[idx], self._ops[-1] = self._ops[-1], self._ops[idx]
        return self._ops.pop()


@register_policy
class RandomPolicy(SchedulingPolicy):
    """Serve queued operations in uniformly random order."""

    name = "random"

    def make_queue(self, context: QueueContext) -> ServerQueue:
        return RandomQueue(context)
