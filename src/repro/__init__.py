"""repro — DAS: Distributed Adaptive Scheduler for multiget key-value stores.

A full reproduction of *"Cutting the Request Completion Time in Key-value
Stores with Distributed Adaptive Scheduler"* (Jiang et al., ICDCS 2021):
the DAS scheduler, the Rein-SBF and FCFS baselines, a discrete-event
simulated KV cluster to evaluate them on, the paper's experiment suite,
and an asyncio runtime demonstrating the same schedulers outside the
simulator.

Quickstart
----------
>>> from repro import ClusterConfig, SimulationConfig, run_cluster
>>> from repro.workload import PoissonArrivals
>>> cfg = ClusterConfig(n_servers=8, scheduler="das",
...                     arrivals=PoissonArrivals(rate=2000.0))
>>> result = run_cluster(cfg, SimulationConfig(max_requests=2000))
>>> result.mean_rct > 0
True
"""

from repro._version import __version__
from repro.core import DasPolicy, ServerEstimates
from repro.core.feedback import FeedbackConfig, FeedbackMode
from repro.kvstore.cluster import Cluster, RunResult, run_cluster
from repro.kvstore.config import ClusterConfig, ServiceConfig, SimulationConfig
from repro.metrics.collector import MetricsCollector
from repro.metrics.summary import SummaryStats, compare_means
from repro.schedulers import available_schedulers, create_policy

__all__ = [
    "Cluster",
    "ClusterConfig",
    "DasPolicy",
    "FeedbackConfig",
    "FeedbackMode",
    "MetricsCollector",
    "RunResult",
    "ServerEstimates",
    "ServiceConfig",
    "SimulationConfig",
    "SummaryStats",
    "__version__",
    "available_schedulers",
    "compare_means",
    "create_policy",
    "run_cluster",
]
