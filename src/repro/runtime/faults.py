"""Fault injection for the asyncio runtime.

The simulator models outages with ``ClusterConfig.outages`` — windows in
which a server's service loop stalls.  This module gives the runtime the
same capability on real sockets: a :class:`FaultInjector` attached to a
:class:`~repro.runtime.server.KVServer` is consulted at connection-accept
time and once per incoming message, and decides whether the server should
behave (``pass``), stay silent (``drop`` — the runtime analogue of a
stalled service loop), answer late (``delay``), or sever the connection
(``disconnect``).  Policies are deterministic given their seed, so chaos
tests can script failures reproducibly.

Typical use through the cluster harness::

    async with LocalCluster(n_servers=4) as cluster:
        cluster.inject(0, Outage(0.0, 1.5))   # server 0 dark for 1.5 s
        cluster.inject(1, DropReplies(count=2))
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigError

#: Decision actions a policy may return for one message.
PASS = "pass"
DROP = "drop"
DELAY = "delay"
DISCONNECT = "disconnect"


@dataclass(frozen=True)
class FaultDecision:
    """What the server should do with one incoming message.

    ``delay`` is a fixed hold-back in seconds; ``delay_per_byte`` adds a
    size-dependent component the server scales by the value bytes the
    message moves (how a slow node hurts large operations more than
    small ones).
    """

    action: str = PASS
    delay: float = 0.0
    delay_per_byte: float = 0.0

    @property
    def replies(self) -> bool:
        return self.action in (PASS, DELAY)


#: Shared "behave normally" decision — the hot path (no faults installed)
#: must not allocate per message.
PASS_DECISION = FaultDecision(PASS)


class FaultPolicy:
    """Base class: one scripted misbehaviour.

    ``arm`` is called when the policy is installed; window-based policies
    interpret their times relative to that instant, mirroring how the
    simulator's outage windows are relative to simulation start.
    """

    def arm(self, now: float) -> None:
        self._armed_at = now

    @property
    def armed_at(self) -> float:
        return getattr(self, "_armed_at", 0.0)

    def connection_allowed(self, now: float) -> bool:
        """Whether a new connection may be accepted right now."""
        return True

    def decide(self, message, now: float) -> FaultDecision:
        """Decision for one incoming message (default: behave)."""
        return FaultDecision(PASS)


class Outage(FaultPolicy):
    """Crash/recover window: ``(start, end)`` seconds after installation.

    During the window the server refuses new connections and silently
    swallows every message on existing ones — from the client's point of
    view the server hangs, exactly like a simulated outage
    (``ClusterConfig.outages``).  Messages consumed during the window are
    *not* replayed on recovery; the client's retry layer owns redelivery.
    """

    def __init__(self, start: float, end: float):
        if not 0 <= start < end:
            raise ConfigError(f"invalid outage window ({start}, {end})")
        self.start = start
        self.end = end

    def _down(self, now: float) -> bool:
        elapsed = now - self.armed_at
        return self.start <= elapsed < self.end

    def connection_allowed(self, now: float) -> bool:
        return not self._down(now)

    def decide(self, message, now: float) -> FaultDecision:
        return FaultDecision(DROP) if self._down(now) else FaultDecision(PASS)

    def __repr__(self) -> str:
        return f"Outage({self.start}, {self.end})"


class DropReplies(FaultPolicy):
    """Swallow replies — either the first ``count`` or with ``probability``.

    ``count`` mode is fully deterministic; ``probability`` mode draws from
    a generator seeded by ``seed`` so runs are repeatable.
    """

    def __init__(
        self,
        count: Optional[int] = None,
        probability: float = 0.0,
        seed: int = 0,
    ):
        if count is None and probability <= 0.0:
            raise ConfigError("DropReplies needs count or probability > 0")
        if not 0.0 <= probability <= 1.0:
            raise ConfigError(f"probability must be in [0, 1], got {probability}")
        self.remaining = count
        self.probability = probability
        self._rng = np.random.default_rng(seed)

    def decide(self, message, now: float) -> FaultDecision:
        if self.remaining is not None:
            if self.remaining > 0:
                self.remaining -= 1
                return FaultDecision(DROP)
            return FaultDecision(PASS)
        if self._rng.random() < self.probability:
            return FaultDecision(DROP)
        return FaultDecision(PASS)


class DelayReplies(FaultPolicy):
    """Hold replies back by ``delay`` seconds (first ``count``, or all).

    ``delay_per_byte`` adds a size-dependent component — used by the
    SlowNode approximation so a slowed server stays proportionally slow
    on large values, matching the simulator's service-speed semantics.
    """

    def __init__(
        self,
        delay: float = 0.0,
        count: Optional[int] = None,
        delay_per_byte: float = 0.0,
    ):
        if delay < 0 or delay_per_byte < 0:
            raise ConfigError("delays must be >= 0")
        if delay <= 0 and delay_per_byte <= 0:
            raise ConfigError("DelayReplies needs delay or delay_per_byte > 0")
        self.delay = delay
        self.delay_per_byte = delay_per_byte
        self.remaining = count

    def decide(self, message, now: float) -> FaultDecision:
        if self.remaining is not None:
            if self.remaining <= 0:
                return FaultDecision(PASS)
            self.remaining -= 1
        return FaultDecision(
            DELAY, delay=self.delay, delay_per_byte=self.delay_per_byte
        )


class RefuseConnections(FaultPolicy):
    """Reject new connections during ``(start, end)``; existing ones live."""

    def __init__(self, start: float = 0.0, end: float = float("inf")):
        if not 0 <= start < end:
            raise ConfigError(f"invalid refusal window ({start}, {end})")
        self.start = start
        self.end = end

    def connection_allowed(self, now: float) -> bool:
        elapsed = now - self.armed_at
        return not (self.start <= elapsed < self.end)


class Disconnect(FaultPolicy):
    """Sever the connection on the next ``count`` messages, no reply."""

    def __init__(self, count: int = 1):
        if count < 1:
            raise ConfigError("count must be >= 1")
        self.remaining = count

    def decide(self, message, now: float) -> FaultDecision:
        if self.remaining > 0:
            self.remaining -= 1
            return FaultDecision(DISCONNECT)
        return FaultDecision(PASS)


@dataclass
class FaultCounters:
    """Observability: what the injector actually did."""

    dropped: int = 0
    delayed: int = 0
    disconnected: int = 0
    refused_connections: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "dropped": self.dropped,
            "delayed": self.delayed,
            "disconnected": self.disconnected,
            "refused_connections": self.refused_connections,
        }

    @property
    def total(self) -> int:
        return (
            self.dropped
            + self.delayed
            + self.disconnected
            + self.refused_connections
        )


@dataclass
class FaultInjector:
    """Per-server fault switchboard the server consults on every message.

    Policies compose: the *worst* decision wins (disconnect > drop >
    delay > pass), and delays add up, so e.g. an ``Outage`` layered over a
    ``DelayReplies`` behaves as expected.
    """

    policies: List[FaultPolicy] = field(default_factory=list)
    counters: FaultCounters = field(default_factory=FaultCounters)

    _SEVERITY = {PASS: 0, DELAY: 1, DROP: 2, DISCONNECT: 3}

    def add(self, policy: FaultPolicy, now: Optional[float] = None) -> None:
        policy.arm(time.monotonic() if now is None else now)
        self.policies.append(policy)

    def remove(self, policy: FaultPolicy) -> None:
        """Uninstall one policy; a no-op if it is not (or no longer) armed."""
        try:
            self.policies.remove(policy)
        except ValueError:
            pass

    def clear(self) -> None:
        self.policies.clear()

    def connection_allowed(self, now: Optional[float] = None) -> bool:
        if not self.policies:
            return True
        now = time.monotonic() if now is None else now
        if all(p.connection_allowed(now) for p in self.policies):
            return True
        self.counters.refused_connections += 1
        return False

    def decide(self, message, now: Optional[float] = None) -> FaultDecision:
        if not self.policies:
            return PASS_DECISION
        now = time.monotonic() if now is None else now
        worst = PASS_DECISION
        total_delay = 0.0
        total_per_byte = 0.0
        for policy in self.policies:
            decision = policy.decide(message, now)
            if decision.action == DELAY:
                total_delay += decision.delay
                total_per_byte += decision.delay_per_byte
            if self._SEVERITY[decision.action] > self._SEVERITY[worst.action]:
                worst = decision
        if worst.action in (PASS, DELAY) and (total_delay > 0 or total_per_byte > 0):
            worst = FaultDecision(
                DELAY, delay=total_delay, delay_per_byte=total_per_byte
            )
        if worst.action == DROP:
            self.counters.dropped += 1
        elif worst.action == DELAY:
            self.counters.delayed += 1
        elif worst.action == DISCONNECT:
            self.counters.disconnected += 1
        return worst
