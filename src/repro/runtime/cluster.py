"""In-process runtime cluster: N servers + a connected client.

For demos and integration tests::

    async with LocalCluster(n_servers=4, scheduler="das") as cluster:
        await cluster.client.put("k", b"v")
        values = await cluster.client.multiget(["k"])

Chaos scripting rides on the same harness: ``cluster.inject(0,
Outage(0.0, 1.5))`` makes server 0 go dark, ``cluster.crash(0)`` /
``cluster.restart(0)`` model a hard process death and recovery, and
``cluster.new_client(retry_policy=...)`` attaches extra clients (e.g. a
protected and an unprotected one side by side).
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional

from repro.obs import MetricsRegistry, Tracer
from repro.runtime.client import RuntimeClient
from repro.runtime.faults import FaultPolicy
from repro.runtime.resilience import HedgePolicy, RetryPolicy
from repro.runtime.server import KVServer
from repro.selection import selection_policy_needs

#: Reporter cadence used when the selection policy wants load reports but
#: no explicit ``load_report_interval`` was given.  Kept below the dodoor
#: policy's default ``max_staleness`` (25 ms) so cached entries stay fresh.
DEFAULT_LOAD_REPORT_INTERVAL = 0.01


class LocalCluster:
    """Spin up servers on loopback ports and a client wired to them.

    One :class:`MetricsRegistry` is shared by every server and the
    client, so :meth:`metrics_snapshot` / :meth:`metrics_text` expose the
    whole cluster in a single scrape; one :class:`Tracer` collects
    sampled request traces (``trace_sample_rate=0`` disables tracing).
    """

    def __init__(
        self,
        n_servers: int = 4,
        scheduler: str = "das",
        scheduler_params: Optional[Dict[str, Any]] = None,
        byte_rate: Optional[float] = 100e6,
        per_op_overhead: float = 50e-6,
        retry_policy: Optional[RetryPolicy] = None,
        hedge_policy: Optional[HedgePolicy] = None,
        trace_sample_rate: float = 1 / 128,
        replication_factor: int = 1,
        selection: str = "primary",
        selection_params: Optional[Dict[str, Any]] = None,
        load_report_interval: Optional[float] = None,
    ):
        if n_servers < 1:
            raise ValueError("need at least one server")
        if load_report_interval is None and selection_policy_needs(
            selection
        ).load_reports:
            # Report-fed policies (dodoor) are useless without a reporter;
            # provision one at the default cadence rather than silently
            # degrading every pick to blind random.
            load_report_interval = DEFAULT_LOAD_REPORT_INTERVAL
        self.load_report_interval = load_report_interval
        self.registry = MetricsRegistry()
        self.tracer = Tracer(sample_rate=trace_sample_rate)
        self.servers = [
            KVServer(
                server_id=i,
                scheduler=scheduler,
                scheduler_params=scheduler_params,
                byte_rate=byte_rate,
                per_op_overhead=per_op_overhead,
                registry=self.registry,
                load_report_interval=load_report_interval,
            )
            for i in range(n_servers)
        ]
        self._retry_policy = retry_policy
        self._hedge_policy = hedge_policy
        self._replication_factor = replication_factor
        self._selection = selection
        self._selection_params = selection_params
        self.client: Optional[RuntimeClient] = None
        self._extra_clients: List[RuntimeClient] = []
        self._fault_driver = None

    async def start(self) -> "LocalCluster":
        await asyncio.gather(*(s.start() for s in self.servers))
        self.client = RuntimeClient(
            endpoints=self.endpoints(),
            retry_policy=self._retry_policy,
            hedge_policy=self._hedge_policy,
            registry=self.registry,
            tracer=self.tracer if self.tracer.enabled else None,
            replication_factor=self._replication_factor,
            selection=self._selection,
            selection_params=self._selection_params,
        )
        await self.client.connect()
        return self

    async def stop(self) -> None:
        for extra in self._extra_clients:
            await extra.close()
        self._extra_clients.clear()
        if self.client is not None:
            await self.client.close()
            self.client = None
        await asyncio.gather(*(s.stop() for s in self.servers))

    async def __aenter__(self) -> "LocalCluster":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Clients
    # ------------------------------------------------------------------
    def endpoints(self) -> List[tuple]:
        return [(s.host, s.port) for s in self.servers]

    async def new_client(self, **kwargs: Any) -> RuntimeClient:
        """Connect an extra client (closed automatically with the cluster)."""
        client = RuntimeClient(endpoints=self.endpoints(), **kwargs)
        await client.connect()
        self._extra_clients.append(client)
        return client

    # ------------------------------------------------------------------
    # Chaos controls
    # ------------------------------------------------------------------
    def inject(self, server_id: int, *policies: FaultPolicy) -> None:
        """Install fault policies on one server (see ``runtime.faults``)."""
        for policy in policies:
            self.servers[server_id].faults.add(policy)

    def clear_faults(self, server_id: int) -> None:
        self.servers[server_id].faults.clear()

    async def crash(self, server_id: int) -> None:
        """Hard-kill one server (connections severed, queue not drained)."""
        await self.servers[server_id].crash()

    async def restart(self, server_id: int) -> None:
        """Bring a crashed server back on its original port."""
        await self.servers[server_id].restart()

    def apply_fault_plan(self, plan, time_scale: float = 1.0):
        """Replay a declarative :class:`~repro.faults.plan.FaultPlan`.

        The same plan object the simulator accepts via
        ``ClusterConfig.fault_plan`` is translated here into the runtime's
        fault machinery (crash/restart calls and per-server
        ``FaultInjector`` policies).  Returns the started
        :class:`~repro.faults.runtime.RuntimeFaultDriver`; ``await
        driver.wait()`` to block until the last event has been applied.
        """
        from repro.faults.runtime import RuntimeFaultDriver

        plan.validate_for(len(self.servers), n_clients=1)
        self._fault_driver = RuntimeFaultDriver(self, plan, time_scale=time_scale)
        return self._fault_driver.start()

    # ------------------------------------------------------------------
    async def preload(
        self, items: Dict[str, bytes], concurrency: int = 32
    ) -> None:
        """Write a batch of keys through the client, ``concurrency`` at a time."""
        if self.client is None:
            raise RuntimeError("cluster not started")
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        semaphore = asyncio.Semaphore(concurrency)

        async def one(key: str, value: bytes) -> None:
            async with semaphore:
                await self.client.put(key, value)

        await asyncio.gather(*(one(k, v) for k, v in items.items()))

    def total_ops_executed(self) -> int:
        return sum(s.executor.ops_executed for s in self.servers)

    def stats(self) -> Dict[str, Any]:
        """Per-server and client counter snapshot for chaos-run reporting."""
        stats = {
            "servers": {s.server_id: s.stats() for s in self.servers},
            "client": self.client.stats() if self.client is not None else {},
        }
        if self._fault_driver is not None:
            stats["fault_plan"] = self._fault_driver.stats()
        return stats

    # ------------------------------------------------------------------
    # Observability export
    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> Dict[str, Any]:
        """JSON-able snapshot of the shared registry plus trace summary.

        Callback gauges are evaluated now, so DAS gauges (``das_k``,
        band lengths, promotions/demotions) reflect queue-internal truth
        at the moment of the call.
        """
        return {
            "metrics": self.registry.snapshot(),
            "traces": self.tracer.as_dicts(),
            "trace_sampled": self.tracer.sampled,
        }

    def metrics_text(self) -> str:
        """Prometheus text exposition of the whole cluster's registry."""
        return self.registry.to_prometheus()
