"""In-process runtime cluster: N servers + a connected client.

For demos and integration tests::

    async with LocalCluster(n_servers=4, scheduler="das") as cluster:
        await cluster.client.put("k", b"v")
        values = await cluster.client.multiget(["k"])
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional

from repro.runtime.client import RuntimeClient
from repro.runtime.server import KVServer


class LocalCluster:
    """Spin up servers on loopback ports and a client wired to them."""

    def __init__(
        self,
        n_servers: int = 4,
        scheduler: str = "das",
        scheduler_params: Optional[Dict[str, Any]] = None,
        byte_rate: Optional[float] = 100e6,
        per_op_overhead: float = 50e-6,
    ):
        if n_servers < 1:
            raise ValueError("need at least one server")
        self.servers = [
            KVServer(
                server_id=i,
                scheduler=scheduler,
                scheduler_params=scheduler_params,
                byte_rate=byte_rate,
                per_op_overhead=per_op_overhead,
            )
            for i in range(n_servers)
        ]
        self.client: Optional[RuntimeClient] = None

    async def start(self) -> "LocalCluster":
        await asyncio.gather(*(s.start() for s in self.servers))
        self.client = RuntimeClient(
            endpoints=[(s.host, s.port) for s in self.servers]
        )
        await self.client.connect()
        return self

    async def stop(self) -> None:
        if self.client is not None:
            await self.client.close()
            self.client = None
        await asyncio.gather(*(s.stop() for s in self.servers))

    async def __aenter__(self) -> "LocalCluster":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    async def preload(self, items: Dict[str, bytes]) -> None:
        """Write a batch of keys through the client."""
        if self.client is None:
            raise RuntimeError("cluster not started")
        for key, value in items.items():
            await self.client.put(key, value)

    def total_ops_executed(self) -> int:
        return sum(s.executor.ops_executed for s in self.servers)
